#!/usr/bin/env python
"""Persistent-telemetry smoke check: history, trends, SLOs, logs.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [--artifacts-dir DIR]

Exercises the full longitudinal-observability loop end to end:

1. run ``hfast analyze`` twice over the same cells — serial then
   work-stealing — appending run snapshots into one history directory;
   identical work must dedupe to a single content-addressed snapshot;
2. boot the serve daemon (``ServiceThread``) with its own history
   directory + SLO engine, submit the same cells as jobs, and tail
   ``/v1/events`` with a cursor — the paginated shape must carry ``seq``
   numbers, never report missed events at this volume, and include
   heartbeat records between job events;
3. assert ``hfast obs trend`` output is **byte-identical** across
   repeated invocations and across producers: the analyze-written and
   serve-written history directories must render the same trend table;
4. evaluate ``hfast obs slo`` over the recorded history (clean runs:
   zero burn, nothing breached) and list/compact the history dir;
5. check the structured logs: the analyze ``--log-out`` stream and the
   daemon's ``logs/daemon.jsonl`` must parse via the tolerant reader
   and carry job/run correlation ids.

Everything lands under ``--artifacts-dir`` for CI upload: the history
segments, the trend/slo text, and both structured logs.
"""

from __future__ import annotations

import argparse
import contextlib
import http.client
import io
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from hfast.cli import main as cli_main  # noqa: E402
from hfast.obs.history import read_history  # noqa: E402
from hfast.obs.logs import read_log_records  # noqa: E402
from hfast.serve.daemon import ServeConfig, ServiceThread  # noqa: E402

APPS = "cactus,gtc"
SCALE = 8
CELLS = [{"app": "cactus", "nranks": SCALE}, {"app": "gtc", "nranks": SCALE}]


def cli(argv: list[str]) -> tuple[int, str]:
    """Run one CLI invocation in-process, capturing stdout."""
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = cli_main(argv)
    return rc, buf.getvalue()


def request(port: int, method: str, path: str, body: dict | None = None) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body=json.dumps(body) if body is not None else None)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="smoke-check telemetry history, SLO evaluation, and structured logs"
    )
    parser.add_argument("--artifacts-dir", default="obs-history-artifacts")
    args = parser.parse_args(argv)

    artifacts = Path(args.artifacts_dir)
    artifacts.mkdir(parents=True, exist_ok=True)
    cache_dir = artifacts / "cache"
    hist_analyze = artifacts / "history-analyze"
    hist_serve = artifacts / "history-serve"
    analyze_log = artifacts / "logs" / "analyze.jsonl"
    serve_dir = artifacts / "serve"
    problems: list[str] = []

    # 1. Two analyze runs, two backends, one history dir. -------------------
    for backend_args in ([], ["--scheduler", "stealing", "--workers", "2", "--live"]):
        rc, _out = cli(
            [
                "analyze", "--apps", APPS, "--scales", str(SCALE),
                "--cache-dir", str(cache_dir),
                "--history-dir", str(hist_analyze),
                "--slo", "default",
                "--log-out", str(analyze_log),
                *backend_args,
            ]
        )
        if rc != 0:
            problems.append(f"analyze {backend_args or ['serial']} exited {rc}")
    snapshots = read_history(hist_analyze, kinds=("run",))
    if len(snapshots) != 1:
        problems.append(
            f"expected serial+stealing runs to dedupe to 1 snapshot, got {len(snapshots)}"
        )
    else:
        print(f"obs_smoke: analyze history deduped to snapshot {snapshots[0]['key'][:12]}")

    # 2. Serve session into its own history dir, cursor-tailed. -------------
    config = ServeConfig(
        port=0,
        cache_dir=str(cache_dir),
        serve_dir=str(serve_dir),
        scheduler="stealing",
        history_dir=str(hist_serve),
        slo_spec="default",
        heartbeat_interval=0.2,
    )
    tail: list[dict] = []
    cursor, missed_total = 0, 0
    with ServiceThread(config) as service:
        port = service.port
        print(f"obs_smoke: daemon on 127.0.0.1:{port}")
        job_ids = []
        for spec in CELLS:
            status, raw = request(port, "POST", "/v1/jobs", spec)
            if status not in (200, 202):
                problems.append(f"submit {spec} returned {status}: {raw!r}")
                continue
            job_ids.append(json.loads(raw).get("job_id"))
        deadline = time.monotonic() + 120
        done: set = set()

        def saw_heartbeat() -> bool:
            return any(ev.get("event") == "heartbeat" for ev in tail)

        # Tail until every job finished AND at least one heartbeat arrived
        # (cached jobs can finish faster than the heartbeat interval).
        while time.monotonic() < deadline and (len(done) < len(job_ids) or not saw_heartbeat()):
            status, raw = request(port, "GET", f"/v1/events?cursor={cursor}")
            doc = json.loads(raw)
            if status != 200 or not all(k in doc for k in ("seen", "cursor", "missed", "events")):
                problems.append(f"cursor tail returned {status}: {doc}")
                break
            missed_total += doc["missed"]
            for ev in doc["events"]:
                if "seq" not in ev:
                    problems.append(f"paginated event lacks seq: {ev}")
                tail.append(ev)
                if ev.get("event") == "job_done":
                    done.add(ev.get("job_id"))
            cursor = doc["cursor"]
            time.sleep(0.1)
        if len(done) < len(job_ids):
            problems.append(f"jobs did not finish: {done} of {job_ids}")
        if missed_total:
            problems.append(f"cursor tail reported {missed_total} missed events")
        kinds = {ev.get("event") for ev in tail}
        if "heartbeat" not in kinds:
            problems.append(f"no heartbeat in tailed events (saw {sorted(kinds)})")
        else:
            print(f"obs_smoke: tailed {len(tail)} events via cursor, heartbeats present")
        status, raw = request(port, "GET", "/v1/events?n=5")
        if status != 200 or "events" not in json.loads(raw):
            problems.append("legacy /v1/events?n= shape broke")

    # 3. Trend byte-identity: repeat invocations and across producers. ------
    rc1, trend_a = cli(["obs", "trend", str(hist_analyze)])
    rc2, trend_a_again = cli(["obs", "trend", str(hist_analyze)])
    rc3, trend_s = cli(["obs", "trend", str(hist_serve)])
    if rc1 or rc2 or rc3:
        problems.append(f"obs trend exited nonzero: {rc1} {rc2} {rc3}")
    if trend_a != trend_a_again:
        problems.append("obs trend is not reproducible on the same history dir")
    if trend_a != trend_s:
        problems.append(
            "trend over the serve-written history differs from the analyze-written one:\n"
            f"--- analyze ---\n{trend_a}--- serve ---\n{trend_s}"
        )
    else:
        print("obs_smoke: trend byte-identical across analyze- and serve-written history")
    (artifacts / "trend.txt").write_text(trend_a, encoding="utf-8")

    # 4. SLO over history + listing/compaction. -----------------------------
    rc, slo_out = cli(["obs", "slo", str(hist_analyze), "--strict"])
    if rc != 0:
        problems.append(f"obs slo reported a breach on clean runs (rc {rc}):\n{slo_out}")
    (artifacts / "slo.txt").write_text(slo_out, encoding="utf-8")
    rc, hist_out = cli(["obs", "history", str(hist_analyze)])
    if rc != 0 or "snapshot(s)" not in hist_out:
        problems.append(f"obs history listing failed (rc {rc}): {hist_out!r}")
    rc, _ = cli(["obs", "history", str(hist_serve), "--compact"])
    if rc != 0:
        problems.append("obs history --compact failed")
    rc4, trend_s_compacted = cli(["obs", "trend", str(hist_serve)])
    if rc4 or trend_s_compacted != trend_s:
        problems.append("compaction changed the trend output")

    # 5. Structured logs parse and carry correlation ids. -------------------
    analyze_records = read_log_records(analyze_log)
    if not analyze_records:
        problems.append("analyze --log-out produced no records")
    daemon_log = serve_dir / "logs" / "daemon.jsonl"
    daemon_records = read_log_records(daemon_log) if daemon_log.exists() else []
    admitted = [r for r in daemon_records if r.get("event") == "job_admitted"]
    finished = [r for r in daemon_records if r.get("event") in ("job_done", "job_failed")]
    if len(admitted) < len(CELLS) or len(finished) < len(CELLS):
        problems.append(
            f"daemon log missing job records ({len(admitted)} admitted, {len(finished)} done)"
        )
    elif not all(r.get("job_id") and r.get("cell") for r in admitted + finished):
        problems.append("daemon job records lack correlation ids")
    else:
        print(f"obs_smoke: {len(daemon_records)} daemon log records, correlation ids present")
    rc, tail_out = cli(["obs", "tail", str(daemon_log), "--event", "job_admitted"])
    if rc != 0 or len(tail_out.strip().splitlines()) < len(CELLS):
        problems.append(f"obs tail on the daemon log failed (rc {rc})")

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print("obs_smoke: history deduped, trend deterministic, SLOs clean, logs correlated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
