#!/usr/bin/env python
"""Compare two BENCH_<sha>.json perf snapshots and fail on regression.

Usage::

    python scripts/bench_compare.py [BASELINE CANDIDATE] \
        [--dir .] [--max-regress 25] [--min-wall 0.05]

With two explicit paths, BASELINE is the reference run and CANDIDATE the
run under test. With no paths, the two newest ``BENCH_*.json`` under
``--dir`` (by embedded manifest timestamp, falling back to file mtime)
are compared — oldest of the pair as baseline. Fewer than two snapshots
is not an error: the guard prints a "no baseline" note and passes, so
the first run of a fresh checkout doesn't fail CI. That applies to the
explicit form too — empty-string path arguments (what an empty ``$(ls
...)`` substitution produces) are dropped, and a single surviving path
is treated as a candidate with no baseline yet. Unusable snapshots —
missing files, empty or truncated JSON, documents without a
``profile`` section — are skipped with exit 0 the same way: the perf
trajectory is advisory and a damaged artifact dir must not fail CI.

A stage regresses when its wall time grows by more than ``--max-regress``
percent over baseline. Stages whose baseline wall time is below
``--min-wall`` seconds are reported but never fail the check — sub-tick
stages are dominated by scheduler noise, not code.

Exit status: 0 when no stage regresses, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_bench(path: Path) -> dict | None:
    """Load one snapshot; ``None`` (with a printed note) when unusable.

    A missing file, an empty or truncated file, or a JSON document that
    is not a BENCH snapshot must all degrade to "nothing to guard" — the
    perf trajectory is advisory, and a damaged artifact directory must
    never fail CI on its own.
    """
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"bench_compare: cannot read {path}: {exc}")
        return None
    if not isinstance(doc, dict) or "profile" not in doc:
        print(f"bench_compare: {path}: not a BENCH document (no 'profile' key)")
        return None
    return doc


def is_bench(path: Path) -> bool:
    """Silent usability probe for directory scans."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return False
    return isinstance(doc, dict) and "profile" in doc


def bench_sort_key(path: Path) -> tuple:
    """Order snapshots by embedded timestamp, falling back to mtime."""
    try:
        stamp = json.loads(path.read_text(encoding="utf-8")).get("timestamp")
    except (OSError, ValueError):
        stamp = None
    try:
        mtime = path.stat().st_mtime
    except OSError:
        mtime = 0.0
    # ISO-8601 timestamps sort lexicographically; None sorts first so
    # undated files lose to dated ones, then mtime breaks ties.
    return (stamp is not None, stamp or "", mtime)


def pick_newest_two(bench_dir: Path) -> list[Path] | None:
    found = sorted(
        (p for p in bench_dir.glob("BENCH_*.json") if is_bench(p)),
        key=bench_sort_key,
    )
    if len(found) < 2:
        return None
    return found[-2:]


def stage_walls(doc: dict) -> dict[str, float]:
    return {
        st["stage"]: float(st.get("wall_s", 0.0))
        for st in (doc.get("profile") or {}).get("stages", [])
    }


def compare(
    base: dict, cand: dict, max_regress: float, min_wall: float
) -> tuple[list[str], list[dict]]:
    """Return (failure messages, delta rows); print the comparison table."""
    base_walls, cand_walls = stage_walls(base), stage_walls(cand)
    failures: list[str] = []
    rows: list[dict] = []
    header = f"{'stage':<22} {'base (s)':>10} {'cand (s)':>10} {'delta':>9}  verdict"
    print(header)
    print("-" * len(header))
    for stage in sorted(set(base_walls) | set(cand_walls)):
        b, c = base_walls.get(stage), cand_walls.get(stage)
        if b is None or c is None:
            which = "candidate" if b is None else "baseline"
            print(f"{stage:<22} {b or 0:>10.4f} {c or 0:>10.4f} {'--':>9}  only-in-{which}")
            rows.append({"stage": stage, "base_s": b, "cand_s": c,
                         "delta_pct": None, "verdict": f"only-in-{which}"})
            continue
        delta_pct = 100.0 * (c - b) / b if b > 0 else 0.0
        if b < min_wall:
            verdict = "noise-floor"
        elif delta_pct > max_regress:
            verdict = "REGRESSED"
            failures.append(
                f"stage '{stage}' regressed {delta_pct:.1f}% "
                f"({b:.4f}s -> {c:.4f}s, limit {max_regress:.0f}%)"
            )
        else:
            verdict = "ok"
        print(f"{stage:<22} {b:>10.4f} {c:>10.4f} {delta_pct:>+8.1f}%  {verdict}")
        rows.append({"stage": stage, "base_s": round(b, 6), "cand_s": round(c, 6),
                     "delta_pct": round(delta_pct, 2), "verdict": verdict})
    return failures, rows


def snapshot_candidate(cand_path: Path, doc: dict, snapshot_dir: Path, label: str | None) -> Path:
    """Archive the candidate snapshot into the perf-trajectory directory.

    The copy keeps the original ``BENCH_<sha>.json`` name and gains a
    ``record`` block (where it came from, which CI job/backend produced
    it) so ``hfast obs trend --bench`` can attribute each point. A name
    collision with different content gets a content-hash suffix instead
    of overwriting history.
    """
    import hashlib

    rec = dict(doc)
    rec["record"] = {
        "label": label,
        "source": str(cand_path),
        "git_sha": doc.get("git_sha"),
        "timestamp": doc.get("timestamp"),
        "workers": doc.get("workers"),
    }
    body = json.dumps(rec, indent=2, sort_keys=True) + "\n"
    snapshot_dir.mkdir(parents=True, exist_ok=True)
    dest = snapshot_dir / cand_path.name
    if dest.exists() and dest.read_text(encoding="utf-8") != body:
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:8]
        dest = snapshot_dir / f"{cand_path.stem}-{digest}{cand_path.suffix}"
    dest.write_text(body, encoding="utf-8")
    print(f"bench_compare: snapshot archived to {dest}")
    return dest


def write_record(path: Path, doc: dict) -> None:
    """Persist the delta table (used by CI to archive mitigation on/off
    wall-time comparisons); never changes the exit status."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"bench_compare: delta record written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json snapshots, fail on stage regression"
    )
    parser.add_argument("paths", nargs="*",
                        help="explicit BASELINE CANDIDATE pair (else scan --dir)")
    parser.add_argument("--dir", type=Path, default=Path("."),
                        help="directory scanned for BENCH_*.json when no paths given")
    parser.add_argument("--max-regress", type=float, default=25.0,
                        help="max allowed stage wall-time growth in percent")
    parser.add_argument("--min-wall", type=float, default=0.05,
                        help="baseline seconds below which a stage cannot fail")
    parser.add_argument("--record", type=Path, default=None,
                        help="write the delta table as JSON here (informational; "
                             "does not affect pass/fail)")
    parser.add_argument("--snapshot-dir", type=Path, default=None,
                        help="archive the candidate snapshot (with a 'record' "
                             "provenance block) into this perf-trajectory dir")
    parser.add_argument("--label", default=None,
                        help="provenance label for --snapshot-dir (e.g. the CI job "
                             "or scheduler backend that produced the candidate)")
    args = parser.parse_args(argv)

    # CI invokes this as `bench_compare.py "$(ls -t ...)" "$(ls -t ...)"`;
    # on a fresh checkout a substitution expands to the empty string, so
    # drop blank arguments before deciding which mode we are in. Paths
    # stay strings up to here because Path("") normalizes to ".".
    paths = [Path(p) for p in args.paths if p.strip()]
    if len(paths) > 2:
        parser.error("expected exactly two paths (BASELINE CANDIDATE) or none")
    if len(paths) == 1:
        print(
            f"bench_compare: no baseline to compare {paths[0]} against; "
            "first run — nothing to guard"
        )
        if args.snapshot_dir:
            only = load_bench(paths[0])
            if only is not None:
                snapshot_candidate(paths[0], only, args.snapshot_dir, args.label)
        if args.record:
            write_record(args.record, {"skipped": "no baseline"})
        return 0
    if paths:
        base_path, cand_path = paths
    else:
        pair = pick_newest_two(args.dir)
        if pair is None:
            print(f"bench_compare: fewer than two BENCH_*.json in {args.dir}; nothing to compare")
            if args.record:
                write_record(args.record, {"skipped": "fewer than two snapshots"})
            return 0
        base_path, cand_path = pair

    base, cand = load_bench(base_path), load_bench(cand_path)
    if cand is not None and args.snapshot_dir:
        snapshot_candidate(cand_path, cand, args.snapshot_dir, args.label)
    if base is None or cand is None:
        print("bench_compare: unusable snapshot(s); nothing to guard")
        if args.record:
            write_record(args.record, {"skipped": "unusable snapshot"})
        return 0
    print(f"baseline:  {base_path} (sha {str(base.get('git_sha'))[:12]})")
    print(f"candidate: {cand_path} (sha {str(cand.get('git_sha'))[:12]})")
    print()
    bw, cw = base.get("workers", 1) or 1, cand.get("workers", 1) or 1
    if bw != cw:
        # Stage walls are summed across worker processes, so runs at
        # different worker counts are not comparable.
        print(
            f"bench_compare: worker counts differ (baseline {bw}, candidate {cw}); "
            "stage walls are per-process sums — skipping comparison"
        )
        if args.record:
            write_record(args.record, {"skipped": f"worker mismatch ({bw} vs {cw})"})
        return 0
    failures, rows = compare(base, cand, args.max_regress, args.min_wall)
    print()
    if args.record:
        b_wall = (base.get("profile") or {}).get("total_wall_s")
        c_wall = (cand.get("profile") or {}).get("total_wall_s")
        write_record(args.record, {
            "baseline": str(base_path),
            "candidate": str(cand_path),
            "baseline_sha": base.get("git_sha"),
            "candidate_sha": cand.get("git_sha"),
            "workers": bw,
            "baseline_total_wall_s": b_wall,
            "candidate_total_wall_s": c_wall,
            "total_wall_delta_pct": (
                round(100.0 * (c_wall - b_wall) / b_wall, 2)
                if b_wall and c_wall else None
            ),
            "stages": rows,
            "failures": failures,
            "passed": not failures,
        })
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("bench_compare: no stage regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
