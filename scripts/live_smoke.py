#!/usr/bin/env python
"""Live telemetry smoke check: stream, scrape, and diff against a plain run.

Usage::

    PYTHONPATH=src python scripts/live_smoke.py [--apps a,b] [--scale 64]
        [--workers 4] [--fault flaky:<cell>:1] [--report-dir DIR]

Runs the analysis matrix twice against throwaway cache directories:

1. plain reference — no live telemetry at all;
2. live run — event bus + non-TTY ``LiveView`` + a background
   ``/metrics`` server, scraped *while cells execute* (each cell
   completion triggers a scrape), optionally under an injected fault.

The checks are the observability layer's CI teeth: every mid-run scrape
must parse and round-trip against the live registry's projection, the
view must have logged progress lines, and the live run's merged results
and cache artifacts must be byte-identical to the plain reference —
streaming is a side-channel, never a participant.

With ``--report-dir`` the live run's report.md/report.json/BENCH are
written there for CI artifact upload.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from hfast import cli  # noqa: E402
from hfast.obs.analytics import TraceTree, attribution, critical_path  # noqa: E402
from hfast.obs.live import LiveView  # noqa: E402
from hfast.obs.profile import Observability  # noqa: E402
from hfast.obs.prom import (  # noqa: E402
    MetricsServer,
    parse_prometheus,
    prometheus_projection,
    render_registry,
)
from hfast.obs.report import build_report, write_report  # noqa: E402
from hfast.obs.stream import EventBus  # noqa: E402
from hfast.pipeline import run_pipeline  # noqa: E402
from hfast.sched.faults import FAULT_ENV_VAR  # noqa: E402

DEFAULT_APPS = ["cactus", "gtc", "lbmhd", "paratec"]


def cache_digests(cache_dir: Path) -> dict[str, str]:
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(cache_dir.glob("*.json"))
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="verify live telemetry is observable and side-effect-free"
    )
    parser.add_argument("--apps", default=",".join(DEFAULT_APPS))
    parser.add_argument("--scale", type=int, default=64, help="rank count per app")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--fault", default=None,
                        help="optional HFAST_FAULT_INJECT spec for the live leg")
    parser.add_argument("--report-dir", default=None,
                        help="write the live run's report + BENCH artifacts here")
    args = parser.parse_args(argv)

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    scales = {app: [args.scale] for app in apps}
    problems: list[str] = []

    with tempfile.TemporaryDirectory(prefix="hfast-live-") as td:
        base = Path(td)
        print(f"live_smoke: {len(apps)} apps @ p{args.scale}, {args.workers} workers")

        # Plain reference: live machinery entirely absent.
        ref_obs = Observability(enabled=True)
        os.environ.pop(FAULT_ENV_VAR, None)
        reference = run_pipeline(
            apps=apps, scales=scales, cache_dir=str(base / "plain"),
            obs=ref_obs, argv=["live_smoke"], workers=1, bench_dir=None,
        )
        print(f"plain reference: {len(reference['results'])} cells ok")

        # Live leg: bus + non-TTY view + /metrics scraped on every cell done.
        obs = Observability(enabled=True)
        bus = EventBus()
        view = LiveView(force_tty=False, log_interval=0.1)
        bus.subscribe(view.handle)
        server = MetricsServer(lambda: render_registry(obs.metrics), port=0).start()
        scrapes: list[str] = []

        def scrape_on_done(event: dict) -> None:
            if event.get("event") == "cell_state" and event.get("state") == "done":
                with urllib.request.urlopen(server.url, timeout=10) as resp:
                    scrapes.append(resp.read().decode("utf-8"))

        bus.subscribe(scrape_on_done)
        if args.fault:
            os.environ[FAULT_ENV_VAR] = args.fault
        view.start()
        try:
            live = run_pipeline(
                apps=apps, scales=scales, cache_dir=str(base / "live"),
                obs=obs, argv=["live_smoke"], workers=args.workers,
                scheduler="stealing", retry_backoff=0.05, bench_dir=None, bus=bus,
            )
        finally:
            view.stop()
            os.environ.pop(FAULT_ENV_VAR, None)

        # Final scrape after the run, then shut the server down.
        with urllib.request.urlopen(server.url, timeout=10) as resp:
            final = resp.read().decode("utf-8")
        server.stop()

        print(
            f"live leg: {bus.published} bus events, {len(scrapes)} mid-run scrapes, "
            f"{len(live['anomalies'])} anomalies"
        )

        # 1. Every scrape parses; the final one round-trips the registry.
        for i, text in enumerate([*scrapes, final]):
            try:
                parse_prometheus(text)
            except ValueError as exc:
                problems.append(f"scrape {i} is not valid exposition text: {exc}")
        if parse_prometheus(final) != prometheus_projection(obs.metrics.to_dict()):
            problems.append("final /metrics scrape does not round-trip the registry")
        if not scrapes:
            problems.append("no mid-run scrape happened (no cell_state done event?)")
        if "hfast_pipeline_apps_analyzed" not in final:
            problems.append("final scrape is missing pipeline metrics")

        # 2. The view consumed the stream and logged progress.
        if view.snapshot()["counters"]["events"] < len(apps):
            problems.append("live view saw almost no events")
        if not view.snapshot()["done"]:
            problems.append("live view never saw run_end")

        # 3. Side-channel contract: live output == plain output.
        if live["manifest"]["failed_cells"]:
            problems.append(f"live leg failed cells: {live['manifest']['failed_cells']}")
        if live["results"] != reference["results"]:
            problems.append("live run results diverge from the plain reference")
        ref_d, live_d = cache_digests(base / "plain"), cache_digests(base / "live")
        if ref_d != live_d:
            problems.append("live run cache artifacts diverge from the plain reference")

        # 4. Post-run trace analytics: the live leg's trace must support
        # the full `hfast trace` toolchain (critical path, rollup,
        # scheduler attribution), proving the observability loop closes
        # on real fault-injected runs, not just unit fixtures.
        trace_path = Path(args.report_dir or td) / "trace.jsonl"
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        with trace_path.open("w", encoding="utf-8") as fh:
            for ev in obs.events:
                fh.write(json.dumps(ev, sort_keys=True) + "\n")
        tree = TraceTree.load(trace_path)
        cp = critical_path(tree)
        if not cp or cp[0]["name"] != "pipeline":
            problems.append("trace analytics: critical path missing or not rooted at pipeline")
        if len(tree.cells()) != len(apps):
            problems.append(
                f"trace analytics: expected {len(apps)} cell spans, got {len(tree.cells())}"
            )
        if attribution(tree) is None:
            problems.append("trace analytics: no cell_timing events for attribution")
        if cli.main(["trace", "summary", str(trace_path)]) != 0:
            problems.append("`hfast trace summary` failed on the live trace")
        else:
            print(f"trace analytics: critical path depth {len(cp)}, "
                  f"{len(tree.cells())} cells attributed")

        if args.report_dir:
            paths = write_report(
                build_report(obs.events), args.report_dir, bench_dir=args.report_dir
            )
            for kind, path in paths.items():
                print(f"{kind}: {path}")

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print("live_smoke: streamed, scraped, and byte-identical to the plain reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
