#!/usr/bin/env python
"""Service-mode smoke check: boot the daemon, submit, scrape, verify.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--app cactus] [--scale 8]
        [--artifacts-dir DIR]

Boots the ``hfast serve`` daemon in-process on an ephemeral port (the
same :class:`~hfast.serve.daemon.ServiceThread` embedding the test suite
uses) and drives one full service round trip:

1. submit an analysis job over ``POST /v1/jobs`` (under an injected
   ``slow`` fault so the job is observably in flight);
2. scrape ``/metrics`` *mid-flight* — the exposition must parse and show
   the job running;
3. poll the job to completion and fetch its content-addressed result;
4. verify the served result against the golden fixture for the cell and
   against a direct in-process ``run_pipeline`` run (byte-identical);
5. resubmit the identical spec — it must be answered from the result
   cache without executing anything;
6. drain the daemon gracefully and check the unified trace contains the
   job's ``serve_job`` span.

With ``--artifacts-dir`` the daemon trace, the final /metrics scrape,
and the recent-events ring are written there for CI artifact upload.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from hfast.obs.prom import parse_prometheus  # noqa: E402
from hfast.pipeline import run_pipeline  # noqa: E402
from hfast.sched.faults import FAULT_ENV_VAR  # noqa: E402
from hfast.serve.daemon import ServeConfig, ServiceThread  # noqa: E402
from hfast.serve.jobspec import canonicalize  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"


def request(
    port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body=json.dumps(body) if body is not None else None)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="boot the serve daemon and verify one service round trip"
    )
    parser.add_argument("--app", default="cactus")
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--artifacts-dir", default=None,
                        help="write daemon trace + final scrape + events here")
    args = parser.parse_args(argv)

    cell = f"{args.app}_p{args.scale}"
    spec = {"app": args.app, "nranks": args.scale}
    problems: list[str] = []

    with tempfile.TemporaryDirectory(prefix="hfast-serve-") as td:
        base = Path(td)
        artifacts = Path(args.artifacts_dir) if args.artifacts_dir else base / "artifacts"
        artifacts.mkdir(parents=True, exist_ok=True)
        trace_path = artifacts / "serve_trace.jsonl"

        config = ServeConfig(
            port=0,
            cache_dir=str(base / "cache"),
            serve_dir=str(base / "serve"),
            scheduler="stealing",
            trace_out=str(trace_path),
            bench_dir=None,
        )

        # The first attempt of the smoke cell sleeps, so the daemon is
        # observably mid-job when we scrape.
        os.environ[FAULT_ENV_VAR] = f"slow:{cell}:1"
        try:
            with ServiceThread(config) as service:
                port = service.port
                print(f"serve_smoke: daemon on 127.0.0.1:{port}, cell {cell}")

                status, raw = request(port, "POST", "/v1/jobs", spec)
                if status != 202:
                    problems.append(f"submit returned {status}, expected 202: {raw!r}")
                doc = json.loads(raw)
                job_id, key = doc.get("job_id"), doc.get("key")
                if key != canonicalize(spec).key:
                    problems.append("daemon key differs from local canonicalization")

                # Mid-flight: wait for the running gauge, then scrape.
                midflight = None
                for _ in range(100):
                    status, raw = request(port, "GET", "/healthz")
                    health = json.loads(raw)
                    if health.get("running", 0) >= 1:
                        status, scraped = request(port, "GET", "/metrics")
                        midflight = scraped.decode("utf-8")
                        break
                    time.sleep(0.05)
                if midflight is None:
                    problems.append("job never became observably running")
                else:
                    try:
                        parsed = parse_prometheus(midflight)
                    except ValueError as exc:
                        problems.append(f"mid-flight scrape does not parse: {exc}")
                    else:
                        if parsed.get("hfast_serve_running", {}).get("value") != 1.0:
                            problems.append("mid-flight scrape does not show the job running")
                        print("mid-flight /metrics scrape: parsed, job running")

                for _ in range(1200):
                    status, raw = request(port, "GET", f"/v1/jobs/{job_id}")
                    job_doc = json.loads(raw)
                    if job_doc.get("status") in ("done", "failed"):
                        break
                    time.sleep(0.1)
                if job_doc.get("status") != "done":
                    problems.append(f"job did not complete: {job_doc}")

                status, served = request(port, "GET", f"/v1/results/{key}")
                if status != 200:
                    problems.append(f"result fetch returned {status}")
                summary = json.loads(served)

                # Golden fixture: the paper-facing numbers must match.
                golden_path = GOLDEN_DIR / f"{cell}.json"
                if golden_path.exists():
                    golden = json.loads(golden_path.read_text(encoding="utf-8"))
                    for field in ("total_bytes", "total_messages", "call_totals"):
                        if summary.get(field) != golden[field]:
                            problems.append(f"served {field} diverges from golden fixture")
                    if summary["topology"]["max_degree"] != golden["max_degree"]:
                        problems.append("served max_degree diverges from golden fixture")
                    print(f"golden fixture {golden_path.name}: matched")
                else:
                    problems.append(f"no golden fixture for {cell}")

                # Byte-identity against a direct pipeline run.
                os.environ.pop(FAULT_ENV_VAR, None)
                direct = run_pipeline(
                    apps=[args.app], scales={args.app: [args.scale]},
                    cache_dir=str(base / "direct_cache"), argv=["serve_smoke"],
                    bench_dir=None,
                )
                direct_bytes = (
                    json.dumps(direct["results"][0], sort_keys=True) + "\n"
                ).encode("utf-8")
                if served != direct_bytes:
                    problems.append("served result is not byte-identical to a direct run")
                else:
                    print(f"byte-identity: served == direct ({len(served)} bytes)")

                # Dedupe: identical resubmission is a cache hit, no execution.
                status, raw = request(port, "POST", "/v1/jobs", dict(spec))
                redoc = json.loads(raw)
                if not (status == 200 and redoc.get("cached")):
                    problems.append(f"resubmission not served from cache: {status} {redoc}")
                status, raw = request(port, "GET", "/metrics")
                final_scrape = raw.decode("utf-8")
                metrics = parse_prometheus(final_scrape)
                executed = metrics.get("hfast_serve_jobs_executed", {}).get("value")
                if executed != 1.0:
                    problems.append(f"expected exactly 1 executed job, metrics say {executed}")
                else:
                    print("dedupe: resubmission answered from cache, 1 execution total")

                status, raw = request(port, "GET", "/v1/events?n=50")
                events_doc = json.loads(raw)

                (artifacts / "serve_metrics.prom").write_text(
                    final_scrape, encoding="utf-8"
                )
                (artifacts / "serve_events.json").write_text(
                    json.dumps(events_doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
        finally:
            os.environ.pop(FAULT_ENV_VAR, None)

        # Post-drain: the unified trace must contain the job's root span.
        trace_text = trace_path.read_text(encoding="utf-8") if trace_path.exists() else ""
        if '"serve_job"' not in trace_text:
            problems.append("daemon trace has no serve_job span after drain")
        else:
            print(f"daemon trace: {len(trace_text.splitlines())} events, serve_job rooted")

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print("serve_smoke: submitted, scraped mid-flight, byte-identical, deduped, drained")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
