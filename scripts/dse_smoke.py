#!/usr/bin/env python
"""Design-space search determinism smoke: serial vs work-stealing.

Usage::

    PYTHONPATH=src python scripts/dse_smoke.py [--app gtc] [--scale 8]
        [--workers 4] [--artifacts-dir DIR]

Runs one tiny fixed-seed grid search twice through the real ``hfast
search`` CLI — once on the serial backend, once on the work-stealing
scheduler — and asserts the two frontier artifacts are byte-identical.
That is the DSE subsystem's acceptance contract: the frontier is a pure
function of (workload, space, seed, strategy), never of the execution
backend that happened to evaluate the candidates.

With ``--artifacts-dir`` both frontier files, the run reports, and the
per-backend BENCH snapshots are kept for CI artifact upload;
``bench_compare --record`` can then turn the two BENCH files into a
serial-vs-stealing search wall-time delta record.

Exit status: 0 when the artifacts match, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from hfast import cli  # noqa: E402

#: 2 x 2 x 1 x 2 = 8 candidates — small enough to stay under a second on
#: a warm cache while still exercising every searched dimension.
SPACE_ARGS = [
    "--circuits", "1,4",
    "--reconfig-costs", "0.0,0.001",
    "--matchers", "vector",
    "--timesteps", "2,4",
    "--strategy", "grid",
    "--seed", "0",
]


def run_one(label: str, scheduler_args: list[str], args, out_dir: Path) -> bytes:
    frontier = out_dir / f"frontier-{label}.json"
    argv = [
        "search", "--app", args.app, "--scale", str(args.scale),
        *SPACE_ARGS,
        "--no-store", "--strict",
        "--cache-dir", str(out_dir / f"cache-{label}"),
        "--journal-dir", str(out_dir / f"journal-{label}"),
        "--out", str(frontier),
        "--report-dir", str(out_dir / f"reports-{label}"),
        "--bench-dir", str(out_dir / f"bench-{label}"),
        *scheduler_args,
    ]
    print(f"dse_smoke: hfast {' '.join(argv)}")
    rc = cli.main(argv)
    if rc != 0:
        raise SystemExit(f"dse_smoke: {label} search exited {rc}")
    return frontier.read_bytes()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run one fixed-seed grid search on two backends, compare bytes"
    )
    parser.add_argument("--app", default="gtc")
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the stealing run")
    parser.add_argument("--artifacts-dir", default=None,
                        help="keep frontiers, reports, and BENCH snapshots here")
    args = parser.parse_args(argv)

    ctx = None
    if args.artifacts_dir:
        out_dir = Path(args.artifacts_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    else:
        ctx = tempfile.TemporaryDirectory(prefix="hfast-dse-")
        out_dir = Path(ctx.name)

    try:
        serial = run_one("serial", ["--workers", "1"], args, out_dir)
        stealing = run_one(
            "stealing",
            ["--scheduler", "stealing", "--workers", str(args.workers)],
            args,
            out_dir,
        )
        if serial != stealing:
            print("dse_smoke: FAIL — frontier artifacts differ between backends")
            return 1
        doc = json.loads(serial)
        print(
            f"dse_smoke: OK — {doc['evaluated']} candidates evaluated, "
            f"{len(doc['frontier'])} on the frontier "
            f"(search {doc['search_key'][:12]}); {len(serial)} bytes "
            f"identical on serial and work-stealing backends"
        )
        return 0
    finally:
        if ctx is not None:
            ctx.cleanup()


if __name__ == "__main__":
    sys.exit(main())
