#!/usr/bin/env python
"""Regenerate the golden communication-matrix fixtures.

Usage::

    PYTHONPATH=src python scripts/gen_golden.py [--out tests/golden]

Writes one JSON fixture per (app, nranks) pair covering every app in the
suite at tiny scales (8 and 16 ranks). The fixtures pin the paper-facing
numbers — full byte/message matrices, totals, topology degree — so a
synthesizer refactor that changes any of them fails
``tests/test_golden_matrices.py`` instead of silently shifting results.

Only rerun this when a change to the synthesizers is *intended* to change
the communication structure; commit the diff together with the change.

The fixtures pin synthesizer output (matrices, totals, topology), not
matcher internals — the interconnect evaluations derived from them are
pinned separately by the differential suite. The columnar matcher
rewrite (scalar/vector/incremental backends) therefore required no
regeneration: every backend reproduces the previous circuit assignments
byte-for-byte on all of these fixtures, which
``tests/test_matcher_differential.py`` asserts on every run.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from hfast.apps import available_apps, synthesize
from hfast.matrix import reduce_matrix
from hfast.timing import DEFAULT_TIMING_SEED, TimingModel
from hfast.topology import analyze_topology

GOLDEN_SCALES = (8, 16)


def build_fixture(app: str, nranks: int) -> dict:
    trace = synthesize(app, nranks, timing_seed=DEFAULT_TIMING_SEED)
    batch = trace.ensure_batch()
    cm = reduce_matrix(batch if batch is not None else trace.records, nranks)
    topo = analyze_topology(cm)
    comm_time_s = float(np.sum(batch.total_time))
    compute_time_s = TimingModel(app, nranks, seed=DEFAULT_TIMING_SEED).compute_time(None)
    comm_per_rank = comm_time_s / nranks
    pct_comm = 100.0 * comm_per_rank / (comm_per_rank + compute_time_s)
    return {
        "app": app,
        "nranks": nranks,
        "call_totals": trace.call_totals,
        "total_bytes": cm.total_bytes,
        "total_messages": cm.total_messages,
        "max_degree": topo.max_degree,
        "bytes_matrix": cm.bytes_matrix.tolist(),
        "msg_matrix": cm.msg_matrix.tolist(),
        "timing_seed": DEFAULT_TIMING_SEED,
        "comm_time_s": comm_time_s,
        "pct_comm": round(pct_comm, 3),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="tests/golden", help="fixture directory")
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for app in available_apps():
        for nranks in GOLDEN_SCALES:
            path = out / f"{app}_p{nranks}.json"
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(build_fixture(app, nranks), fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
