#!/usr/bin/env python
"""Benchmark the matcher backends at ultra-scale and emit BENCH docs.

Runs a multi-timestep re-matching workload — the temporal evaluator's
access pattern — over the paper apps' sparse link structures at 32K
ranks (paratec's all-to-all is capped; see ``--paratec-cap``) for each
backend, and writes one ``BENCH_matcher_<backend>.json`` per backend
into ``--out`` (default ``benchmarks/``; never the repo root, which
would poison the pipeline's cost-model calibration and the tier-1 perf
guard's newest-snapshot glob).

The docs share stage names across backends, so the standard comparer
turns any pair into a speedup table::

    python scripts/bench_matcher.py --out benchmarks
    python scripts/bench_compare.py \
        benchmarks/BENCH_matcher_scalar.json \
        benchmarks/BENCH_matcher_incremental.json \
        --max-regress 100000 --record benchmarks/matcher_speedup.json

Per app the workload is ``--steps`` weight vectors: a hashed base, a ~1%
sparse delta, an unchanged repeat, then an order-preserving rescale —
chosen so the incremental backend's cache tiers (unchanged hit, order
reuse, full resort) all get exercised. Every backend is asserted to
produce identical circuits on every step before any timing is reported.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import time
from pathlib import Path

import numpy as np

from hfast.apps import _LBMHD_OFFSETS, _factor2, _factor3, _ghost_pairs_vec
from hfast.matcher import MATCHERS, IncrementalMatcher, match_edges

DEFAULT_NRANKS = 32768
DEFAULT_STEPS = 4
DEFAULT_PARATEC_CAP = 768
DEFAULT_BUDGET = 2


def _dedup(src: np.ndarray, dst: np.ndarray, n: int):
    keep = src != dst
    src, dst = src[keep].astype(np.int64), dst[keep].astype(np.int64)
    _, uniq = np.unique(src * np.int64(n) + dst, return_index=True)
    uniq = np.sort(uniq)
    return src[uniq], dst[uniq]


def topology(app: str, nranks: int, paratec_cap: int):
    """(src, dst, effective_nranks) link structure for one paper app."""
    if app == "cactus":
        ranks, peers = _ghost_pairs_vec(nranks, _factor3(nranks))
        return (*_dedup(ranks, peers, nranks), nranks)
    if app == "gtc":
        r = np.arange(nranks, dtype=np.int64)
        src = np.concatenate([r, r])
        dst = np.concatenate([(r + 1) % nranks, (r - 1) % nranks])
        return (*_dedup(src, dst, nranks), nranks)
    if app == "lbmhd":
        px, py = _factor2(nranks)
        r = np.arange(nranks, dtype=np.int64)
        ix, iy = r // py, r % py
        peers = ((ix[:, None] + _LBMHD_OFFSETS[:, 0]) % px) * py + (
            (iy[:, None] + _LBMHD_OFFSETS[:, 1]) % py
        )
        src = np.broadcast_to(r[:, None], peers.shape).ravel()
        return (*_dedup(src, peers.ravel(), nranks), nranks)
    if app == "paratec":
        # Dense all-to-all: O(n^2) edges, so the FFT-transpose pattern is
        # benchmarked at a capped rank count (the cap is recorded in the
        # BENCH doc and printed — never silently).
        n = min(nranks, paratec_cap)
        r = np.arange(n, dtype=np.int64)
        src = np.repeat(r, n)
        dst = np.tile(r, n)
        return (*_dedup(src, dst, n), n)
    raise ValueError(f"unknown app {app!r}")


def hashed_weights(src: np.ndarray, dst: np.ndarray, n: int, salt: int) -> np.ndarray:
    """splitmix-style deterministic positive weights from the pair key."""
    key = (src * np.int64(n) + dst).astype(np.uint64)
    key += np.uint64((salt * 0x9E3779B97F4A7C15) % (1 << 64))
    key ^= key >> np.uint64(33)
    key *= np.uint64(0xFF51AFD7ED558CCD)
    key ^= key >> np.uint64(33)
    return (key % np.uint64(1 << 20)).astype(np.float64) + 1.0


def step_weights(src: np.ndarray, dst: np.ndarray, n: int, steps: int) -> list[np.ndarray]:
    """The per-step weight vectors: base, ~1% delta, unchanged, rescale, ..."""
    base = hashed_weights(src, dst, n, salt=1)
    out = [base]
    rng = np.random.default_rng(29)
    current = base
    for step in range(1, steps):
        kind = (step - 1) % 3
        if kind == 0:  # sparse delta on ~1% of edges
            w = current.copy()
            touch = rng.choice(len(w), size=max(1, len(w) // 100), replace=False)
            w[touch] = hashed_weights(src[touch], dst[touch], n, salt=step + 1)
        elif kind == 1:  # unchanged step: the incremental cache hit
            w = current.copy()
        else:  # order-preserving rescale: sort reuse without a cache hit
            w = current * 2.0
        out.append(w)
        current = w
    return out


def run_backend(
    backend: str,
    universes: dict[str, tuple[np.ndarray, np.ndarray, int, list[np.ndarray]]],
    budget: int,
) -> tuple[list[dict], dict[str, list]]:
    """Time the step sequence per app; return (stages, per-step circuits)."""
    stages: list[dict] = []
    outputs: dict[str, list] = {}
    for app, (src, dst, n, weight_steps) in universes.items():
        inc = (
            IncrementalMatcher(src, dst, n, bound=budget)
            if backend == "incremental"
            else None
        )
        results = []
        start = time.perf_counter()
        for w in weight_steps:
            if inc is not None:
                # The matcher stores edges (src, dst)-ascending; feed the
                # weights in that same order.
                results.append(inc.rematch(w[inc.input_order]))
            else:
                results.append(match_edges(src, dst, w, n, bound=budget, backend=backend))
        wall = time.perf_counter() - start
        stages.append(
            {
                "stage": f"match_{app}",
                "wall_s": round(wall, 6),
                "calls": len(weight_steps),
                "edges": int(len(src)),
                "nranks": n,
            }
        )
        outputs[app] = results
    return stages, outputs


def git_sha() -> str | None:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                cwd=Path(__file__).parent,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.CalledProcessError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark matcher backends over ultra-scale app topologies"
    )
    parser.add_argument("--nranks", type=int, default=DEFAULT_NRANKS)
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS,
                        help="timesteps in the re-matching workload")
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help="circuits per node (degree bound)")
    parser.add_argument("--paratec-cap", type=int, default=DEFAULT_PARATEC_CAP,
                        help="rank cap for paratec's O(n^2) all-to-all")
    parser.add_argument("--apps", default="cactus,gtc,lbmhd,paratec")
    parser.add_argument("--backends", default=",".join(MATCHERS))
    parser.add_argument("--out", type=Path, default=Path("benchmarks"),
                        help="directory for BENCH_matcher_<backend>.json")
    args = parser.parse_args(argv)

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    for b in backends:
        if b not in MATCHERS:
            parser.error(f"unknown backend {b!r} (expected one of {MATCHERS})")

    universes = {}
    for app in apps:
        src, dst, n = topology(app, args.nranks, args.paratec_cap)
        if app == "paratec" and n < args.nranks:
            print(f"bench_matcher: paratec capped at {n} ranks "
                  f"({len(src)} edges; all-to-all is O(n^2))")
        universes[app] = (src, dst, n, step_weights(src, dst, n, args.steps))
        print(f"bench_matcher: {app}: nranks={n} edges={len(src)} steps={args.steps}")

    args.out.mkdir(parents=True, exist_ok=True)
    sha = git_sha()
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    reference: dict[str, list] | None = None
    ref_backend = ""
    for backend in backends:
        stages, outputs = run_backend(backend, universes, args.budget)
        if reference is None:
            reference, ref_backend = outputs, backend
        else:
            for app, results in outputs.items():
                assert results == reference[app], (
                    f"{backend} diverged from {ref_backend} on {app}"
                )
        total = sum(st["wall_s"] for st in stages)
        doc = {
            "git_sha": sha,
            "timestamp": stamp,
            "workers": 1,
            "backend": backend,
            "workload": {
                "nranks": args.nranks,
                "steps": args.steps,
                "budget": args.budget,
                "paratec_cap": args.paratec_cap,
                "apps": apps,
            },
            "profile": {
                "total_wall_s": round(total, 6),
                "stages": stages,
                "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            },
        }
        path = args.out / f"BENCH_matcher_{backend}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"bench_matcher: {backend}: total {total:.2f}s -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
