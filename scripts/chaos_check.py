#!/usr/bin/env python
"""Chaos determinism check: kill a worker mid-sweep, diff the outputs.

Usage::

    PYTHONPATH=src python scripts/chaos_check.py [--apps a,b] [--scale 64]
        [--workers 4] [--fault crash:<cell>:1]

Runs the analysis matrix three ways against throwaway cache directories:

1. serial reference — ``static`` scheduler, one process;
2. chaos run — ``stealing`` scheduler with an injected worker fault
   (default: SIGKILL the worker holding the first cell on attempt 1);
3. resume run — a stealing run whose poisoned cell exhausts its retries,
   then a ``--resume`` of that journal with the fault cleared.

Each recovered run's merged results and repro-cache artifacts must be
byte-identical to the serial reference; any divergence exits nonzero.
This is the CI teeth behind the scheduler's determinism-under-failure
contract.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from hfast.obs.profile import Observability  # noqa: E402
from hfast.pipeline import run_pipeline  # noqa: E402
from hfast.sched.faults import FAULT_ENV_VAR  # noqa: E402

DEFAULT_APPS = ["cactus", "gtc", "lbmhd", "paratec"]


def cache_digests(cache_dir: Path) -> dict[str, str]:
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(cache_dir.glob("*.json"))
    }


def run_sweep(
    cache_dir: Path,
    apps: list[str],
    scale: int,
    scheduler: str = "static",
    workers: int = 1,
    fault: str | None = None,
    **kwargs,
) -> dict:
    """One pipeline run; ``fault`` is set in the env only for its duration."""
    old = os.environ.get(FAULT_ENV_VAR)
    if fault is not None:
        os.environ[FAULT_ENV_VAR] = fault
    else:
        os.environ.pop(FAULT_ENV_VAR, None)
    try:
        return run_pipeline(
            apps=apps,
            scales={app: [scale] for app in apps},
            cache_dir=str(cache_dir),
            obs=Observability.disabled(),
            argv=["chaos_check"],
            workers=workers,
            scheduler=scheduler,
            bench_dir=None,
            **kwargs,
        )
    finally:
        if old is None:
            os.environ.pop(FAULT_ENV_VAR, None)
        else:
            os.environ[FAULT_ENV_VAR] = old


def diff_outputs(name: str, reference: dict, ref_dir: Path, out: dict, out_dir: Path) -> list[str]:
    problems = []
    if out["manifest"]["failed_cells"]:
        problems.append(f"{name}: failed cells {out['manifest']['failed_cells']}")
    if out["results"] != reference["results"]:
        problems.append(f"{name}: merged results diverge from the serial reference")
    ref_d, out_d = cache_digests(ref_dir), cache_digests(out_dir)
    if ref_d != out_d:
        changed = sorted(
            k for k in set(ref_d) | set(out_d) if ref_d.get(k) != out_d.get(k)
        )
        problems.append(f"{name}: cache artifacts diverge: {', '.join(changed)}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="verify scheduler determinism under injected worker failure"
    )
    parser.add_argument("--apps", default=",".join(DEFAULT_APPS),
                        help="comma-separated app list")
    parser.add_argument("--scale", type=int, default=64, help="rank count per app")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--fault", default=None,
                        help="fault spec for the chaos leg (default: crash first cell)")
    args = parser.parse_args(argv)

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    first_cell = f"{apps[0]}_p{args.scale}"
    fault = args.fault or f"crash:{first_cell}:1"

    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="hfast-chaos-") as td:
        base = Path(td)
        print(f"chaos_check: {len(apps)} apps @ p{args.scale}, {args.workers} workers")

        serial = run_sweep(base / "serial", apps, args.scale)
        print(f"serial reference: {len(serial['results'])} cells ok")

        chaos = run_sweep(
            base / "chaos", apps, args.scale,
            scheduler="stealing", workers=args.workers, fault=fault,
        )
        sched = chaos["manifest"]["scheduler"]
        print(
            f"chaos leg ({fault}): workers_lost={sched['workers_lost']} "
            f"redispatches={sched['redispatches']} steals={sched['steals']}"
        )
        problems += diff_outputs("chaos", serial, base / "serial", chaos, base / "chaos")
        if sched["workers_lost"] < 1 and fault.startswith(("crash", "hang")):
            problems.append("chaos: injected worker fault never fired")

        # Resume leg: poison one cell until its retries exhaust, then
        # resume the journal with the fault cleared.
        poisoned = run_sweep(
            base / "resume", apps, args.scale,
            scheduler="stealing", workers=args.workers,
            fault=f"flaky:{first_cell}:99", max_retries=0,
        )
        run_id = poisoned["manifest"]["scheduler"]["run_id"]
        if poisoned["manifest"]["failed_cells"] != [first_cell]:
            problems.append(
                f"resume: expected only {first_cell} to fail, got "
                f"{poisoned['manifest']['failed_cells']}"
            )
        resumed = run_sweep(
            base / "resume", apps, args.scale,
            scheduler="stealing", workers=args.workers, resume=run_id,
        )
        sched = resumed["manifest"]["scheduler"]
        print(
            f"resume leg: run {run_id} replayed "
            f"{sched['cells_from_journal']}/{len(apps)} cells from journal"
        )
        problems += diff_outputs(
            "resume", serial, base / "serial", resumed, base / "resume"
        )
        if sched["cells_from_journal"] != len(apps) - 1:
            problems.append(
                f"resume: expected {len(apps) - 1} journal replays, "
                f"got {sched['cells_from_journal']}"
            )

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print("chaos_check: recovered runs byte-identical to the serial reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
