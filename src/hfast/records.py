"""Trace record model.

A trace is a list of aggregated per-rank MPI call records, the same shape
IPM emits after reduction: one record per distinct
(rank, call, message size, peer, region) tuple with a repeat count and
timing aggregates.

Two representations coexist:

- :class:`CommRecord` — one Python object per aggregated record; the
  format the repro-cache documents round-trip through.
- :class:`RecordBatch` — a columnar struct-of-arrays view used by the
  vectorized synthesizers, where a 1K–4K-rank all-to-all would otherwise
  mean tens of millions of Python objects.

Both aggregate to the same canonical record order (sorted by
(rank, call, size, peer, region)), so a trace serializes to byte-identical
cache documents regardless of which path produced it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Iterable

import numpy as np

# Point-to-point calls move payload between two distinct ranks and are the
# ones that land in the communication matrix.
PTP_CALLS = frozenset(
    {
        "MPI_Send",
        "MPI_Isend",
        "MPI_Ssend",
        "MPI_Recv",
        "MPI_Irecv",
        "MPI_Sendrecv",
    }
)

SEND_CALLS = frozenset({"MPI_Send", "MPI_Isend", "MPI_Ssend", "MPI_Sendrecv"})
RECV_CALLS = frozenset({"MPI_Recv", "MPI_Irecv"})

COLLECTIVE_CALLS = frozenset(
    {
        "MPI_Allreduce",
        "MPI_Reduce",
        "MPI_Bcast",
        "MPI_Alltoall",
        "MPI_Alltoallv",
        "MPI_Allgather",
        "MPI_Gather",
        "MPI_Scatter",
        "MPI_Barrier",
    }
)

COMPLETION_CALLS = frozenset({"MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Test"})


@dataclass
class CommRecord:
    """One aggregated IPM-style call record."""

    rank: int
    call: str
    size: int
    peer: int
    region: str = "steady"
    count: int = 1
    total_time: float = 0.0
    min_time: float = 0.0
    max_time: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CommRecord":
        return cls(
            rank=int(d["rank"]),
            call=str(d["call"]),
            size=int(d["size"]),
            peer=int(d["peer"]),
            region=str(d.get("region", "steady")),
            count=int(d.get("count", 1)),
            total_time=float(d.get("total_time", 0.0)),
            min_time=float(d.get("min_time", 0.0)),
            max_time=float(d.get("max_time", 0.0)),
        )

    @property
    def bytes_moved(self) -> int:
        return self.size * self.count

    @property
    def is_ptp(self) -> bool:
        return self.call in PTP_CALLS

    @property
    def is_send(self) -> bool:
        return self.call in SEND_CALLS

    @property
    def is_recv(self) -> bool:
        return self.call in RECV_CALLS

    @property
    def is_collective(self) -> bool:
        return self.call in COLLECTIVE_CALLS


class RecordBatch:
    """Columnar (struct-of-arrays) view of aggregated call records.

    ``calls`` is a lexicographically sorted tuple of call names and
    ``call_code`` indexes into it, so sorting by code is sorting by call
    name — the property canonical aggregation relies on. Timing columns
    (``total_time``/``min_time``/``max_time``, float64) are optional:
    batches come out of the synthesizers untimed and gain them when a
    :mod:`hfast.timing` model is applied.
    """

    __slots__ = (
        "rank",
        "call_code",
        "size",
        "peer",
        "count",
        "calls",
        "region",
        "total_time",
        "min_time",
        "max_time",
    )

    def __init__(
        self,
        rank: np.ndarray,
        call_code: np.ndarray,
        size: np.ndarray,
        peer: np.ndarray,
        count: np.ndarray,
        calls: tuple[str, ...],
        region: str = "steady",
    ):
        if tuple(sorted(calls)) != tuple(calls):
            raise ValueError(f"calls table must be sorted, got {calls!r}")
        self.rank = rank
        self.call_code = call_code
        self.size = size
        self.peer = peer
        self.count = count
        self.calls = tuple(calls)
        self.region = region
        self.total_time: np.ndarray | None = None
        self.min_time: np.ndarray | None = None
        self.max_time: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.rank.shape[0])

    @property
    def has_times(self) -> bool:
        return self.total_time is not None

    def set_times(
        self, total: np.ndarray, tmin: np.ndarray, tmax: np.ndarray
    ) -> None:
        """Attach float64 timing columns (one entry per record)."""
        for arr in (total, tmin, tmax):
            if arr.shape != self.rank.shape:
                raise ValueError(
                    f"timing column shape {arr.shape} != batch shape {self.rank.shape}"
                )
        self.total_time = total
        self.min_time = tmin
        self.max_time = tmax

    @classmethod
    def from_records(cls, records: list["CommRecord"]) -> "RecordBatch":
        """Columnarize an already-canonical record list (timing included).

        Used when a cached trace loads back as record dicts: analysis
        paths then run the same vectorized code — and produce the same
        float64 reductions — as a freshly synthesized batch. Records must
        share one region (all cache documents do).
        """
        regions = {r.region for r in records}
        if len(regions) > 1:
            raise ValueError(f"from_records needs a single region, got {sorted(regions)}")
        calls = tuple(sorted({r.call for r in records}))
        code_of = {c: i for i, c in enumerate(calls)}
        batch = cls(
            rank=np.array([r.rank for r in records], dtype=np.int64),
            call_code=np.array([code_of[r.call] for r in records], dtype=np.int16),
            size=np.array([r.size for r in records], dtype=np.int64),
            peer=np.array([r.peer for r in records], dtype=np.int64),
            count=np.array([r.count for r in records], dtype=np.int64),
            calls=calls,
            region=next(iter(regions)) if records else "steady",
        )
        batch.set_times(
            np.array([r.total_time for r in records], dtype=np.float64),
            np.array([r.min_time for r in records], dtype=np.float64),
            np.array([r.max_time for r in records], dtype=np.float64),
        )
        return batch

    @classmethod
    def from_parts(
        cls,
        parts: Iterable[tuple[str, Any, Any, Any, Any]],
        region: str = "steady",
    ) -> "RecordBatch":
        """Build a batch from (call, rank, size, peer, count) part tuples.

        Each part's rank/size/peer/count may be an array or a scalar;
        scalars broadcast to the part's rank length.
        """
        mats = []
        names: list[str] = []
        for call, rank, size, peer, count in parts:
            rank = np.asarray(rank)
            if rank.size == 0:
                continue
            mats.append(
                (
                    call,
                    rank,
                    np.broadcast_to(np.asarray(size), rank.shape),
                    np.broadcast_to(np.asarray(peer), rank.shape),
                    np.broadcast_to(np.asarray(count), rank.shape),
                )
            )
            if call not in names:
                names.append(call)
        calls = tuple(sorted(names))
        code_of = {c: i for i, c in enumerate(calls)}
        if not mats:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty.astype(np.int16), empty, empty, empty, calls, region)

        def col(i: int) -> np.ndarray:
            # int32 columns halve memory traffic on multi-million-record
            # batches; fall back to int64 only when values demand it.
            arr = np.concatenate([m[i] for m in mats])
            if arr.dtype != np.int32 and int(arr.max(initial=0)) < 2**31:
                arr = arr.astype(np.int32)
            return arr

        return cls(
            rank=col(1),
            call_code=np.concatenate(
                [np.full(m[1].shape, code_of[m[0]], dtype=np.int16) for m in mats]
            ),
            size=col(2),
            peer=col(3),
            count=col(4),
            calls=calls,
            region=region,
        )

    def _sort_order(self) -> np.ndarray:
        """Permutation realizing canonical (rank, call, size, peer) order.

        When the key fields are narrow enough, they pack into one int64
        whose numeric order equals the tuple order — a single-key argsort
        is ~3x cheaper than a 4-key lexsort at tens of millions of rows.
        """
        bits = [
            int(int(c.max(initial=0)).bit_length()) + 1
            for c in (self.rank, self.call_code, self.size, self.peer)
        ]
        if sum(bits) <= 62:
            key = self.rank.astype(np.int64)
            for col, width in (
                (self.call_code, bits[1]),
                (self.size, bits[2]),
                (self.peer, bits[3]),
            ):
                key = (key << width) | col.astype(np.int64)
            return np.argsort(key)
        return np.lexsort((self.peer, self.size, self.call_code, self.rank))

    def aggregate(self) -> "RecordBatch":
        """Merge duplicate keys and sort into canonical record order."""
        if len(self) == 0:
            return self
        order = self._sort_order()
        rank = self.rank[order]
        code = self.call_code[order]
        size = self.size[order]
        peer = self.peer[order]
        count = self.count[order]
        boundary = np.empty(len(self), dtype=bool)
        boundary[0] = True
        boundary[1:] = (
            (rank[1:] != rank[:-1])
            | (code[1:] != code[:-1])
            | (size[1:] != size[:-1])
            | (peer[1:] != peer[:-1])
        )
        if boundary.all():  # no duplicate keys: skip the group-reduce
            out = RecordBatch(rank, code, size, peer, count, self.calls, self.region)
            if self.has_times:
                out.set_times(
                    self.total_time[order], self.min_time[order], self.max_time[order]
                )
            return out
        idx = np.flatnonzero(boundary)
        out = RecordBatch(
            rank=rank[idx],
            call_code=code[idx],
            size=size[idx],
            peer=peer[idx],
            count=np.add.reduceat(count.astype(np.int64), idx),
            calls=self.calls,
            region=self.region,
        )
        if self.has_times:
            out.set_times(
                np.add.reduceat(self.total_time[order], idx),
                np.minimum.reduceat(self.min_time[order], idx),
                np.maximum.reduceat(self.max_time[order], idx),
            )
        return out

    def call_mask(self, names: frozenset[str] | set[str]) -> np.ndarray:
        """Boolean mask of records whose call is in ``names``."""
        wanted = np.array(
            [c in names for c in self.calls], dtype=bool
        )
        if not wanted.any():
            return np.zeros(len(self), dtype=bool)
        return wanted[self.call_code]

    @property
    def call_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for i, call in enumerate(self.calls):
            t = int(self.count[self.call_code == i].sum())
            if t:
                totals[call] = t
        return totals

    def _time_lists(self) -> tuple[list[float], list[float], list[float]]:
        if self.has_times:
            return self.total_time.tolist(), self.min_time.tolist(), self.max_time.tolist()
        zeros = [0.0] * len(self)
        return zeros, zeros, zeros

    def to_dicts(self) -> list[dict[str, Any]]:
        """Record dicts in the same field order ``CommRecord.to_dict`` uses."""
        region = self.region
        totals, mins, maxs = self._time_lists()
        return [
            {
                "rank": r,
                "call": self.calls[c],
                "size": s,
                "peer": p,
                "region": region,
                "count": n,
                "total_time": tt,
                "min_time": tn,
                "max_time": tx,
            }
            for r, c, s, p, n, tt, tn, tx in zip(
                self.rank.tolist(),
                self.call_code.tolist(),
                self.size.tolist(),
                self.peer.tolist(),
                self.count.tolist(),
                totals,
                mins,
                maxs,
            )
        ]

    def to_records(self) -> list[CommRecord]:
        totals, mins, maxs = self._time_lists()
        return [
            CommRecord(
                rank=r,
                call=self.calls[c],
                size=s,
                peer=p,
                region=self.region,
                count=n,
                total_time=tt,
                min_time=tn,
                max_time=tx,
            )
            for r, c, s, p, n, tt, tn, tx in zip(
                self.rank.tolist(),
                self.call_code.tolist(),
                self.size.tolist(),
                self.peer.tolist(),
                self.count.tolist(),
                totals,
                mins,
                maxs,
            )
        ]


class Trace:
    """A complete synthetic (or cached) application trace.

    Holds either a materialized record list, a columnar batch, or both;
    ``records`` materializes lazily from the batch so vectorized analysis
    paths never pay for millions of per-record Python objects.
    """

    def __init__(
        self,
        app: str,
        nranks: int,
        records: list[CommRecord] | None = None,
        overrides: dict[str, Any] | None = None,
        batch: RecordBatch | None = None,
        timing: dict[str, Any] | None = None,
    ):
        if records is None and batch is None:
            raise ValueError("Trace needs records or a batch")
        self.app = app
        self.nranks = nranks
        self.overrides = dict(overrides or {})
        self.batch = batch
        self._records = records
        # Timing-model descriptor ({"model", "seed", "params"}) once a
        # hfast.timing model has been applied; None on untimed traces.
        self.timing = dict(timing) if timing else None

    @property
    def records(self) -> list[CommRecord]:
        if self._records is None:
            assert self.batch is not None
            self._records = self.batch.to_records()
        return self._records

    def ensure_batch(self) -> RecordBatch | None:
        """Columnarize the record list if no batch exists yet.

        Returns the batch (building it from records when possible), so
        analysis paths run vectorized — with identical float64 reductions
        — whether the trace was freshly synthesized or loaded from cache.
        Returns None only for multi-region record lists, which stay on
        the scalar path.
        """
        if self.batch is None and self._records is not None:
            try:
                self.batch = RecordBatch.from_records(self._records)
            except ValueError:
                return None
        return self.batch

    @property
    def call_totals(self) -> dict[str, int]:
        if self.batch is not None:
            return self.batch.call_totals
        totals: dict[str, int] = {}
        for r in self.records:
            totals[r.call] = totals.get(r.call, 0) + r.count
        return dict(sorted(totals.items()))

    def to_document(self) -> dict[str, Any]:
        """Serialize to the on-disk repro-cache document (format 3).

        Format 3 adds ``metadata.timing`` (the timing-model descriptor,
        null on untimed traces) on top of the format-2 schema; records
        carry real ``total_time``/``min_time``/``max_time`` values.
        """
        return {
            "format": 3,
            "metadata": {
                "app": self.app,
                "nranks": self.nranks,
                "overrides": dict(self.overrides),
                "timing": dict(self.timing) if self.timing else None,
            },
            "call_totals": self.call_totals,
            "records": (
                self.batch.to_dicts()
                if self.batch is not None
                else [r.to_dict() for r in self.records]
            ),
        }

    @classmethod
    def from_document(cls, doc: dict[str, Any]) -> "Trace":
        """Rebuild a trace from a format-3 (or legacy format-2) document."""
        meta = doc["metadata"]
        return cls(
            app=str(meta["app"]),
            nranks=int(meta["nranks"]),
            overrides=dict(meta.get("overrides", {})),
            records=[CommRecord.from_dict(r) for r in doc["records"]],
            timing=meta.get("timing"),
        )


def record_sort_key(r: CommRecord) -> tuple[int, str, int, int, str]:
    """Canonical record ordering shared by the scalar and vector paths."""
    return (r.rank, r.call, r.size, r.peer, r.region)


def aggregate(records: Iterable[CommRecord]) -> list[CommRecord]:
    """Merge records sharing (rank, call, size, peer, region).

    Output is in canonical order (sorted by that key), so documents built
    from the scalar path are byte-identical to the vectorized path.
    """
    merged: dict[tuple, CommRecord] = {}
    for r in records:
        key = record_sort_key(r)
        cur = merged.get(key)
        if cur is None:
            merged[key] = CommRecord(**r.to_dict())
        else:
            cur.count += r.count
            cur.total_time += r.total_time
            cur.min_time = min(cur.min_time, r.min_time) if cur.count else r.min_time
            cur.max_time = max(cur.max_time, r.max_time)
    return [merged[key] for key in sorted(merged)]
