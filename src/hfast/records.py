"""Trace record model.

A trace is a list of aggregated per-rank MPI call records, the same shape
IPM emits after reduction: one record per distinct
(rank, call, message size, peer, region) tuple with a repeat count and
timing aggregates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

# Point-to-point calls move payload between two distinct ranks and are the
# ones that land in the communication matrix.
PTP_CALLS = frozenset(
    {
        "MPI_Send",
        "MPI_Isend",
        "MPI_Ssend",
        "MPI_Recv",
        "MPI_Irecv",
        "MPI_Sendrecv",
    }
)

SEND_CALLS = frozenset({"MPI_Send", "MPI_Isend", "MPI_Ssend", "MPI_Sendrecv"})
RECV_CALLS = frozenset({"MPI_Recv", "MPI_Irecv"})

COLLECTIVE_CALLS = frozenset(
    {
        "MPI_Allreduce",
        "MPI_Reduce",
        "MPI_Bcast",
        "MPI_Alltoall",
        "MPI_Alltoallv",
        "MPI_Allgather",
        "MPI_Gather",
        "MPI_Scatter",
        "MPI_Barrier",
    }
)

COMPLETION_CALLS = frozenset({"MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Test"})


@dataclass
class CommRecord:
    """One aggregated IPM-style call record."""

    rank: int
    call: str
    size: int
    peer: int
    region: str = "steady"
    count: int = 1
    total_time: float = 0.0
    min_time: float = 0.0
    max_time: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CommRecord":
        return cls(
            rank=int(d["rank"]),
            call=str(d["call"]),
            size=int(d["size"]),
            peer=int(d["peer"]),
            region=str(d.get("region", "steady")),
            count=int(d.get("count", 1)),
            total_time=float(d.get("total_time", 0.0)),
            min_time=float(d.get("min_time", 0.0)),
            max_time=float(d.get("max_time", 0.0)),
        )

    @property
    def bytes_moved(self) -> int:
        return self.size * self.count

    @property
    def is_ptp(self) -> bool:
        return self.call in PTP_CALLS

    @property
    def is_send(self) -> bool:
        return self.call in SEND_CALLS

    @property
    def is_recv(self) -> bool:
        return self.call in RECV_CALLS

    @property
    def is_collective(self) -> bool:
        return self.call in COLLECTIVE_CALLS


@dataclass
class Trace:
    """A complete synthetic (or cached) application trace."""

    app: str
    nranks: int
    records: list[CommRecord]
    overrides: dict[str, Any] = field(default_factory=dict)

    @property
    def call_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for r in self.records:
            totals[r.call] = totals.get(r.call, 0) + r.count
        return totals

    def to_document(self) -> dict[str, Any]:
        """Serialize to the on-disk repro-cache document (format 2)."""
        return {
            "format": 2,
            "metadata": {
                "app": self.app,
                "nranks": self.nranks,
                "overrides": dict(self.overrides),
            },
            "call_totals": self.call_totals,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_document(cls, doc: dict[str, Any]) -> "Trace":
        meta = doc["metadata"]
        return cls(
            app=str(meta["app"]),
            nranks=int(meta["nranks"]),
            overrides=dict(meta.get("overrides", {})),
            records=[CommRecord.from_dict(r) for r in doc["records"]],
        )


def aggregate(records: Iterable[CommRecord]) -> list[CommRecord]:
    """Merge records sharing (rank, call, size, peer, region)."""
    merged: dict[tuple, CommRecord] = {}
    for r in records:
        key = (r.rank, r.call, r.size, r.peer, r.region)
        cur = merged.get(key)
        if cur is None:
            merged[key] = CommRecord(**r.to_dict())
        else:
            cur.count += r.count
            cur.total_time += r.total_time
            cur.min_time = min(cur.min_time, r.min_time) if cur.count else r.min_time
            cur.max_time = max(cur.max_time, r.max_time)
    return list(merged.values())
