"""Fault-injection harness for scheduler chaos testing.

Faults are declared through the ``HFAST_FAULT_INJECT`` environment
variable (inherited by worker processes), as a comma-separated list of
``mode:cell_key:n`` entries, where ``mode`` is one of

- ``crash`` — SIGKILL the worker process mid-cell (a hard crash the
  parent detects through liveness and re-dispatches);
- ``hang``  — wedge the worker: heartbeats stop and the cell never
  finishes, so the parent's heartbeat timeout must fire;
- ``flaky`` — raise :class:`TransientFault` (an ordinary in-cell failure
  the retry policy absorbs);
- ``slow``  — sleep inside the cell's timed region so the cell succeeds
  but with an inflated wall time (exercises the straggler detector);

``cell_key`` is the ``{app}_p{nranks}`` cell name and ``n`` is the number
of leading attempts affected: ``crash:gtc_p16:1`` kills the worker on
attempt 1 only, so the re-dispatched attempt 2 succeeds.

Production runs leave the variable unset; the injection check is one dict
lookup per cell execution.
"""

from __future__ import annotations

import os
import signal
import threading
import time

FAULT_ENV_VAR = "HFAST_FAULT_INJECT"
FAULT_MODES = ("crash", "hang", "flaky", "slow")

_HANG_SECONDS = 3600.0
_SLOW_SECONDS = 1.0  # tests monkeypatch this down


class TransientFault(RuntimeError):
    """An injected failure that a retry is expected to absorb."""


class FaultSpecError(ValueError):
    """A malformed fault-injection spec string."""


def parse_fault_spec(spec: str | None) -> dict[str, tuple[str, int]]:
    """Parse ``mode:cell:n[,mode:cell:n...]`` into {cell: (mode, n)}."""
    faults: dict[str, tuple[str, int]] = {}
    if not spec:
        return faults
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) != 3:
            raise FaultSpecError(f"expected mode:cell:n, got {entry!r}")
        mode, cell, n_s = parts
        if mode not in FAULT_MODES:
            raise FaultSpecError(f"unknown fault mode {mode!r} (expected one of {FAULT_MODES})")
        try:
            n = int(n_s)
        except ValueError as exc:
            raise FaultSpecError(f"attempt count must be an integer, got {n_s!r}") from exc
        if n < 0:
            raise FaultSpecError(f"attempt count must be non-negative, got {n}")
        faults[cell] = (mode, n)
    return faults


def maybe_inject(cell_key: str, attempt: int, wedge: threading.Event | None = None) -> None:
    """Fire the configured fault for (cell, attempt), if any.

    Called by the worker harness just before a cell executes. ``crash``
    SIGKILLs the calling process; ``hang`` sets ``wedge`` (silencing the
    worker's heartbeat thread, simulating a fully wedged process) and
    sleeps until the parent kills us; ``flaky`` raises
    :class:`TransientFault` for the retry path to absorb.
    """
    spec = os.environ.get(FAULT_ENV_VAR)
    if not spec:
        return
    fault = parse_fault_spec(spec).get(cell_key)
    if fault is None:
        return
    mode, n = fault
    if attempt > n:
        return
    if mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        if wedge is not None:
            wedge.set()
        time.sleep(_HANG_SECONDS)
    elif mode == "flaky":
        raise TransientFault(f"injected transient fault for {cell_key} attempt {attempt}")
    # "slow" fires from inject_slow() inside the cell's timed region instead:
    # sleeping here would not inflate the wall time _execute_cell measures.


def inject_slow(cell_key: str, attempt: int) -> None:
    """Fire a configured ``slow`` fault for (cell, attempt), if any.

    Called from inside the cell's measured window (so the delay shows up
    in the cell's ``wall_s`` and trips the straggler detector). No-op for
    every other fault mode.
    """
    spec = os.environ.get(FAULT_ENV_VAR)
    if not spec:
        return
    fault = parse_fault_spec(spec).get(cell_key)
    if fault is not None and fault[0] == "slow" and attempt <= fault[1]:
        time.sleep(_SLOW_SECONDS)
