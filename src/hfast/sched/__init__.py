"""Fault-tolerant work-stealing scheduler for the (app, scale) cell matrix.

The subsystem replaces static cell partitioning with a cost-model-driven
shared queue: idle workers steal the largest remaining cell, transient
failures retry with exponential backoff, crashed or hung workers are
detected (liveness + heartbeats) and their cells re-dispatched, and a
run-state journal makes long campaigns resumable with ``--resume``.

Modules:

- :mod:`hfast.sched.cost` — per-cell cost estimates from the synthesizer
  record-count formulas, calibrated against prior ``BENCH_*.json`` runs.
- :mod:`hfast.sched.faults` — the fault-injection harness used by the
  chaos tests and CI (crash / hang / flaky, per cell, per attempt).
- :mod:`hfast.sched.journal` — append-only JSONL run journal; completed
  cells replay from it on resume, byte-identical to a live run.
- :mod:`hfast.sched.mitigate` — closed-loop straggler mitigation: live
  anomaly advisories become speculative re-dispatch / reprioritization
  hints for the scheduler (``--mitigate``).
- :mod:`hfast.sched.scheduler` — the work-stealing executor itself.
"""

from hfast.sched.cost import CostModel, estimate_cell_records
from hfast.sched.faults import FAULT_ENV_VAR, TransientFault, parse_fault_spec
from hfast.sched.journal import DEFAULT_JOURNAL_SUBDIR, JournalError, RunJournal, new_run_id
from hfast.sched.mitigate import MitigationPolicy
from hfast.sched.scheduler import SchedulerConfig, SchedulerError, run_stealing

__all__ = [
    "CostModel",
    "estimate_cell_records",
    "FAULT_ENV_VAR",
    "MitigationPolicy",
    "TransientFault",
    "parse_fault_spec",
    "DEFAULT_JOURNAL_SUBDIR",
    "JournalError",
    "RunJournal",
    "new_run_id",
    "SchedulerConfig",
    "SchedulerError",
    "run_stealing",
]
