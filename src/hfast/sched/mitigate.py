"""Closed-loop straggler mitigation for the work-stealing scheduler.

This is the repo's answer to the ROADMAP item "close the observability
loop": the online :class:`~hfast.obs.anomaly.AnomalyDetector` that
previously only *flagged* in-flight stragglers (``straggler_running``
advisories in the ``--live`` view) now feeds those advisories back into
the scheduler as actions, gated behind ``--mitigate``:

- **Speculative re-dispatch** — a flagged in-flight cell is duplicated
  onto an idle (or newly spawned) worker; whichever attempt finishes
  first wins and the loser is killed. Safe because cell execution is
  idempotent and cache writes are atomic (tmp + ``os.replace``), so a
  killed duplicate can never publish a torn artifact.
- **Cost-model reweighting** — once an app produces a straggler
  advisory, that app's still-queued cells have their priority scaled by
  the observed overrun ratio, so the slow family is dispatched earlier
  and overlaps with the rest of the sweep.

Determinism guarantee: mitigation only changes *which worker runs a cell
when*. Results, cache contents, trace-tree invariants, and report bytes
are identical to a non-mitigated run — exactly the contract the existing
byte-identity harness pins, and `tests/test_mitigation.py` extends it to
``--mitigate``.
"""

from __future__ import annotations

from typing import Any

DEFAULT_MIN_ADVISORY_GAP = 0.0  # re-advise immediately; scheduler dedups per cell


class MitigationPolicy:
    """Turns in-flight straggler advisories into scheduler hints.

    The scheduler calls :meth:`note_done` for every finished attempt (to
    warm the detector's online fit the same way the merge path does) and
    :meth:`advise` for every busy cell each poll tick; a non-``None``
    return is the hint to speculate. ``stats`` is folded into the run
    manifest's scheduler block.
    """

    def __init__(self, detector: Any):
        self.detector = detector
        self._reweighted_apps: set[str] = set()
        self.stats: dict[str, Any] = {
            "enabled": True,
            "advisories": 0,
            "speculative_dispatches": 0,
            "speculation_wins": 0,
            "speculation_losses": 0,
            "reweighted_cells": 0,
        }

    @classmethod
    def from_bench_dir(cls, bench_dir: Any, threshold: float | None = None) -> "MitigationPolicy":
        # Lazy import: hfast.obs.anomaly itself imports hfast.sched at
        # load time, so a module-level import here would be circular.
        from hfast.obs.anomaly import AnomalyDetector

        kwargs = {"threshold": threshold} if threshold else {}
        return cls(AnomalyDetector.from_bench_dir(bench_dir, **kwargs))

    def note_done(self, app: str, nranks: int, wall_s: float, ok: bool) -> None:
        """Fold a finished attempt into the detector's online fit."""
        self.detector.observe(app, nranks, wall_s, ok=ok)

    def advise(self, app: str, nranks: int, elapsed_s: float) -> dict[str, Any] | None:
        """Advisory for an in-flight cell, or None while it looks healthy."""
        adv = self.detector.check_running(app, nranks, elapsed_s)
        if adv is not None:
            self.stats["advisories"] += 1
        return adv

    def should_reweight(self, app: str) -> bool:
        """True exactly once per app: reweight its queued siblings."""
        if app in self._reweighted_apps:
            return False
        self._reweighted_apps.add(app)
        return True
