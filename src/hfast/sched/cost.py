"""Per-cell cost model for scheduling.

A cell's cost is dominated by how many aggregated records its app
synthesizes plus the dense nranks x nranks reductions downstream, so the
analytic estimate mirrors the generator formulas in :mod:`hfast.apps`
(paratec's all-to-all is O(nranks^2); the stencil codes are O(nranks)).

When prior runs left ``BENCH_*.json`` snapshots around, their per-cell
wall times calibrate the estimate: a measured cell costs exactly what it
measured, and unmeasured cells are scaled by the median measured-to-
analytic ratio so the two populations stay comparable. The model only
orders the work queue — a wrong estimate costs balance, never
correctness — so calibration is strictly best-effort and never raises.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from hfast.matcher import DEFAULT_MATCHER

# Relative matching work per backend: the pure-Python scalar matcher
# pays Python-loop overhead on every edge visit, the vectorized backend
# is the unit reference, and the incremental backend skips re-seeding
# unchanged edges across temporal steps. Only ratios matter.
MATCHER_COST_FACTORS = {"scalar": 25.0, "vector": 1.0, "incremental": 0.6}


def estimate_cell_records(app: str, nranks: int) -> float:
    """Analytic record-count estimate mirroring the apps.py generators."""
    n = max(1, nranks)
    if app == "paratec":
        # Dense personalized all-to-all: isend+irecv per ordered pair.
        return 2.0 * n * (n - 1) + 2.0 * n
    if app == "cactus":
        # Up to 6 grid neighbours, three records per pair, two per rank.
        return 6.0 * 3.0 * n + 2.0 * n
    if app == "lbmhd":
        # 8-offset skewed stencil, send+recv per surviving pair.
        return 8.0 * 2.0 * n + 2.0 * n
    if app == "gtc":
        # 1D shift: three records per rank plus the field allreduce.
        return 4.0 * n
    # Unknown app: assume a neighbour exchange so it still sorts sanely.
    return 8.0 * n


def estimate_cell_cost(app: str, nranks: int, matcher: str = DEFAULT_MATCHER) -> float:
    """Analytic cost estimate in arbitrary units.

    Record synthesis/aggregation is linear in the record count; the
    matrix reduction, topology pass, and circuit matching touch dense
    nranks^2 planes; the matching loop adds an E log E-ish term over the
    cell's edge population, scaled by the selected matcher backend
    (``MATCHER_COST_FACTORS`` — the scalar reference is far more
    expensive per edge than the vectorized backends). Constants are
    unitless — only the ordering across cells matters.
    """
    n = max(1, nranks)
    records = estimate_cell_records(app, nranks)
    dense = float(n) * n
    # Edge count tracks the record count (each link contributes a bounded
    # number of aggregated records), so records stand in for E here.
    factor = MATCHER_COST_FACTORS.get(matcher, 1.0)
    matching = 0.05 * factor * records * math.log2(n + 1)
    return records + 0.5 * dense * (1.0 + 0.1 * math.log2(n + 1)) + matching


def estimate_candidate_cost(
    app: str, nranks: int, matcher: str = DEFAULT_MATCHER, timesteps: int = 1
) -> float:
    """Analytic evaluation cost of one design-space candidate.

    Extends :func:`estimate_cell_cost` with the temporal dimension: the
    evaluator re-matches circuits once per traffic slice, so every
    timestep past the first adds another matching pass over the cell's
    edge population. Deterministic and machine-independent by
    construction — it stands in for measured wall time as the frontier's
    evaluation-cost objective (measured wall times stay in side-channel
    fields), which is what keeps the frontier artifact byte-identical
    across scheduler backends.
    """
    n = max(1, nranks)
    records = estimate_cell_records(app, nranks)
    factor = MATCHER_COST_FACTORS.get(matcher, 1.0)
    per_match = 0.05 * factor * records * math.log2(n + 1)
    return estimate_cell_cost(app, nranks, matcher) + per_match * max(0, timesteps - 1)


def _bench_sort_key(path: Path) -> tuple:
    try:
        stamp = json.loads(path.read_text(encoding="utf-8")).get("timestamp")
    except (OSError, ValueError):
        stamp = None
    return (stamp is not None, stamp or "", path.stat().st_mtime)


class CostModel:
    """Cost estimates for (app, nranks) cells, optionally BENCH-calibrated."""

    def __init__(
        self,
        measured: dict[tuple[str, int], float] | None = None,
        matcher: str = DEFAULT_MATCHER,
    ):
        self.measured = dict(measured or {})
        self.matcher = matcher
        self._scale = self._fit_scale()

    def _fit_scale(self) -> float:
        """Median measured/analytic ratio over calibrated cells (else 1)."""
        ratios = []
        for (app, nranks), wall in self.measured.items():
            est = estimate_cell_cost(app, nranks, self.matcher)
            if wall > 0 and est > 0:
                ratios.append(wall / est)
        if not ratios:
            return 1.0
        ratios.sort()
        return ratios[len(ratios) // 2]

    def estimate(self, app: str, nranks: int) -> float:
        wall = self.measured.get((app, nranks))
        if wall is not None and wall > 0:
            return wall
        return estimate_cell_cost(app, nranks, self.matcher) * self._scale

    @classmethod
    def from_bench_dir(
        cls, bench_dir: str | Path | None, matcher: str = DEFAULT_MATCHER
    ) -> "CostModel":
        """Calibrate from the newest ``BENCH_*.json`` under ``bench_dir``.

        Any read/parse problem degrades to the uncalibrated analytic
        model — prior-run telemetry must never block a new run.
        """
        return cls(measured=load_bench_measurements(bench_dir), matcher=matcher)


def load_bench_measurements(bench_dir: str | Path | None) -> dict[tuple[str, int], float]:
    """Per-cell wall times from the newest ``BENCH_*.json`` in a directory.

    Strictly best-effort: a missing directory, no snapshots, or a
    malformed file all return an empty mapping rather than raising. Used
    both to calibrate the scheduler's cost model and as the regression
    baseline for the online anomaly detector.
    """
    if bench_dir is None:
        return {}
    try:
        found = sorted(Path(bench_dir).glob("BENCH_*.json"), key=_bench_sort_key)
    except OSError:
        return {}
    if not found:
        return {}
    try:
        doc = json.loads(found[-1].read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return cells_from_bench(doc)


def cells_from_bench(doc: Any) -> dict[tuple[str, int], float]:
    """Extract {(app, nranks): wall_s} from a BENCH document's cell table."""
    measured: dict[tuple[str, int], float] = {}
    if not isinstance(doc, dict):
        return measured
    cells = (doc.get("profile") or {}).get("cells") or []
    for cell in cells:
        try:
            if cell.get("ok") and float(cell.get("wall_s", 0.0)) > 0:
                measured[(str(cell["app"]), int(cell["nranks"]))] = float(cell["wall_s"])
        except (KeyError, TypeError, ValueError):
            continue
    return measured
