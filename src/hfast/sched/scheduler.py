"""Cost-model-driven work-stealing scheduler with fault tolerance.

The parent process owns a shared queue of (app, nranks) cells ordered by
estimated cost (largest first). Worker processes pull work over private
duplex pipes: when a worker goes idle it steals the largest remaining
cell, so a skewed matrix (paratec@4K next to cactus@8) keeps every
worker busy instead of pinning the heavy tail onto one static shard.

Fault tolerance:

- **Transient failures** — a cell whose execution raises is retried with
  exponential backoff up to ``max_retries`` times; only a cell that
  exhausts its retries is reported failed.
- **Crashed workers** — each worker is liveness-checked every poll; a
  worker that dies mid-cell (SIGKILL, OOM) has its cell re-dispatched
  and a replacement worker spawned.
- **Hung workers** — workers heartbeat over their pipe; a busy worker
  silent for ``heartbeat_timeout`` seconds is killed and treated as
  crashed.
- **Resume** — completed cells are journaled (see
  :mod:`hfast.sched.journal`); a resumed run replays them from the
  journal instead of re-executing.

Determinism: scheduling only changes *when* a cell runs, never what it
computes. Results are returned in cell-definition order, so the caller's
merge (results, spans, metrics, cache statistics) is byte-identical to a
serial run regardless of steal order, retries, or crashes.

Workers communicate over per-worker ``multiprocessing.Pipe`` pairs
rather than one shared queue: a SIGKILLed process can never wedge a
shared queue lock for the survivors, and a half-written message is
confined to the pipe of the worker that died.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from hfast.obs import stream
from hfast.obs.logs import get_logger
from hfast.obs.profile import Observability
from hfast.sched.cost import CostModel
from hfast.sched.faults import TransientFault, maybe_inject
from hfast.sched.journal import RunJournal


class SchedulerError(RuntimeError):
    """The scheduler could not run the sweep."""


@dataclass
class SchedulerConfig:
    """Knobs for the work-stealing executor."""

    workers: int = 2
    max_retries: int = 2  # retries after the first attempt
    heartbeat_timeout: float = 30.0  # busy + silent this long => presumed hung
    heartbeat_interval: float | None = None  # default: timeout / 4, capped at 1s
    retry_backoff: float = 0.05  # seconds; doubles per failed attempt
    poll_interval: float = 0.05  # parent event-loop tick

    @property
    def beat_interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return min(1.0, max(0.01, self.heartbeat_timeout / 4.0))


# ---------------------------------------------------------------------------
# Worker side


def _run_task(task: dict[str, Any], execute_fn: Callable, wedge: threading.Event) -> dict[str, Any]:
    """Execute one cell payload, routing injected faults appropriately."""
    t0 = time.perf_counter()
    key = f"{task['app']}_p{task['nranks']}"
    try:
        maybe_inject(key, task.get("attempt", 1), wedge=wedge)
    except TransientFault as exc:
        return {
            "app": task["app"],
            "nranks": task["nranks"],
            "index": task["index"],
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "summary": None,
            "wall_s": time.perf_counter() - t0,
            "events": [],
            "metrics": {},
            "cache": {},
        }
    return execute_fn(task)


def _worker_main(
    worker_id: int,
    conn: Any,
    execute_fn: Callable,
    beat_interval: float,
) -> None:
    """Worker loop: recv task, execute, send result; heartbeat on the side."""
    wedge = threading.Event()
    send_lock = threading.Lock()
    current: dict[str, Any] = {"index": None}

    def send(msg: tuple) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass

    # Live telemetry rides the same duplex pipe as ("ev", event) messages.
    # Registration is unconditional; the forwarder only engages for payloads
    # that carry live=True, so non-live runs never send an "ev".
    stream.set_worker_channel(lambda ev: send(("ev", ev)), worker_id=worker_id)

    def beat() -> None:
        while not wedge.is_set():
            time.sleep(beat_interval)
            if wedge.is_set():
                return
            send(("beat", current["index"]))

    threading.Thread(target=beat, daemon=True).start()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        current["index"] = task["index"]
        send(("started", task["index"]))
        result = _run_task(task, execute_fn, wedge)
        current["index"] = None
        send(("result", task["index"], result))


# ---------------------------------------------------------------------------
# Parent side


class _WorkerSlot:
    __slots__ = (
        "worker_id", "proc", "conn", "busy", "busy_since", "last_beat",
        "tasks_done", "had_task",
    )

    def __init__(self, worker_id: int, proc: Any, conn: Any):
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.busy: tuple[int, Any] | None = None  # (cell index, cell)
        self.busy_since = time.monotonic()
        self.last_beat = time.monotonic()
        self.tasks_done = 0
        self.had_task = False


def _death_result(cell: Any, attempt: int, reason: str) -> dict[str, Any]:
    return {
        "app": cell.app,
        "nranks": cell.nranks,
        "index": cell.index,
        "ok": False,
        "error": f"WorkerLost: {reason} (attempt {attempt})",
        "summary": None,
        "wall_s": 0.0,
        "attempts": attempt,
        "events": [],
        "metrics": {},
        "cache": {},
    }


def run_stealing(
    cells: Sequence[Any],
    make_payload: Callable[[Any, int], dict[str, Any]],
    execute_fn: Callable[[dict[str, Any]], dict[str, Any]],
    config: SchedulerConfig,
    cost_model: CostModel | None = None,
    obs: Observability | None = None,
    journal: RunJournal | None = None,
    on_event: Callable[[dict[str, Any]], None] | None = None,
    mitigator: Any = None,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Run cells under the work-stealing scheduler.

    Returns ``(results, stats)`` where ``results`` holds one raw worker
    result per cell in cell-definition order (journal replays included)
    and ``stats`` is the scheduler bookkeeping destined for the run
    manifest. Every result carries ``attempts``; failed cells have
    ``ok=False`` after exhausting their retries.

    ``on_event`` receives live telemetry as it happens: scheduling
    transitions (``cell_state``/``worker_lost``/``heartbeat``) plus
    every ``("ev", ...)`` message a worker forwards over its pipe. It is
    a pure side-channel — exceptions are swallowed, and nothing it sees
    feeds back into results or stats.

    ``mitigator`` (a :class:`hfast.sched.mitigate.MitigationPolicy`)
    closes the observability loop: every poll tick the busy cells are
    scored against its online straggler detector, and a flagged cell is
    speculatively duplicated onto an idle/spawned worker — first result
    wins, the loser is killed — while still-queued cells of the flagged
    app get their priority reweighted. Mitigation changes only *where
    and when* cells run (and therefore wall time); results, cache, and
    trace-shape invariants are untouched, because duplicate execution is
    idempotent and losers are discarded before the merge.
    """
    cost_model = cost_model or CostModel()
    # Ambient structured log: a no-op unless the process configured one
    # (hfast analyze --log-out, the serve daemon); correlation ids let a
    # reader join these records against the trace.
    log = get_logger(component="sched", run_id=journal.run_id if journal is not None else None)

    def emit_live(event: dict[str, Any]) -> None:
        if on_event is not None:
            try:
                on_event(event)
            except Exception:
                pass
    stats: dict[str, Any] = {
        "backend": "stealing",
        "workers": config.workers,
        "max_retries": config.max_retries,
        "heartbeat_timeout": config.heartbeat_timeout,
        "tasks_dispatched": 0,
        "steals": 0,
        "retries": 0,
        "redispatches": 0,
        "workers_spawned": 0,
        "workers_lost": 0,
        "max_queue_depth": 0,
        "cells_from_journal": 0,
    }
    completed: dict[int, dict[str, Any]] = {}
    attempts: dict[int, int] = {}
    speculated: set[int] = set()  # cell indices with a duplicate in flight (or done)
    # Events from failed attempts, kept so retries graft as sibling spans
    # under the cell span instead of vanishing (or duplicating roots).
    prior_attempts: dict[int, list[dict[str, Any]]] = {}

    if journal is not None:
        for cell in cells:
            entry = journal.completed.get(cell.index)
            if entry is not None:
                replay = dict(entry["result"])
                replay["attempts"] = entry["attempts"]
                replay["from_journal"] = True
                completed[cell.index] = replay
                stats["cells_from_journal"] += 1

    pending: list[tuple[float, int, Any]] = [
        (-cost_model.estimate(c.app, c.nranks), c.index, c)
        for c in cells
        if c.index not in completed
    ]
    heapq.heapify(pending)
    delayed: list[tuple[float, float, int, Any]] = []  # (due, -cost, index, cell)
    stats["max_queue_depth"] = len(pending)

    ctx = mp.get_context()
    slots: dict[int, _WorkerSlot] = {}
    next_worker_id = 0

    def spawn_worker() -> _WorkerSlot:
        nonlocal next_worker_id
        worker_id = next_worker_id
        next_worker_id += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(worker_id, child_conn, execute_fn, config.beat_interval),
            daemon=True,
            name=f"hfast-sched-{worker_id}",
        )
        proc.start()
        child_conn.close()
        slot = _WorkerSlot(worker_id, proc, parent_conn)
        slots[worker_id] = slot
        stats["workers_spawned"] += 1
        return slot

    def assign(slot: _WorkerSlot) -> bool:
        """Hand the largest pending cell to an idle worker."""
        neg_cost, index, cell = heapq.heappop(pending)
        attempts[index] = attempts.get(index, 0) + 1
        task = make_payload(cell, attempts[index])
        task["attempt"] = attempts[index]
        try:
            slot.conn.send(task)
        except (BrokenPipeError, OSError):
            heapq.heappush(pending, (neg_cost, index, cell))
            attempts[index] -= 1
            return False
        stolen = slot.had_task
        if stolen:
            stats["steals"] += 1
        slot.had_task = True
        slot.busy = (index, cell)
        slot.busy_since = time.monotonic()
        slot.last_beat = time.monotonic()
        stats["tasks_dispatched"] += 1
        emit_live(
            {
                "event": "cell_state",
                "state": "running",
                "cell": f"{cell.app}_p{cell.nranks}",
                "worker": slot.worker_id,
                "attempt": attempts[index],
                "stolen": stolen,
            }
        )
        return True

    def retire(slot: _WorkerSlot) -> None:
        slots.pop(slot.worker_id, None)
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join(timeout=2.0)
        if obs is not None and obs.enabled:
            obs.tracer.emit_event(
                "sched_worker",
                {"worker": slot.worker_id, "tasks_done": slot.tasks_done},
            )

    def running_elsewhere(index: int, but: _WorkerSlot | None = None) -> bool:
        return any(
            s is not but and s.busy is not None and s.busy[0] == index
            for s in slots.values()
        )

    def handle_finished(slot: _WorkerSlot, index: int, result: dict[str, Any]) -> None:
        cell = slot.busy[1] if slot.busy else None
        slot.busy = None
        slot.last_beat = time.monotonic()
        if index in completed:
            # A speculative duplicate lost the race after the winner was
            # recorded; its (identical) result is discarded unmerged.
            if mitigator is not None:
                mitigator.stats["speculation_losses"] += 1
            return
        n_attempts = attempts.get(index, 1)
        key = f"{result['app']}_p{result['nranks']}"
        if mitigator is not None:
            mitigator.note_done(
                result["app"], result["nranks"], result.get("wall_s", 0.0),
                ok=bool(result.get("ok")),
            )
        if not result.get("ok") and running_elsewhere(index):
            # A failed attempt whose speculative duplicate is still running:
            # the duplicate *is* the retry, so keep its events for grafting
            # but schedule nothing new.
            prior_attempts.setdefault(index, []).append(
                {
                    "attempt": n_attempts,
                    "events": result.get("events") or [],
                    "error": result.get("error"),
                }
            )
            return
        if not result.get("ok") and n_attempts <= config.max_retries and cell is not None:
            stats["retries"] += 1
            prior_attempts.setdefault(index, []).append(
                {
                    "attempt": n_attempts,
                    "events": result.get("events") or [],
                    "error": result.get("error"),
                }
            )
            due = time.monotonic() + config.retry_backoff * (2 ** (n_attempts - 1))
            heapq.heappush(delayed, (due, -cost_model.estimate(cell.app, cell.nranks), index, cell))
            log.warning(
                "cell_retry",
                cell=key,
                worker=slot.worker_id,
                attempt=n_attempts,
                error=result.get("error"),
            )
            emit_live(
                {
                    "event": "cell_state",
                    "state": "retry",
                    "cell": key,
                    "worker": slot.worker_id,
                    "attempt": n_attempts,
                    "error": result.get("error"),
                }
            )
        else:
            result = dict(result)
            result["attempts"] = n_attempts
            result["worker"] = slot.worker_id
            if index in prior_attempts:
                result["prior_attempts"] = prior_attempts.pop(index)
            completed[index] = result
            slot.tasks_done += 1
            if result.get("ok") and journal is not None:
                journal.record_done(index, key, n_attempts, result)
            if index in speculated:
                if mitigator is not None:
                    mitigator.stats["speculation_wins"] += 1
                # Kill any still-running duplicate of this cell: its result
                # is redundant, and cache writes are atomic, so a SIGKILL
                # mid-cell can never publish a torn artifact.
                for other in list(slots.values()):
                    if other is not slot and other.busy is not None and other.busy[0] == index:
                        other.busy = None
                        if mitigator is not None:
                            mitigator.stats["speculation_losses"] += 1
                        retire(other)
            emit_live(
                {
                    "event": "cell_state",
                    "state": "done" if result.get("ok") else "failed",
                    "cell": key,
                    "worker": slot.worker_id,
                    "attempt": n_attempts,
                    "wall_s": result.get("wall_s"),
                }
            )
        if obs is not None and obs.enabled:
            obs.metrics.counter("sched.tasks_finished").inc()
            obs.tracer.emit_event(
                "sched_task",
                {
                    "cell": f"{result['app']}_p{result['nranks']}",
                    "worker": slot.worker_id,
                    "attempt": n_attempts,
                    "ok": bool(result.get("ok")),
                    "wall_s": result.get("wall_s", 0.0),
                },
            )

    def handle_lost_worker(slot: _WorkerSlot, reason: str) -> None:
        stats["workers_lost"] += 1
        log.error(
            "worker_lost",
            worker=slot.worker_id,
            cell=f"{slot.busy[1].app}_p{slot.busy[1].nranks}" if slot.busy else None,
            reason=reason,
        )
        emit_live(
            {
                "event": "worker_lost",
                "worker": slot.worker_id,
                "cell": f"{slot.busy[1].app}_p{slot.busy[1].nranks}" if slot.busy else None,
                "reason": reason,
            }
        )
        if slot.busy is not None:
            index, cell = slot.busy
            slot.busy = None
            if index in completed:
                # Lost worker was a speculation loser; nothing to recover.
                if mitigator is not None:
                    mitigator.stats["speculation_losses"] += 1
                retire(slot)
                return
            if running_elsewhere(index):
                # The cell's speculative duplicate is still alive and will
                # deliver the result; no re-dispatch needed.
                prior_attempts.setdefault(index, []).append(
                    {"attempt": attempts.get(index, 1), "events": [], "error": reason}
                )
                retire(slot)
                return
            stats["redispatches"] += 1
            prior_attempts.setdefault(index, []).append(
                {"attempt": attempts.get(index, 1), "events": [], "error": reason}
            )
            log.warning(
                "cell_redispatch",
                cell=f"{cell.app}_p{cell.nranks}",
                attempt=attempts.get(index, 1),
                reason=reason,
            )
            if attempts.get(index, 1) <= config.max_retries:
                # Crash re-dispatch goes straight back onto the queue: the
                # failure was the worker's, not the cell's.
                heapq.heappush(
                    pending, (-cost_model.estimate(cell.app, cell.nranks), index, cell)
                )
            else:
                dead = _death_result(cell, attempts.get(index, 1), reason)
                if index in prior_attempts:
                    dead["prior_attempts"] = prior_attempts.pop(index)
                completed[index] = dead
        retire(slot)

    try:
        while len(completed) < len(cells):
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, neg_cost, index, cell = heapq.heappop(delayed)
                heapq.heappush(pending, (neg_cost, index, cell))
            stats["max_queue_depth"] = max(stats["max_queue_depth"], len(pending) + len(delayed))

            # Keep the pool sized to the remaining work; this both spawns
            # the initial workers and replaces lost ones.
            outstanding = len(cells) - len(completed)
            while len(slots) < min(config.workers, outstanding):
                spawn_worker()
            for slot in list(slots.values()):
                if slot.busy is None and pending:
                    assign(slot)

            conns = [slot.conn for slot in slots.values()]
            if conns:
                ready = mp_connection.wait(conns, timeout=config.poll_interval)
            else:
                time.sleep(config.poll_interval)
                ready = []
            for conn in ready:
                slot = next((s for s in slots.values() if s.conn is conn), None)
                if slot is None:
                    continue
                while True:
                    try:
                        if not conn.poll():
                            break
                        msg = conn.recv()
                    except (EOFError, OSError):
                        break  # liveness check below reaps the worker
                    kind = msg[0]
                    if kind == "beat":
                        slot.last_beat = time.monotonic()
                        if on_event is not None:
                            busy = slot.busy
                            emit_live(
                                {
                                    "event": "heartbeat",
                                    "worker": slot.worker_id,
                                    "cell": f"{busy[1].app}_p{busy[1].nranks}" if busy else None,
                                }
                            )
                    elif kind == "started":
                        slot.last_beat = time.monotonic()
                    elif kind == "ev":
                        emit_live(msg[1])
                    elif kind == "result":
                        handle_finished(slot, msg[1], msg[2])

            if mitigator is not None:
                now = time.monotonic()
                for slot in list(slots.values()):
                    if slot.busy is None:
                        continue
                    index, cell = slot.busy
                    if index in speculated or index in completed:
                        continue
                    adv = mitigator.advise(cell.app, cell.nranks, now - slot.busy_since)
                    if adv is None:
                        continue
                    emit_live(
                        {
                            "event": "mitigation",
                            "action": "speculate",
                            "cell": f"{cell.app}_p{cell.nranks}",
                            "worker": slot.worker_id,
                            "elapsed_s": round(now - slot.busy_since, 6),
                            "expected_s": adv.get("expected_s"),
                        }
                    )
                    if mitigator.should_reweight(cell.app):
                        # Queued siblings of the flagged app jump the queue by
                        # the observed overrun, so the slow family overlaps
                        # with the rest of the sweep instead of trailing it.
                        ratio = float(adv.get("ratio") or 1.0)
                        touched = 0
                        for i, (neg_cost, idx2, c2) in enumerate(pending):
                            if c2.app == cell.app:
                                pending[i] = (neg_cost * max(1.0, ratio), idx2, c2)
                                touched += 1
                        if touched:
                            heapq.heapify(pending)
                        mitigator.stats["reweighted_cells"] += touched
                    target = next((s for s in slots.values() if s.busy is None), None)
                    if target is None and len(slots) < config.workers:
                        target = spawn_worker()
                    if target is None:
                        continue  # no capacity this tick; re-advised next tick
                    attempts[index] = attempts.get(index, 1) + 1
                    task = make_payload(cell, attempts[index])
                    task["attempt"] = attempts[index]
                    task["speculative"] = True
                    try:
                        target.conn.send(task)
                    except (BrokenPipeError, OSError):
                        attempts[index] -= 1
                        continue
                    speculated.add(index)
                    target.had_task = True
                    target.busy = (index, cell)
                    target.busy_since = time.monotonic()
                    target.last_beat = time.monotonic()
                    stats["tasks_dispatched"] += 1
                    mitigator.stats["speculative_dispatches"] += 1
                    emit_live(
                        {
                            "event": "cell_state",
                            "state": "running",
                            "cell": f"{cell.app}_p{cell.nranks}",
                            "worker": target.worker_id,
                            "attempt": attempts[index],
                            "stolen": False,
                            "speculative": True,
                        }
                    )

            now = time.monotonic()
            for slot in list(slots.values()):
                if not slot.proc.is_alive():
                    handle_lost_worker(slot, f"worker {slot.worker_id} died")
                elif slot.busy is not None and now - slot.last_beat > config.heartbeat_timeout:
                    slot.proc.kill()
                    handle_lost_worker(
                        slot,
                        f"worker {slot.worker_id} missed heartbeats for "
                        f"{config.heartbeat_timeout:.1f}s",
                    )
    finally:
        for slot in list(slots.values()):
            # A worker still grinding through a speculation loser would
            # stall the joins below for the full duplicate runtime; kill it
            # (idempotent work, atomic cache writes — nothing is lost).
            if slot.busy is not None and slot.busy[0] in completed:
                slot.proc.kill()
                continue
            try:
                slot.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for slot in list(slots.values()):
            slot.proc.join(timeout=2.0)
            retire(slot)

    if mitigator is not None:
        stats["mitigation"] = dict(mitigator.stats)

    if obs is not None and obs.enabled:
        for key in ("steals", "retries", "redispatches", "tasks_dispatched"):
            obs.metrics.counter(f"sched.{key}").inc(stats[key])
        obs.metrics.gauge("sched.max_queue_depth").set(stats["max_queue_depth"])
        if mitigator is not None:
            for key in ("advisories", "speculative_dispatches", "speculation_wins"):
                obs.metrics.counter(f"sched.mitigation_{key}").inc(mitigator.stats[key])

    results = [completed[c.index] for c in cells]
    if journal is not None and all(r.get("ok") for r in results):
        if not journal.complete:
            journal.record_complete()
    return results, stats
