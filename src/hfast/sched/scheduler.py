"""Cost-model-driven work-stealing scheduler with fault tolerance.

The parent process owns a shared queue of (app, nranks) cells ordered by
estimated cost (largest first). Worker processes pull work over private
duplex pipes: when a worker goes idle it steals the largest remaining
cell, so a skewed matrix (paratec@4K next to cactus@8) keeps every
worker busy instead of pinning the heavy tail onto one static shard.

Fault tolerance:

- **Transient failures** — a cell whose execution raises is retried with
  exponential backoff up to ``max_retries`` times; only a cell that
  exhausts its retries is reported failed.
- **Crashed workers** — each worker is liveness-checked every poll; a
  worker that dies mid-cell (SIGKILL, OOM) has its cell re-dispatched
  and a replacement worker spawned.
- **Hung workers** — workers heartbeat over their pipe; a busy worker
  silent for ``heartbeat_timeout`` seconds is killed and treated as
  crashed.
- **Resume** — completed cells are journaled (see
  :mod:`hfast.sched.journal`); a resumed run replays them from the
  journal instead of re-executing.

Determinism: scheduling only changes *when* a cell runs, never what it
computes. Results are returned in cell-definition order, so the caller's
merge (results, spans, metrics, cache statistics) is byte-identical to a
serial run regardless of steal order, retries, or crashes.

Workers communicate over per-worker ``multiprocessing.Pipe`` pairs
rather than one shared queue: a SIGKILLed process can never wedge a
shared queue lock for the survivors, and a half-written message is
confined to the pipe of the worker that died.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from hfast.obs import stream
from hfast.obs.profile import Observability
from hfast.sched.cost import CostModel
from hfast.sched.faults import TransientFault, maybe_inject
from hfast.sched.journal import RunJournal


class SchedulerError(RuntimeError):
    """The scheduler could not run the sweep."""


@dataclass
class SchedulerConfig:
    """Knobs for the work-stealing executor."""

    workers: int = 2
    max_retries: int = 2  # retries after the first attempt
    heartbeat_timeout: float = 30.0  # busy + silent this long => presumed hung
    heartbeat_interval: float | None = None  # default: timeout / 4, capped at 1s
    retry_backoff: float = 0.05  # seconds; doubles per failed attempt
    poll_interval: float = 0.05  # parent event-loop tick

    @property
    def beat_interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return min(1.0, max(0.01, self.heartbeat_timeout / 4.0))


# ---------------------------------------------------------------------------
# Worker side


def _run_task(task: dict[str, Any], execute_fn: Callable, wedge: threading.Event) -> dict[str, Any]:
    """Execute one cell payload, routing injected faults appropriately."""
    t0 = time.perf_counter()
    key = f"{task['app']}_p{task['nranks']}"
    try:
        maybe_inject(key, task.get("attempt", 1), wedge=wedge)
    except TransientFault as exc:
        return {
            "app": task["app"],
            "nranks": task["nranks"],
            "index": task["index"],
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "summary": None,
            "wall_s": time.perf_counter() - t0,
            "events": [],
            "metrics": {},
            "cache": {},
        }
    return execute_fn(task)


def _worker_main(
    worker_id: int,
    conn: Any,
    execute_fn: Callable,
    beat_interval: float,
) -> None:
    """Worker loop: recv task, execute, send result; heartbeat on the side."""
    wedge = threading.Event()
    send_lock = threading.Lock()
    current: dict[str, Any] = {"index": None}

    def send(msg: tuple) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass

    # Live telemetry rides the same duplex pipe as ("ev", event) messages.
    # Registration is unconditional; the forwarder only engages for payloads
    # that carry live=True, so non-live runs never send an "ev".
    stream.set_worker_channel(lambda ev: send(("ev", ev)), worker_id=worker_id)

    def beat() -> None:
        while not wedge.is_set():
            time.sleep(beat_interval)
            if wedge.is_set():
                return
            send(("beat", current["index"]))

    threading.Thread(target=beat, daemon=True).start()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        current["index"] = task["index"]
        send(("started", task["index"]))
        result = _run_task(task, execute_fn, wedge)
        current["index"] = None
        send(("result", task["index"], result))


# ---------------------------------------------------------------------------
# Parent side


class _WorkerSlot:
    __slots__ = ("worker_id", "proc", "conn", "busy", "last_beat", "tasks_done", "had_task")

    def __init__(self, worker_id: int, proc: Any, conn: Any):
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.busy: tuple[int, Any] | None = None  # (cell index, cell)
        self.last_beat = time.monotonic()
        self.tasks_done = 0
        self.had_task = False


def _death_result(cell: Any, attempt: int, reason: str) -> dict[str, Any]:
    return {
        "app": cell.app,
        "nranks": cell.nranks,
        "index": cell.index,
        "ok": False,
        "error": f"WorkerLost: {reason} (attempt {attempt})",
        "summary": None,
        "wall_s": 0.0,
        "attempts": attempt,
        "events": [],
        "metrics": {},
        "cache": {},
    }


def run_stealing(
    cells: Sequence[Any],
    make_payload: Callable[[Any, int], dict[str, Any]],
    execute_fn: Callable[[dict[str, Any]], dict[str, Any]],
    config: SchedulerConfig,
    cost_model: CostModel | None = None,
    obs: Observability | None = None,
    journal: RunJournal | None = None,
    on_event: Callable[[dict[str, Any]], None] | None = None,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Run cells under the work-stealing scheduler.

    Returns ``(results, stats)`` where ``results`` holds one raw worker
    result per cell in cell-definition order (journal replays included)
    and ``stats`` is the scheduler bookkeeping destined for the run
    manifest. Every result carries ``attempts``; failed cells have
    ``ok=False`` after exhausting their retries.

    ``on_event`` receives live telemetry as it happens: scheduling
    transitions (``cell_state``/``worker_lost``/``heartbeat``) plus
    every ``("ev", ...)`` message a worker forwards over its pipe. It is
    a pure side-channel — exceptions are swallowed, and nothing it sees
    feeds back into results or stats.
    """
    cost_model = cost_model or CostModel()

    def emit_live(event: dict[str, Any]) -> None:
        if on_event is not None:
            try:
                on_event(event)
            except Exception:
                pass
    stats: dict[str, Any] = {
        "backend": "stealing",
        "workers": config.workers,
        "max_retries": config.max_retries,
        "heartbeat_timeout": config.heartbeat_timeout,
        "tasks_dispatched": 0,
        "steals": 0,
        "retries": 0,
        "redispatches": 0,
        "workers_spawned": 0,
        "workers_lost": 0,
        "max_queue_depth": 0,
        "cells_from_journal": 0,
    }
    completed: dict[int, dict[str, Any]] = {}
    attempts: dict[int, int] = {}
    # Events from failed attempts, kept so retries graft as sibling spans
    # under the cell span instead of vanishing (or duplicating roots).
    prior_attempts: dict[int, list[dict[str, Any]]] = {}

    if journal is not None:
        for cell in cells:
            entry = journal.completed.get(cell.index)
            if entry is not None:
                replay = dict(entry["result"])
                replay["attempts"] = entry["attempts"]
                replay["from_journal"] = True
                completed[cell.index] = replay
                stats["cells_from_journal"] += 1

    pending: list[tuple[float, int, Any]] = [
        (-cost_model.estimate(c.app, c.nranks), c.index, c)
        for c in cells
        if c.index not in completed
    ]
    heapq.heapify(pending)
    delayed: list[tuple[float, float, int, Any]] = []  # (due, -cost, index, cell)
    stats["max_queue_depth"] = len(pending)

    ctx = mp.get_context()
    slots: dict[int, _WorkerSlot] = {}
    next_worker_id = 0

    def spawn_worker() -> _WorkerSlot:
        nonlocal next_worker_id
        worker_id = next_worker_id
        next_worker_id += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(worker_id, child_conn, execute_fn, config.beat_interval),
            daemon=True,
            name=f"hfast-sched-{worker_id}",
        )
        proc.start()
        child_conn.close()
        slot = _WorkerSlot(worker_id, proc, parent_conn)
        slots[worker_id] = slot
        stats["workers_spawned"] += 1
        return slot

    def assign(slot: _WorkerSlot) -> bool:
        """Hand the largest pending cell to an idle worker."""
        neg_cost, index, cell = heapq.heappop(pending)
        attempts[index] = attempts.get(index, 0) + 1
        task = make_payload(cell, attempts[index])
        task["attempt"] = attempts[index]
        try:
            slot.conn.send(task)
        except (BrokenPipeError, OSError):
            heapq.heappush(pending, (neg_cost, index, cell))
            attempts[index] -= 1
            return False
        stolen = slot.had_task
        if stolen:
            stats["steals"] += 1
        slot.had_task = True
        slot.busy = (index, cell)
        slot.last_beat = time.monotonic()
        stats["tasks_dispatched"] += 1
        emit_live(
            {
                "event": "cell_state",
                "state": "running",
                "cell": f"{cell.app}_p{cell.nranks}",
                "worker": slot.worker_id,
                "attempt": attempts[index],
                "stolen": stolen,
            }
        )
        return True

    def retire(slot: _WorkerSlot) -> None:
        slots.pop(slot.worker_id, None)
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join(timeout=2.0)
        if obs is not None and obs.enabled:
            obs.tracer.emit_event(
                "sched_worker",
                {"worker": slot.worker_id, "tasks_done": slot.tasks_done},
            )

    def handle_finished(slot: _WorkerSlot, index: int, result: dict[str, Any]) -> None:
        cell = slot.busy[1] if slot.busy else None
        slot.busy = None
        slot.last_beat = time.monotonic()
        n_attempts = attempts.get(index, 1)
        key = f"{result['app']}_p{result['nranks']}"
        if not result.get("ok") and n_attempts <= config.max_retries and cell is not None:
            stats["retries"] += 1
            prior_attempts.setdefault(index, []).append(
                {
                    "attempt": n_attempts,
                    "events": result.get("events") or [],
                    "error": result.get("error"),
                }
            )
            due = time.monotonic() + config.retry_backoff * (2 ** (n_attempts - 1))
            heapq.heappush(delayed, (due, -cost_model.estimate(cell.app, cell.nranks), index, cell))
            emit_live(
                {
                    "event": "cell_state",
                    "state": "retry",
                    "cell": key,
                    "worker": slot.worker_id,
                    "attempt": n_attempts,
                    "error": result.get("error"),
                }
            )
        else:
            result = dict(result)
            result["attempts"] = n_attempts
            result["worker"] = slot.worker_id
            if index in prior_attempts:
                result["prior_attempts"] = prior_attempts.pop(index)
            completed[index] = result
            slot.tasks_done += 1
            if result.get("ok") and journal is not None:
                journal.record_done(index, key, n_attempts, result)
            emit_live(
                {
                    "event": "cell_state",
                    "state": "done" if result.get("ok") else "failed",
                    "cell": key,
                    "worker": slot.worker_id,
                    "attempt": n_attempts,
                    "wall_s": result.get("wall_s"),
                }
            )
        if obs is not None and obs.enabled:
            obs.metrics.counter("sched.tasks_finished").inc()
            obs.tracer.emit_event(
                "sched_task",
                {
                    "cell": f"{result['app']}_p{result['nranks']}",
                    "worker": slot.worker_id,
                    "attempt": n_attempts,
                    "ok": bool(result.get("ok")),
                    "wall_s": result.get("wall_s", 0.0),
                },
            )

    def handle_lost_worker(slot: _WorkerSlot, reason: str) -> None:
        stats["workers_lost"] += 1
        emit_live(
            {
                "event": "worker_lost",
                "worker": slot.worker_id,
                "cell": f"{slot.busy[1].app}_p{slot.busy[1].nranks}" if slot.busy else None,
                "reason": reason,
            }
        )
        if slot.busy is not None:
            index, cell = slot.busy
            slot.busy = None
            stats["redispatches"] += 1
            prior_attempts.setdefault(index, []).append(
                {"attempt": attempts.get(index, 1), "events": [], "error": reason}
            )
            if attempts.get(index, 1) <= config.max_retries:
                # Crash re-dispatch goes straight back onto the queue: the
                # failure was the worker's, not the cell's.
                heapq.heappush(
                    pending, (-cost_model.estimate(cell.app, cell.nranks), index, cell)
                )
            else:
                dead = _death_result(cell, attempts.get(index, 1), reason)
                if index in prior_attempts:
                    dead["prior_attempts"] = prior_attempts.pop(index)
                completed[index] = dead
        retire(slot)

    try:
        while len(completed) < len(cells):
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, neg_cost, index, cell = heapq.heappop(delayed)
                heapq.heappush(pending, (neg_cost, index, cell))
            stats["max_queue_depth"] = max(stats["max_queue_depth"], len(pending) + len(delayed))

            # Keep the pool sized to the remaining work; this both spawns
            # the initial workers and replaces lost ones.
            outstanding = len(cells) - len(completed)
            while len(slots) < min(config.workers, outstanding):
                spawn_worker()
            for slot in list(slots.values()):
                if slot.busy is None and pending:
                    assign(slot)

            conns = [slot.conn for slot in slots.values()]
            if conns:
                ready = mp_connection.wait(conns, timeout=config.poll_interval)
            else:
                time.sleep(config.poll_interval)
                ready = []
            for conn in ready:
                slot = next((s for s in slots.values() if s.conn is conn), None)
                if slot is None:
                    continue
                while True:
                    try:
                        if not conn.poll():
                            break
                        msg = conn.recv()
                    except (EOFError, OSError):
                        break  # liveness check below reaps the worker
                    kind = msg[0]
                    if kind == "beat":
                        slot.last_beat = time.monotonic()
                        if on_event is not None:
                            busy = slot.busy
                            emit_live(
                                {
                                    "event": "heartbeat",
                                    "worker": slot.worker_id,
                                    "cell": f"{busy[1].app}_p{busy[1].nranks}" if busy else None,
                                }
                            )
                    elif kind == "started":
                        slot.last_beat = time.monotonic()
                    elif kind == "ev":
                        emit_live(msg[1])
                    elif kind == "result":
                        handle_finished(slot, msg[1], msg[2])

            now = time.monotonic()
            for slot in list(slots.values()):
                if not slot.proc.is_alive():
                    handle_lost_worker(slot, f"worker {slot.worker_id} died")
                elif slot.busy is not None and now - slot.last_beat > config.heartbeat_timeout:
                    slot.proc.kill()
                    handle_lost_worker(
                        slot,
                        f"worker {slot.worker_id} missed heartbeats for "
                        f"{config.heartbeat_timeout:.1f}s",
                    )
    finally:
        for slot in list(slots.values()):
            try:
                slot.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for slot in list(slots.values()):
            slot.proc.join(timeout=2.0)
            retire(slot)

    if obs is not None and obs.enabled:
        for key in ("steals", "retries", "redispatches", "tasks_dispatched"):
            obs.metrics.counter(f"sched.{key}").inc(stats[key])
        obs.metrics.gauge("sched.max_queue_depth").set(stats["max_queue_depth"])

    results = [completed[c.index] for c in cells]
    if journal is not None and all(r.get("ok") for r in results):
        if not journal.complete:
            journal.record_complete()
    return results, stats
