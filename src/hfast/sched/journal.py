"""Run-state journal: crash-safe progress log enabling ``--resume``.

Each scheduler run appends JSONL records to
``<journal_dir>/<run_id>.jsonl``:

- one ``run`` header (cell list + a config fingerprint),
- one ``cell_done`` record per finished cell carrying the complete raw
  worker result (summary, span/app_summary events, metrics snapshot,
  cache statistics, attempts) — everything the deterministic merge needs,
- a final ``run_complete`` marker.

Resuming loads the journal, verifies the fingerprint matches the new
invocation (same matrix, backend, seed, config — resuming a different
sweep is an error, not a silent skip), and replays completed cells from
their journaled results instead of re-running them. Only successful
cells are journaled, so a failed or interrupted cell re-runs on resume;
the content-addressed ``.repro_cache`` makes that re-run idempotent.

Every record is written with ``flush`` + line granularity, so a run
killed mid-campaign loses at most the cell in flight.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Any

DEFAULT_JOURNAL_SUBDIR = ".sched_journal"
JOURNAL_FORMAT = 1


class JournalError(RuntimeError):
    """A journal could not be loaded or does not match the invocation."""


def new_run_id() -> str:
    """Sortable, collision-safe run id: utc timestamp + random suffix."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def has_journal(journal_dir: str | os.PathLike, run_id: str) -> bool:
    """True when a journal file exists for ``run_id`` under ``journal_dir``.

    The serve daemon's crash recovery uses this to decide between
    ``resume=<run_id>`` (a journal survived, replay its completed cells)
    and a fresh run under the same id (the daemon died before the
    scheduler wrote anything).
    """
    return (Path(journal_dir) / f"{run_id}.jsonl").is_file()


def journal_dir_for(cache_dir: str | os.PathLike, journal_dir: str | os.PathLike | None) -> Path:
    """Journal location: explicit dir, else a subdir beside the cache.

    The subdir keeps journals out of the cache's ``*.json`` glob while
    still colocating run state with the artifacts it describes.
    """
    if journal_dir is not None:
        return Path(journal_dir)
    return Path(cache_dir) / DEFAULT_JOURNAL_SUBDIR


class RunJournal:
    """Append-only JSONL journal for one scheduler run."""

    def __init__(self, path: Path, run_id: str, fingerprint: dict[str, Any]):
        self.path = path
        self.run_id = run_id
        self.fingerprint = fingerprint
        # index -> {"attempts": int, "result": raw worker result}
        self.completed: dict[int, dict[str, Any]] = {}
        self.complete = False

    # -- creation / loading -------------------------------------------------

    @classmethod
    def create(
        cls, journal_dir: str | os.PathLike, run_id: str, fingerprint: dict[str, Any]
    ) -> "RunJournal":
        path = Path(journal_dir) / f"{run_id}.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        journal = cls(path, run_id, fingerprint)
        journal._append(
            {
                "kind": "run",
                "journal_format": JOURNAL_FORMAT,
                "run_id": run_id,
                "fingerprint": fingerprint,
            }
        )
        return journal

    @classmethod
    def load(cls, journal_dir: str | os.PathLike, run_id: str) -> "RunJournal":
        path = Path(journal_dir) / f"{run_id}.jsonl"
        if not path.is_file():
            available = sorted(p.stem for p in Path(journal_dir).glob("*.jsonl")) if Path(
                journal_dir
            ).is_dir() else []
            raise JournalError(
                f"no journal for run '{run_id}' under {journal_dir} "
                f"(available: {', '.join(available) or 'none'})"
            )
        header: dict[str, Any] | None = None
        completed: dict[int, dict[str, Any]] = {}
        complete = False
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line is exactly what a crash leaves
                    # behind; everything before it is still good.
                    continue
                kind = rec.get("kind")
                if kind == "run":
                    if header is not None:
                        raise JournalError(f"{path}:{lineno}: duplicate run header")
                    header = rec
                elif kind == "cell_done":
                    completed[int(rec["index"])] = {
                        "attempts": int(rec.get("attempts", 1)),
                        "result": rec["result"],
                    }
                elif kind == "run_complete":
                    complete = True
        if header is None:
            raise JournalError(f"{path}: missing run header")
        journal = cls(path, run_id, header.get("fingerprint") or {})
        journal.completed = completed
        journal.complete = complete
        return journal

    # -- writing ------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def record_done(self, index: int, key: str, attempts: int, result: dict[str, Any]) -> None:
        self._append(
            {
                "kind": "cell_done",
                "index": index,
                "key": key,
                "attempts": attempts,
                "result": result,
            }
        )
        self.completed[index] = {"attempts": attempts, "result": result}

    def record_complete(self) -> None:
        self._append({"kind": "run_complete"})
        self.complete = True

    # -- resume validation --------------------------------------------------

    def check_fingerprint(self, fingerprint: dict[str, Any]) -> None:
        """Refuse to resume a journal from a different sweep."""
        if self.fingerprint != fingerprint:
            mismatched = sorted(
                k
                for k in set(self.fingerprint) | set(fingerprint)
                if self.fingerprint.get(k) != fingerprint.get(k)
            )
            raise JournalError(
                f"journal {self.run_id} does not match this invocation "
                f"(differs on: {', '.join(mismatched)})"
            )


def build_fingerprint(
    apps: list[str],
    scales: dict[str, list[int]],
    cache_dir: str,
    backend: str,
    timing_seed: int,
    store: bool,
    config_dict: dict[str, Any] | None,
    shard: tuple[int, int] | None,
) -> dict[str, Any]:
    """The invocation identity a resume must match cell-for-cell."""
    return {
        "apps": list(apps),
        "scales": {app: list(ns) for app, ns in scales.items()},
        "cache_dir": str(cache_dir),
        "backend": backend,
        "timing_seed": timing_seed,
        "store": store,
        "config": dict(config_dict) if config_dict else None,
        "shard": list(shard) if shard else None,
    }
