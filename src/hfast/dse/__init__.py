"""Design-space exploration over the temporal interconnect evaluator.

The subsystem treats the interconnect configuration knobs (circuits per
node, reconfiguration cost, matcher backend, traffic-slice granularity)
as search variables and the temporal evaluator as a fitness function:

- :mod:`hfast.dse.space` — declarative, validated parameter space with
  deterministic grid enumeration and seeded sampling.
- :mod:`hfast.dse.pareto` — sense-aware dominance filtering and frontier
  utilities.
- :mod:`hfast.dse.search` — grid and evolutionary strategies; every
  candidate evaluation is dispatched as a pipeline cell through the
  existing serial / process-pool / work-stealing backends, so searches
  shard, retry, journal, and resume exactly like analysis sweeps.
- :mod:`hfast.dse.calibrate` — fits the LogGP ``APP_PARAMS`` compute
  constants against the paper's %comm tables and emits a
  provenance-stamped params artifact :mod:`hfast.timing` can consume.

The repo throughline holds here too: the frontier artifact is a function
of (workload, space, seed, strategy) alone — same inputs on any
scheduler backend serialize byte-identically.
"""

from hfast.dse.pareto import Objective, dominates, pareto_frontier
from hfast.dse.space import Candidate, SearchSpace, SpaceValidationError

__all__ = [
    "Candidate",
    "Objective",
    "SearchSpace",
    "SpaceValidationError",
    "dominates",
    "pareto_frontier",
]
