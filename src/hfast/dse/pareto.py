"""Pareto dominance filtering and frontier utilities.

Objectives carry a *sense* (``min`` or ``max``); a point dominates
another when it is no worse on every objective and strictly better on at
least one. The frontier of a point set is the subset no other point
dominates. Properties the test suite pins:

- the frontier is mutually non-dominated;
- every dropped point is dominated by at least one frontier point;
- the frontier is insensitive to input order (the returned indices are
  sorted, and the *set* of surviving points is permutation-invariant);
- degenerate inputs behave: empty in, empty out; a single point is its
  own frontier; all-equal points are mutually non-dominated, so all
  survive.

Everything operates on plain ``{objective_name: value}`` mappings so the
search layer can attach whatever candidate metadata it likes alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

SENSES = ("min", "max")


@dataclass(frozen=True)
class Objective:
    """One named optimization axis with its direction."""

    name: str
    sense: str = "min"

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ValueError(f"objective {self.name!r}: sense must be one of {SENSES}")

    def ascending(self, value: float) -> float:
        """Map a raw value onto a minimized orientation for comparisons."""
        return -float(value) if self.sense == "max" else float(value)


def normalize(point: Mapping[str, float], objectives: Sequence[Objective]) -> tuple[float, ...]:
    """A point's objective vector in minimized orientation (for sorting)."""
    return tuple(obj.ascending(point[obj.name]) for obj in objectives)


def dominates(
    a: Mapping[str, float], b: Mapping[str, float], objectives: Sequence[Objective]
) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere."""
    better = False
    for obj in objectives:
        va, vb = obj.ascending(a[obj.name]), obj.ascending(b[obj.name])
        if va > vb:
            return False
        if va < vb:
            better = True
    return better


def frontier_indices(
    points: Sequence[Mapping[str, float]], objectives: Sequence[Objective]
) -> list[int]:
    """Indices of the non-dominated points, ascending.

    O(n^2) pairwise filtering — candidate populations are small (tens to
    a few hundred), and the simple form keeps the order-insensitivity
    property obvious: membership depends only on pairwise comparisons.
    """
    vecs = [normalize(p, objectives) for p in points]
    kept: list[int] = []
    for i, vi in enumerate(vecs):
        dominated = False
        for j, vj in enumerate(vecs):
            if i == j:
                continue
            # vj dominates vi?
            if all(b <= a for a, b in zip(vi, vj)) and any(b < a for a, b in zip(vi, vj)):
                dominated = True
                break
        if not dominated:
            kept.append(i)
    return kept


def pareto_frontier(
    points: Sequence[Mapping[str, float]], objectives: Sequence[Objective]
) -> tuple[list[int], list[int]]:
    """(frontier_indices, dominated_indices), both ascending."""
    kept = frontier_indices(points, objectives)
    kept_set = set(kept)
    return kept, [i for i in range(len(points)) if i not in kept_set]


def pareto_rank(
    points: Sequence[Mapping[str, float]], objectives: Sequence[Objective]
) -> list[int]:
    """Non-dominated sorting rank per point (0 = frontier, 1 = next layer, ...).

    Used by the evolutionary strategy's parent selection. Deterministic:
    ranks depend only on the point values.
    """
    ranks = [-1] * len(points)
    remaining = list(range(len(points)))
    layer = 0
    while remaining:
        subset = [points[i] for i in remaining]
        kept = frontier_indices(subset, objectives)
        kept_orig = {remaining[k] for k in kept}
        for i in kept_orig:
            ranks[i] = layer
        remaining = [i for i in remaining if i not in kept_orig]
        layer += 1
    return ranks


def sort_key(
    point: Mapping[str, Any], objectives: Sequence[Objective]
) -> tuple:
    """Canonical total order for frontier serialization: objective vector
    in minimized orientation, which makes the artifact independent of the
    order candidates happened to be evaluated in."""
    return normalize(point, objectives)
