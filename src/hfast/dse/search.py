"""Design-space search over the temporal interconnect evaluator.

A :class:`SearchSpec` fixes one workload (app, nranks, synthesis
backend, timing seed), a :class:`~hfast.dse.space.SearchSpace`, and a
strategy; :func:`run_search` evaluates candidates and returns the
Pareto frontier over four objectives:

- ``coverage`` (max) — fraction of traffic carried on circuits;
- ``packet_bytes`` (min) — bytes falling back to the packet fabric;
- ``reconfig_s`` (min) — total reconfiguration seconds charged;
- ``eval_cost`` (min) — the analytic evaluation cost
  (:func:`hfast.sched.cost.estimate_candidate_cost`), the deterministic
  stand-in for evaluation wall time. Measured wall times are recorded
  too, but only in side-channel fields outside the frontier artifact.

Each candidate evaluation is one pipeline cell: the exact payload shape
:func:`hfast.pipeline.execute_cell` runs for analysis sweeps, with the
candidate's interconnect config swapped in. Cells dispatch through the
same three backends as ``run_pipeline`` — serial, process pool, or the
work-stealing scheduler — so searches shard, retry, journal, and
``resume=<run-id>`` without any search-specific machinery. Candidate
results merge in candidate-definition order, making the frontier
artifact (`frontier_bytes`) byte-identical across backends; repeated
trace synthesis is free after the first candidate because every
candidate of a workload shares one repro-cache entry.

Strategies:

- ``grid`` — exhaustive enumeration in canonical dimension order.
- ``evolution`` — seeded initial population, Pareto-rank parent
  selection with canonical tie-breaks, and hash-driven mutation; every
  stochastic choice is a splitmix64 function of (seed, generation,
  stream), so fixed seed means a fixed candidate sequence.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from hfast.apps import APPS, BACKENDS, DEFAULT_BACKEND
from hfast.cache import DEFAULT_CACHE_DIR
from hfast.dse.pareto import Objective, pareto_frontier, pareto_rank, sort_key
from hfast.dse.space import Candidate, SearchSpace
from hfast.interconnect import InterconnectConfig
from hfast.obs.manifest import build_manifest
from hfast.obs.profile import Observability, get_obs
from hfast.pipeline import SCHEDULERS, execute_cell, graft_cell
from hfast.sched.cost import CostModel, estimate_candidate_cost
from hfast.sched.journal import (
    RunJournal,
    build_fingerprint,
    journal_dir_for,
    new_run_id,
)
from hfast.sched.scheduler import SchedulerConfig, run_stealing
from hfast.timing import DEFAULT_TIMING_SEED, mix64

FRONTIER_FORMAT = 1
FRONTIER_KIND = "hfast-dse-frontier"
STRATEGIES = ("grid", "evolution")
MAX_NRANKS = 1 << 20
MAX_POPULATION = 4096
MAX_GENERATIONS = 64

#: The frontier's objective set, in canonical order.
OBJECTIVES = (
    Objective("coverage", "max"),
    Objective("packet_bytes", "min"),
    Objective("reconfig_s", "min"),
    Objective("eval_cost", "min"),
)

# Decouples the evolutionary mutation stream from initial sampling.
_MUTATE_STREAM = 0xD5E_5EED

# Scheduler stats that accumulate across an evolutionary search's
# per-generation run_stealing batches (vs config values that assign).
_SUM_STATS = frozenset(
    {
        "tasks_dispatched",
        "steals",
        "retries",
        "redispatches",
        "workers_spawned",
        "workers_lost",
        "cells_from_journal",
    }
)


class SearchSpecError(ValueError):
    """A search spec failed validation; ``errors`` lists every problem."""

    def __init__(self, errors: list[str]):
        self.errors = list(errors)
        super().__init__("; ".join(errors))


@dataclass(frozen=True)
class SearchSpec:
    """One validated search request: workload + space + strategy."""

    app: str
    nranks: int
    space: SearchSpace = field(default_factory=SearchSpace)
    strategy: str = "grid"
    seed: int = 0
    population: int = 8
    generations: int = 3
    backend: str = DEFAULT_BACKEND
    timing_seed: int = DEFAULT_TIMING_SEED

    def __post_init__(self) -> None:
        errors: list[str] = []
        if not isinstance(self.app, str) or self.app not in APPS:
            errors.append(f"app: unknown app {self.app!r} (expected one of {sorted(APPS)})")
        if not isinstance(self.nranks, int) or not 1 <= self.nranks <= MAX_NRANKS:
            errors.append(f"nranks: expected an integer in [1, {MAX_NRANKS}], got {self.nranks!r}")
        if self.strategy not in STRATEGIES:
            errors.append(f"strategy: expected one of {STRATEGIES}, got {self.strategy!r}")
        if self.backend not in BACKENDS:
            errors.append(f"backend: expected one of {BACKENDS}, got {self.backend!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            errors.append(f"seed: expected an integer, got {self.seed!r}")
        if not isinstance(self.population, int) or not 1 <= self.population <= MAX_POPULATION:
            errors.append(
                f"population: expected an integer in [1, {MAX_POPULATION}], "
                f"got {self.population!r}"
            )
        if not isinstance(self.generations, int) or not 1 <= self.generations <= MAX_GENERATIONS:
            errors.append(
                f"generations: expected an integer in [1, {MAX_GENERATIONS}], "
                f"got {self.generations!r}"
            )
        if errors:
            raise SearchSpecError(errors)

    def canonical_doc(self) -> dict[str, Any]:
        return {
            "format": FRONTIER_FORMAT,
            "app": self.app,
            "nranks": self.nranks,
            "backend": self.backend,
            "timing_seed": self.timing_seed,
            "space": self.space.to_doc(),
            "strategy": self.strategy,
            "seed": self.seed,
            "population": self.population,
            "generations": self.generations,
        }

    @property
    def key(self) -> str:
        """Content address of the search: sha256 of the canonical doc."""
        payload = json.dumps(self.canonical_doc(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CandidateCell:
    """A candidate evaluation shaped like a pipeline cell.

    Carries the ``app``/``nranks``/``index`` attributes the schedulers
    and journal key on; ``index`` is unique across the whole search
    (all generations), so one run journal covers every batch.
    """

    app: str
    nranks: int
    index: int
    cand: Candidate

    @property
    def key(self) -> str:
        return f"{self.app}_p{self.nranks}"


def objectives_for(
    cand: Candidate, summary: dict[str, Any], app: str, nranks: int
) -> dict[str, float]:
    """The frontier's objective vector for one evaluated candidate."""
    tmp = summary["interconnect_temporal"]
    return {
        "coverage": tmp["coverage"],
        "packet_bytes": tmp["packet_bytes"],
        "reconfig_s": round(tmp["n_reconfigs"] * cand.reconfig_cost, 9),
        "eval_cost": round(
            estimate_candidate_cost(app, nranks, cand.matcher, cand.timesteps), 6
        ),
    }


def frontier_bytes(doc: dict[str, Any]) -> bytes:
    """Canonical serialization of a frontier document.

    Exactly the result-store serialization (``sort_keys`` + trailing
    newline), so a CLI ``--out`` file and a served
    ``GET /v1/results/<key>`` body are byte-for-byte the same artifact.
    """
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def run_search(
    spec: SearchSpec,
    cache_dir: str = DEFAULT_CACHE_DIR,
    obs: Observability | None = None,
    store: bool = True,
    argv: list[str] | None = None,
    workers: int = 1,
    scheduler: str = "static",
    max_retries: int = 2,
    heartbeat_timeout: float = 30.0,
    retry_backoff: float = 0.05,
    journal_dir: str | None = None,
    resume: str | None = None,
    run_id: str | None = None,
    bench_dir: str | None = ".",
    base_config: InterconnectConfig | None = None,
) -> dict[str, Any]:
    """Run one design-space search; returns {frontier, manifest, ...}.

    The ``frontier`` document is a pure function of the spec: same
    workload + space + seed + strategy produce byte-identical
    :func:`frontier_bytes` on every scheduler backend — candidate
    results merge in definition order, the evaluation-cost objective is
    analytic, and measured wall times live only in the side-channel
    ``evaluations`` / manifest fields.

    ``scheduler="stealing"`` journals candidate completions under the
    search's fingerprint; ``resume=<run-id>`` replays evaluated
    candidates (across *all* generations of an evolutionary search,
    since candidate indices are globally unique) and executes only what
    is missing. ``base_config`` supplies the non-searched interconnect
    knobs (bandwidths, latencies, slice seed); searched dimensions are
    always taken from the candidate.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler '{scheduler}' (expected one of {SCHEDULERS})")
    if resume is not None and scheduler != "stealing":
        raise ValueError("resume requires scheduler='stealing'")
    obs = obs if obs is not None else get_obs()
    t_run0 = time.perf_counter()

    sched_info: dict[str, Any] = {"backend": scheduler}
    journal: RunJournal | None = None
    if scheduler == "stealing":
        fingerprint = build_fingerprint(
            [spec.app],
            {spec.app: [spec.nranks]},
            cache_dir,
            spec.backend,
            spec.timing_seed,
            store,
            {"dse_search": spec.key},
            None,
        )
        jdir = journal_dir_for(cache_dir, journal_dir)
        if resume is not None:
            journal = RunJournal.load(jdir, resume)
            journal.check_fingerprint(fingerprint)
            run_id = resume
        else:
            run_id = run_id or new_run_id()
            journal = RunJournal.create(jdir, run_id, fingerprint)
        sched_info["run_id"] = run_id
        sched_info["resumed"] = resume is not None

    dse_provenance = {
        "search_key": spec.key,
        "space_key": spec.space.key,
        "strategy": spec.strategy,
        "seed": spec.seed,
        "space_size": spec.space.size,
    }
    manifest = build_manifest(
        [spec.app],
        {spec.app: [spec.nranks]},
        argv=argv,
        workers=workers,
        scheduler=sched_info,
        dse=dse_provenance,
    )
    obs.tracer.emit_event("manifest", manifest)

    cost_model = CostModel.from_bench_dir(bench_dir) if scheduler == "stealing" else None

    # Evaluation memo: candidate key -> record. A candidate re-proposed
    # by a later generation is never re-evaluated; definition order of
    # first proposal fixes its cell index (and therefore its journal
    # slot) deterministically.
    evaluated: dict[str, dict[str, Any]] = {}
    cells_by_index: dict[int, CandidateCell] = {}
    next_index = 0
    eval_reports: list[dict[str, Any]] = []

    def payload_for(cell: CandidateCell) -> dict[str, Any]:
        return {
            "app": cell.app,
            "nranks": cell.nranks,
            "index": cell.index,
            "cache_dir": cache_dir,
            "config": cell.cand.config(base_config),
            "store": store,
            "backend": spec.backend,
            "timing_seed": spec.timing_seed,
            "profiled": obs.enabled,
            "live": False,
            "ctx": None,
        }

    def merge_one(res: dict[str, Any]) -> None:
        cell = cells_by_index[res["index"]]
        cand = cell.cand
        graft_cell(
            obs, res, root_id,
            span_name="candidate",
            extra_attrs={"candidate": cand.key},
        )
        if obs.enabled:
            obs.metrics.merge_snapshot(res["metrics"])
        record: dict[str, Any] = {
            "cand": cand,
            "index": res["index"],
            "ok": bool(res["ok"]),
            "error": res.get("error"),
            "attempts": res.get("attempts", 1),
            "wall_s": res.get("wall_s", 0.0),
        }
        if res["ok"] and res.get("summary") is not None:
            record["objectives"] = objectives_for(
                cand, res["summary"], spec.app, spec.nranks
            )
        evaluated[cand.key] = record
        eval_reports.append(
            {
                "app": res["app"],
                "nranks": res["nranks"],
                "candidate": cand.key,
                "ok": record["ok"],
                "wall_s": round(record["wall_s"], 6),
                "error": record["error"],
                "attempts": record["attempts"],
            }
        )

    def evaluate_batch(novel: list[Candidate]) -> None:
        nonlocal next_index
        cells: list[CandidateCell] = []
        for cand in novel:
            cell = CandidateCell(spec.app, spec.nranks, next_index, cand)
            cells_by_index[next_index] = cell
            cells.append(cell)
            next_index += 1
        if not cells:
            return
        if scheduler == "stealing":
            sched_cfg = SchedulerConfig(
                workers=max(1, workers),
                max_retries=max_retries,
                heartbeat_timeout=heartbeat_timeout,
                retry_backoff=retry_backoff,
            )
            raw, stats = run_stealing(
                cells,
                lambda cell, attempt: payload_for(cell),
                execute_cell,
                sched_cfg,
                cost_model=cost_model,
                obs=obs,
                journal=journal,
            )
            raw = list(raw)
            # Aggregate scheduler counters across generation batches;
            # configuration-ish stats (workers, timeouts) just assign.
            for k, v in stats.items():
                if k in _SUM_STATS:
                    sched_info[k] = sched_info.get(k, 0) + v
                elif k == "max_queue_depth":
                    sched_info[k] = max(sched_info.get(k, 0), v)
                else:
                    sched_info[k] = v
            sched_info["journal"] = str(journal.path) if journal is not None else None
        elif workers <= 1 or len(cells) <= 1:
            raw = [execute_cell(payload_for(cell)) for cell in cells]
        else:
            payloads = [payload_for(cell) for cell in cells]
            with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
                raw = list(pool.map(execute_cell, payloads))
        raw.sort(key=lambda r: r["index"])
        for res in raw:
            merge_one(res)

    root_id: int | None = None
    with obs.tracer.span(
        "dse_search",
        app=spec.app,
        nranks=spec.nranks,
        strategy=spec.strategy,
        space=spec.space.size,
    ) as sp:
        root_id = getattr(sp, "span_id", None)
        if spec.strategy == "grid":
            evaluate_batch(spec.space.grid())
        else:
            _run_evolution(spec, evaluated, evaluate_batch)

    # Deterministic frontier over every successful evaluation.
    records = sorted(
        (r for r in evaluated.values() if r["ok"] and "objectives" in r),
        key=lambda r: r["index"],
    )
    points = [r["objectives"] for r in records]
    kept, dropped = pareto_frontier(points, OBJECTIVES)
    entries = [
        {
            "id": records[i]["cand"].key,
            "candidate": records[i]["cand"].to_doc(),
            "objectives": records[i]["objectives"],
        }
        for i in kept
    ]
    entries.sort(key=lambda e: (sort_key(e["objectives"], OBJECTIVES), e["id"]))
    failures = sorted(
        (
            {"id": r["cand"].key, "candidate": r["cand"].to_doc(), "error": r["error"]}
            for r in evaluated.values()
            if not r["ok"]
        ),
        key=lambda f: f["id"],
    )
    frontier_doc: dict[str, Any] = {
        "format": FRONTIER_FORMAT,
        "kind": FRONTIER_KIND,
        "search_key": spec.key,
        "workload": {
            "app": spec.app,
            "nranks": spec.nranks,
            "backend": spec.backend,
            "timing_seed": spec.timing_seed,
        },
        "space": spec.space.to_doc(),
        "space_key": spec.space.key,
        "strategy": spec.strategy,
        "seed": spec.seed,
        "objectives": [{"name": o.name, "sense": o.sense} for o in OBJECTIVES],
        "evaluated": len(evaluated),
        "dominated": len(dropped),
        "frontier": entries,
        "failed": failures,
    }
    obs.tracer.emit_event("dse_frontier", frontier_doc)

    manifest["cells"] = eval_reports
    manifest["failed_cells"] = [
        f"{spec.app}_p{spec.nranks}#{c['candidate']}" for c in eval_reports if not c["ok"]
    ]
    manifest["scheduler"] = sched_info
    obs.tracer.emit_event("manifest", manifest)

    return {
        "frontier": frontier_doc,
        "manifest": manifest,
        "sched": sched_info,
        # Side-channel (wall-clock-derived, outside the byte-identity
        # contract), mirroring wall_s/cell_timing elsewhere.
        "evaluations": eval_reports,
        "wall_s": time.perf_counter() - t_run0,
    }


def _run_evolution(
    spec: SearchSpec,
    evaluated: dict[str, dict[str, Any]],
    evaluate_batch,
) -> None:
    """Deterministic (mu + lambda)-style evolutionary loop.

    Parent selection sorts the current population by (Pareto rank,
    canonical objective vector, candidate id) — a total order, so ties
    never depend on evaluation timing. Mutation streams are keyed on
    (seed, generation, offspring slot), making the entire candidate
    sequence a pure function of the spec.
    """
    population = spec.space.sample(spec.population, spec.seed)
    mutate_seed = mix64(spec.seed ^ _MUTATE_STREAM)
    for gen in range(spec.generations):
        novel: list[Candidate] = []
        seen_batch: set[str] = set()
        for cand in population:
            if cand.key not in evaluated and cand.key not in seen_batch:
                novel.append(cand)
                seen_batch.add(cand.key)
        evaluate_batch(novel)
        if gen == spec.generations - 1:
            break
        ok_records = [
            evaluated[c.key]
            for c in _unique(population)
            if evaluated[c.key]["ok"] and "objectives" in evaluated[c.key]
        ]
        if not ok_records:
            # Every candidate failed: fall back to a fresh sample drawn
            # from a generation-specific stream.
            population = spec.space.sample(spec.population, mix64(spec.seed ^ (gen + 1)))
            continue
        ranks = pareto_rank([r["objectives"] for r in ok_records], OBJECTIVES)
        order = sorted(
            range(len(ok_records)),
            key=lambda i: (
                ranks[i],
                sort_key(ok_records[i]["objectives"], OBJECTIVES),
                ok_records[i]["cand"].key,
            ),
        )
        n_parents = max(1, spec.population // 2)
        parents = [ok_records[i]["cand"] for i in order[:n_parents]]
        offspring = [
            spec.space.mutate(
                parents[slot % len(parents)], mutate_seed, (gen << 16) | slot
            )
            for slot in range(spec.population - len(parents))
        ]
        population = parents + offspring


def _unique(cands: list[Candidate]) -> list[Candidate]:
    seen: set[str] = set()
    out: list[Candidate] = []
    for c in cands:
        if c.key not in seen:
            seen.add(c.key)
            out.append(c)
    return out
