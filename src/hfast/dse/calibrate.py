"""Fit LogGP ``APP_PARAMS`` against the paper's %comm tables.

The paper reports, per application and scale, the fraction of runtime
spent in MPI communication. Our synthesized traces pin the *wire* side
of that ratio (per-record LogGP times are deterministic and cached), so
the one free knob that closes the loop is ``compute_step_s`` — the
per-iteration compute cost that forms the denominator of %comm. Fitting
only ``compute_step_s`` is deliberate: it never touches per-record wire
times, so every cached trace document stays byte-valid after
calibration; only the %comm summary column moves.

The fit is closed-form. At a fixed scale, ``pct = 100 * c / (c + k*s)``
where ``c`` is measured comm-per-rank, ``k`` the app's iteration count,
and ``s`` the per-step compute time — so ``s = c * (100 - pct) /
(pct * k)`` exactly hits the target at that scale. With targets at two
scales the per-scale solutions are averaged, and the leftover per-scale
error is reported as residuals in the artifact.

The artifact (``kind: hfast-loggp-params``) is provenance-stamped (git
SHA, timestamp, tool, targets) and consumed by
:func:`hfast.timing.load_params_artifact` / ``activate_params``, which
``hfast apps --params`` uses to overlay the calibrated values onto the
defaults (with a per-app provenance column naming the artifact).
"""

from __future__ import annotations

import datetime
import json
import math
import os
from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from hfast.apps import synthesize
from hfast.cache import DEFAULT_CACHE_DIR, ReproCache
from hfast.obs.manifest import git_sha
from hfast.timing import (
    _STEP_KNOBS,
    APP_PARAMS,
    DEFAULT_TIMING_SEED,
    PARAMS_ARTIFACT_FORMAT,
    PARAMS_ARTIFACT_KIND,
    LogGPParams,
)

# Transcribed from the paper's per-application communication breakdown
# (Table: percentage of runtime in MPI communication at 64 and 256
# processors). These are the calibration targets: the fit chooses each
# app's compute_step_s so the model's %comm column reproduces them.
PAPER_PCT_COMM: dict[str, dict[int, float]] = {
    "cactus": {64: 12.9, 256: 15.7},
    "gtc": {64: 7.4, 256: 9.2},
    "lbmhd": {64: 18.6, 256: 22.3},
    "paratec": {64: 41.0, 256: 53.6},
}

CALIBRATION_SCALES = (64, 256)


def measured_comm_per_rank(
    app: str,
    nranks: int,
    cache: ReproCache,
    timing_seed: int = DEFAULT_TIMING_SEED,
    store: bool = True,
) -> float:
    """Per-rank communication seconds for one cell, cache-first."""
    trace = cache.load(app, nranks, None, timing_seed=timing_seed)
    if trace is None:
        trace = synthesize(app, nranks, None, timing_seed=timing_seed)
        if store:
            cache.store(trace)
    trace.ensure_batch()
    if trace.batch is not None and trace.batch.has_times:
        comm_time_s = float(np.sum(trace.batch.total_time))
    else:
        comm_time_s = math.fsum(r.total_time for r in trace.records)
    return comm_time_s / max(1, nranks)


def predicted_pct(comm_per_rank: float, compute_s: float) -> float:
    wall = comm_per_rank + compute_s
    return 100.0 * comm_per_rank / wall if wall > 0 else 0.0


def fit_compute_step(app: str, comm_by_scale: dict[int, float]) -> float:
    """Closed-form per-step compute time matching the app's %comm targets.

    Solves ``compute_step_s`` exactly at each target scale and averages —
    for a two-point target the average minimizes the worst-case compute
    error while keeping the solution order-independent.
    """
    targets = PAPER_PCT_COMM[app]
    _key, steps = _STEP_KNOBS.get(app, ("steps", 10))
    solutions = []
    for nranks, pct in sorted(targets.items()):
        comm = comm_by_scale[nranks]
        # pct = 100*c/(c + k*s)  =>  s = c*(100-pct)/(pct*k)
        solutions.append(comm * (100.0 - pct) / (pct * float(steps)))
    return math.fsum(solutions) / len(solutions)


def calibrate(
    apps: list[str] | None = None,
    cache_dir: str | os.PathLike = DEFAULT_CACHE_DIR,
    timing_seed: int = DEFAULT_TIMING_SEED,
    store: bool = True,
) -> dict[str, Any]:
    """Run the fit and return the params-artifact document.

    Only ``compute_step_s`` moves; the wire-side params (L, o, g, G,
    jitter) are carried through from the defaults so cached per-record
    times remain authoritative.
    """
    chosen = sorted(apps) if apps else sorted(PAPER_PCT_COMM)
    unknown = [a for a in chosen if a not in PAPER_PCT_COMM]
    if unknown:
        raise ValueError(f"no paper %comm targets for: {', '.join(unknown)}")
    cache = ReproCache(cache_dir)
    params_out: dict[str, dict[str, float]] = {}
    residuals: dict[str, dict[str, dict[str, float]]] = {}
    for app in chosen:
        comm_by_scale = {
            nranks: measured_comm_per_rank(app, nranks, cache, timing_seed, store)
            for nranks in sorted(PAPER_PCT_COMM[app])
        }
        fitted_step = fit_compute_step(app, comm_by_scale)
        base = APP_PARAMS.get(app, LogGPParams())
        fitted = replace(base, compute_step_s=fitted_step)
        params_out[app] = fitted.to_dict()
        _knob, steps = _STEP_KNOBS.get(app, ("steps", 10))
        compute_s = fitted_step * float(steps)
        residuals[app] = {
            str(nranks): {
                "target_pct": PAPER_PCT_COMM[app][nranks],
                "fitted_pct": round(predicted_pct(comm_by_scale[nranks], compute_s), 3),
                "default_pct": round(
                    predicted_pct(
                        comm_by_scale[nranks], base.compute_step_s * float(steps)
                    ),
                    3,
                ),
            }
            for nranks in sorted(PAPER_PCT_COMM[app])
        }
    return {
        "format": PARAMS_ARTIFACT_FORMAT,
        "kind": PARAMS_ARTIFACT_KIND,
        "timing_seed": int(timing_seed),
        "params": params_out,
        "targets": {
            app: {str(n): pct for n, pct in sorted(PAPER_PCT_COMM[app].items())}
            for app in chosen
        },
        "residuals": residuals,
        "provenance": {
            "git_sha": git_sha(),
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "tool": "hfast calibrate",
            "source": "paper %comm tables (64/256 processors)",
        },
    }


def write_artifact(doc: dict[str, Any], path: str | os.PathLike) -> Path:
    """Write the artifact with the repo's canonical JSON convention."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return out
