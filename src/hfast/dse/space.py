"""Declarative interconnect design-space specification.

A :class:`SearchSpace` names the candidate values per tunable dimension
of :class:`hfast.interconnect.InterconnectConfig`:

- ``circuits`` — circuits per node (doubles as the per-node degree bound
  the matcher enforces);
- ``reconfig_costs`` — seconds charged per circuit established after the
  initial configuration;
- ``matchers`` — matching backend (byte-identical results; the dimension
  trades evaluation cost, which is itself a search objective);
- ``timesteps`` — traffic-slice granularity for the temporal evaluator.

Validation follows the serve jobspec idiom: every problem is collected
before :class:`SpaceValidationError` is raised. Dimension values are
deduplicated and stored sorted, so two specs that differ only in listing
order are the same space — and hash to the same :meth:`SearchSpace.key`.

Enumeration (:meth:`SearchSpace.grid`) walks the Cartesian product in
canonical dimension order; sampling (:meth:`SearchSpace.sample`) draws
each candidate's coordinates from independent splitmix64 streams keyed
on (seed, draw index, dimension), so it is reproducible across
platforms and independent of any global RNG state.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any

from hfast.interconnect import InterconnectConfig
from hfast.matcher import DEFAULT_MATCHER, MATCHERS
from hfast.timing import mix64

SPACE_FORMAT = 1

MAX_CIRCUITS = 1 << 10
MAX_TIMESTEPS = 4096
MAX_GRID = 100_000

#: Canonical dimension order for enumeration and candidate documents.
DIMENSIONS = ("circuits", "reconfig_costs", "matchers", "timesteps")

# Distinct hash stream per dimension so a sampled candidate's coordinates
# are independent draws.
_DIM_STREAMS = {name: mix64(0xD5E_0000 + i) for i, name in enumerate(DIMENSIONS)}


class SpaceValidationError(ValueError):
    """A space spec failed validation; ``errors`` lists every problem."""

    def __init__(self, errors: list[str]):
        self.errors = list(errors)
        super().__init__("; ".join(errors))


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class Candidate:
    """One point in the space: a concrete interconnect configuration."""

    circuits_per_node: int
    reconfig_cost: float
    matcher: str
    timesteps: int

    def to_doc(self) -> dict[str, Any]:
        return {
            "circuits_per_node": self.circuits_per_node,
            "reconfig_cost": float(self.reconfig_cost),
            "matcher": self.matcher,
            "timesteps": self.timesteps,
        }

    @property
    def key(self) -> str:
        """Short stable id for labels, journaling, and dedup."""
        payload = json.dumps(self.to_doc(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def config(self, base: InterconnectConfig | None = None) -> InterconnectConfig:
        """The full interconnect config: base (or defaults) + this point."""
        base = base if base is not None else InterconnectConfig()
        return InterconnectConfig(
            circuits_per_node=self.circuits_per_node,
            circuit_bandwidth=base.circuit_bandwidth,
            packet_bandwidth=base.packet_bandwidth,
            circuit_latency=base.circuit_latency,
            packet_latency=base.packet_latency,
            timesteps=self.timesteps,
            reconfig_cost=self.reconfig_cost,
            slice_seed=base.slice_seed,
            matcher=self.matcher,
        )

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "Candidate":
        return cls(
            circuits_per_node=int(doc["circuits_per_node"]),
            reconfig_cost=float(doc["reconfig_cost"]),
            matcher=str(doc["matcher"]),
            timesteps=int(doc["timesteps"]),
        )


@dataclass(frozen=True)
class SearchSpace:
    """Validated candidate values per dimension, stored sorted + deduped."""

    circuits: tuple[int, ...] = (1, 2, 4, 8)
    reconfig_costs: tuple[float, ...] = (0.0, 1e-3)
    matchers: tuple[str, ...] = (DEFAULT_MATCHER,)
    timesteps: tuple[int, ...] = (1, 4)

    def __post_init__(self) -> None:
        errors: list[str] = []
        object.__setattr__(
            self, "circuits",
            _dim(self.circuits, "circuits", errors, _check_circuits),
        )
        object.__setattr__(
            self, "reconfig_costs",
            _dim(self.reconfig_costs, "reconfig_costs", errors, _check_reconfig),
        )
        object.__setattr__(
            self, "matchers",
            _dim(self.matchers, "matchers", errors, _check_matcher),
        )
        object.__setattr__(
            self, "timesteps",
            _dim(self.timesteps, "timesteps", errors, _check_timesteps),
        )
        if not errors and self.size > MAX_GRID:
            errors.append(f"space enumerates {self.size} candidates (max {MAX_GRID})")
        if errors:
            raise SpaceValidationError(errors)

    @property
    def size(self) -> int:
        return (
            len(self.circuits)
            * len(self.reconfig_costs)
            * len(self.matchers)
            * len(self.timesteps)
        )

    def grid(self) -> list[Candidate]:
        """Every candidate, in canonical dimension order."""
        return [
            Candidate(c, rc, m, t)
            for c in self.circuits
            for rc in self.reconfig_costs
            for m in self.matchers
            for t in self.timesteps
        ]

    def sample(self, n: int, seed: int) -> list[Candidate]:
        """``n`` seeded draws (with replacement) from the space.

        Each coordinate comes from ``mix64(seed_base ^ dim_stream ^ i)``
        reduced mod the dimension's cardinality — deterministic, platform
        independent, and stable under re-ordering of the input lists
        (values are stored sorted).
        """
        if n < 0:
            raise ValueError(f"sample size must be non-negative, got {n}")
        base = mix64(seed & ((1 << 64) - 1))
        out: list[Candidate] = []
        for i in range(n):
            c = self.circuits[
                mix64(base ^ _DIM_STREAMS["circuits"] ^ i) % len(self.circuits)
            ]
            rc = self.reconfig_costs[
                mix64(base ^ _DIM_STREAMS["reconfig_costs"] ^ i) % len(self.reconfig_costs)
            ]
            m = self.matchers[
                mix64(base ^ _DIM_STREAMS["matchers"] ^ i) % len(self.matchers)
            ]
            t = self.timesteps[
                mix64(base ^ _DIM_STREAMS["timesteps"] ^ i) % len(self.timesteps)
            ]
            out.append(Candidate(c, rc, m, t))
        return out

    def mutate(self, cand: Candidate, seed: int, stream: int) -> Candidate:
        """One hash-driven mutation of a candidate (evolutionary step).

        Exactly one dimension is re-drawn, chosen by the hash; which
        value it lands on comes from a second hash. Fully determined by
        (candidate, seed, stream).
        """
        h = mix64(seed ^ mix64(stream) ^ int(cand.key[:8], 16))
        dims = [
            ("circuits", self.circuits),
            ("reconfig_costs", self.reconfig_costs),
            ("matchers", self.matchers),
            ("timesteps", self.timesteps),
        ]
        name, values = dims[h % len(dims)]
        value = values[mix64(h) % len(values)]
        doc = cand.to_doc()
        doc[{
            "circuits": "circuits_per_node",
            "reconfig_costs": "reconfig_cost",
            "matchers": "matcher",
            "timesteps": "timesteps",
        }[name]] = value
        return Candidate.from_doc(doc)

    def to_doc(self) -> dict[str, Any]:
        return {
            "format": SPACE_FORMAT,
            "circuits": list(self.circuits),
            "reconfig_costs": [float(v) for v in self.reconfig_costs],
            "matchers": list(self.matchers),
            "timesteps": list(self.timesteps),
        }

    @property
    def key(self) -> str:
        """Content address of the canonical space document."""
        payload = json.dumps(self.to_doc(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_doc(cls, doc: Any) -> "SearchSpace":
        """Build a space from an untrusted document, collecting errors."""
        errors: list[str] = []
        if not isinstance(doc, dict):
            raise SpaceValidationError(
                [f"space must be a JSON object, got {type(doc).__name__}"]
            )
        unknown = sorted(set(doc) - set(DIMENSIONS) - {"format"})
        if unknown:
            errors.append(f"space: unknown field(s): {', '.join(unknown)}")
        fmt = doc.get("format", SPACE_FORMAT)
        if fmt != SPACE_FORMAT:
            errors.append(f"space: unsupported format {fmt!r} (expected {SPACE_FORMAT})")
        values: dict[str, Any] = {}
        defaults = cls()
        for name in DIMENSIONS:
            if name not in doc:
                values[name] = getattr(defaults, name)
                continue
            raw = doc[name]
            if not isinstance(raw, (list, tuple)):
                errors.append(f"space.{name}: expected a list, got {type(raw).__name__}")
                continue
            values[name] = tuple(raw)
        if errors:
            raise SpaceValidationError(errors)
        return cls(**values)


def _dim(values: Any, name: str, errors: list[str], check) -> tuple:
    """Validate, dedupe, and sort one dimension's value list."""
    if not isinstance(values, (list, tuple)):
        errors.append(f"{name}: expected a list, got {type(values).__name__}")
        return ()
    if not values:
        errors.append(f"{name}: at least one value is required")
        return ()
    clean = []
    for v in values:
        checked = check(v, name, errors)
        if checked is not None and checked not in clean:
            clean.append(checked)
    return tuple(sorted(clean))


def _check_circuits(v: Any, name: str, errors: list[str]) -> int | None:
    if not _is_int(v) or not 0 <= v <= MAX_CIRCUITS:
        errors.append(f"{name}: expected an integer in [0, {MAX_CIRCUITS}], got {v!r}")
        return None
    return v


def _check_reconfig(v: Any, name: str, errors: list[str]) -> float | None:
    if not _is_number(v) or not math.isfinite(v) or v < 0:
        errors.append(f"{name}: expected a non-negative finite number, got {v!r}")
        return None
    return float(v)


def _check_matcher(v: Any, name: str, errors: list[str]) -> str | None:
    if not isinstance(v, str) or v not in MATCHERS:
        errors.append(f"{name}: expected one of {MATCHERS}, got {v!r}")
        return None
    return v


def _check_timesteps(v: Any, name: str, errors: list[str]) -> int | None:
    if not _is_int(v) or not 1 <= v <= MAX_TIMESTEPS:
        errors.append(f"{name}: expected an integer in [1, {MAX_TIMESTEPS}], got {v!r}")
        return None
    return v
