"""Synthetic trace generators for the paper's application suite.

Each generator is deterministic in (app, nranks, overrides) and emits
aggregated IPM-style records mirroring the communication structure the
SC'05 study measured:

- ``cactus``  — 3D regular-grid ghost-zone exchange (nearest neighbours,
  non-blocking send/recv + waits, periodic 8-byte allreduce).
- ``gtc``     — particle-in-cell toroidal shift: each rank exchanges
  particles with its two poloidal neighbours, plus field allreduces.
- ``lbmhd``   — lattice Boltzmann MHD: skewed 2D neighbour exchange with
  a wider stencil (interpenetrating lattices).
- ``paratec`` — 3D FFT transpose: dense personalized all-to-all via
  non-blocking point-to-point, the paper's worst case for degree.

Every app has two backends. The ``vector`` backend (the default) builds
record fields as numpy arrays — paratec's all-to-all comes from a
rank-pair grid instead of an O(nranks^2) Python loop — and is what makes
1K–4K-rank synthesis feasible. The ``scalar`` backend is the original
per-record reference implementation, kept because the test suite asserts
both produce byte-identical cache documents.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from hfast.obs.profile import profiled
from hfast.records import CommRecord, RecordBatch, Trace, aggregate
from hfast.timing import DEFAULT_TIMING_SEED, apply_timing

GeneratorFn = Callable[[int, dict[str, Any]], list[CommRecord]]
VectorFn = Callable[[int, dict[str, Any]], RecordBatch]

BACKENDS = ("vector", "scalar")
DEFAULT_BACKEND = "vector"

APPS: dict[str, "AppSpec"] = {}


class AppSpec:
    def __init__(self, name: str, generator: GeneratorFn, description: str):
        self.name = name
        self.generator = generator
        self.vector_generator: VectorFn | None = None
        self.description = description


def register(name: str, description: str) -> Callable[[GeneratorFn], GeneratorFn]:
    def deco(fn: GeneratorFn) -> GeneratorFn:
        APPS[name] = AppSpec(name, fn, description)
        return fn

    return deco


def vectorized(name: str) -> Callable[[VectorFn], VectorFn]:
    """Attach the vector backend to an already-registered app."""

    def deco(fn: VectorFn) -> VectorFn:
        APPS[name].vector_generator = fn
        return fn

    return deco


def available_apps() -> list[str]:
    return sorted(APPS)


@profiled("trace_synthesis")
def synthesize(
    app: str,
    nranks: int,
    overrides: dict[str, Any] | None = None,
    backend: str = DEFAULT_BACKEND,
    timing_seed: int | None = DEFAULT_TIMING_SEED,
) -> Trace:
    """Generate the aggregated trace for one app at one scale.

    Unless ``timing_seed`` is None, the LogGP timing model synthesizes
    ``total_time``/``min_time``/``max_time`` onto the aggregated records;
    the result is deterministic in (app, nranks, overrides, seed) and
    byte-identical across backends.
    """
    if app not in APPS:
        raise KeyError(f"unknown app '{app}' (available: {', '.join(available_apps())})")
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend '{backend}' (expected one of {BACKENDS})")
    overrides = dict(overrides or {})
    spec = APPS[app]
    if backend == "vector" and spec.vector_generator is not None:
        batch = spec.vector_generator(nranks, overrides).aggregate()
        trace = Trace(app=app, nranks=nranks, batch=batch, overrides=overrides)
    else:
        records = spec.generator(nranks, overrides)
        trace = Trace(app=app, nranks=nranks, records=aggregate(records), overrides=overrides)
    if timing_seed is not None:
        apply_timing(trace, seed=timing_seed)
    return trace


def _factor3(n: int) -> tuple[int, int, int]:
    """Near-cubic 3D process grid for n ranks."""
    best = (n, 1, 1)
    best_score = float("inf")
    for x in range(1, int(round(n ** (1 / 3))) + 2):
        if n % x:
            continue
        rem = n // x
        for y in range(x, int(math.isqrt(rem)) + 1):
            if rem % y:
                continue
            z = rem // y
            score = (z - x) + (z - y)
            if score < best_score:
                best_score = score
                best = (x, y, z)
    return best


def _factor2(n: int) -> tuple[int, int]:
    x = int(math.isqrt(n))
    while n % x:
        x -= 1
    return (x, n // x)


def _ghost_pairs(nranks: int, dims: tuple[int, ...]) -> list[tuple[int, int]]:
    """(rank, neighbour) pairs for a periodic Cartesian grid, both directions."""
    ndim = len(dims)
    strides = [1] * ndim
    for i in range(ndim - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]

    def coords(r: int) -> list[int]:
        return [(r // strides[i]) % dims[i] for i in range(ndim)]

    def to_rank(c: list[int]) -> int:
        return sum((c[i] % dims[i]) * strides[i] for i in range(ndim))

    pairs = []
    for r in range(nranks):
        c = coords(r)
        for axis in range(ndim):
            if dims[axis] == 1:
                continue
            for step in (-1, 1):
                cc = list(c)
                cc[axis] += step
                peer = to_rank(cc)
                if peer != r:
                    pairs.append((r, peer))
    return pairs


def _ghost_pairs_vec(nranks: int, dims: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``_ghost_pairs``: (ranks, peers) arrays, same multiset."""
    ndim = len(dims)
    strides = [1] * ndim
    for i in range(ndim - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]
    r = np.arange(nranks, dtype=np.int64)
    coords = [(r // strides[i]) % dims[i] for i in range(ndim)]
    ranks_out: list[np.ndarray] = []
    peers_out: list[np.ndarray] = []
    for axis in range(ndim):
        if dims[axis] == 1:
            continue
        for step in (-1, 1):
            shifted = (coords[axis] + step) % dims[axis]
            peer = r + (shifted - coords[axis]) * strides[axis]
            keep = peer != r
            ranks_out.append(r[keep])
            peers_out.append(peer[keep])
    if not ranks_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(ranks_out), np.concatenate(peers_out)


@register("cactus", "3D grid ghost-zone exchange (Einstein-equation solver)")
def _gen_cactus(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    steps = int(ov.get("steps", 12))
    ghost_bytes = int(ov.get("ghost_bytes", 294912))
    recs: list[CommRecord] = []
    dims = _factor3(nranks)
    pairs = _ghost_pairs(nranks, dims)
    for r, peer in pairs:
        recs.append(CommRecord(r, "MPI_Isend", ghost_bytes, peer, count=steps))
        recs.append(CommRecord(r, "MPI_Irecv", ghost_bytes, peer, count=steps))
        recs.append(CommRecord(r, "MPI_Wait", 0, r, count=steps))
    nneigh = {r: 0 for r in range(nranks)}
    for r, _ in pairs:
        nneigh[r] += 1
    for r in range(nranks):
        recs.append(CommRecord(r, "MPI_Waitall", 0, r, count=max(1, steps // 2)))
        if steps >= 6:
            recs.append(CommRecord(r, "MPI_Allreduce", 8, 0, count=max(1, steps // 12)))
    return recs


@vectorized("cactus")
def _vec_cactus(nranks: int, ov: dict[str, Any]) -> RecordBatch:
    steps = int(ov.get("steps", 12))
    ghost_bytes = int(ov.get("ghost_bytes", 294912))
    ranks, peers = _ghost_pairs_vec(nranks, _factor3(nranks))
    every = np.arange(nranks, dtype=np.int64)
    parts = [
        ("MPI_Isend", ranks, ghost_bytes, peers, steps),
        ("MPI_Irecv", ranks, ghost_bytes, peers, steps),
        ("MPI_Wait", ranks, 0, ranks, steps),
        ("MPI_Waitall", every, 0, every, max(1, steps // 2)),
    ]
    if steps >= 6:
        parts.append(("MPI_Allreduce", every, 8, 0, max(1, steps // 12)))
    return RecordBatch.from_parts(parts)


@register("gtc", "gyrokinetic toroidal particle-in-cell (1D shift)")
def _gen_gtc(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    steps = int(ov.get("steps", 10))
    particle_bytes = int(ov.get("particle_bytes", 524288))
    recs: list[CommRecord] = []
    for r in range(nranks):
        up = (r + 1) % nranks
        down = (r - 1) % nranks
        if up != r:
            recs.append(CommRecord(r, "MPI_Isend", particle_bytes, up, count=steps))
            recs.append(CommRecord(r, "MPI_Irecv", particle_bytes, down, count=steps))
            recs.append(CommRecord(r, "MPI_Wait", 0, r, count=2 * steps))
        recs.append(CommRecord(r, "MPI_Allreduce", 4096, 0, count=max(1, steps // 2)))
    return recs


@vectorized("gtc")
def _vec_gtc(nranks: int, ov: dict[str, Any]) -> RecordBatch:
    steps = int(ov.get("steps", 10))
    particle_bytes = int(ov.get("particle_bytes", 524288))
    r = np.arange(nranks, dtype=np.int64)
    up = (r + 1) % nranks
    down = (r - 1) % nranks
    m = up != r
    return RecordBatch.from_parts(
        [
            ("MPI_Isend", r[m], particle_bytes, up[m], steps),
            ("MPI_Irecv", r[m], particle_bytes, down[m], steps),
            ("MPI_Wait", r[m], 0, r[m], 2 * steps),
            ("MPI_Allreduce", r, 4096, 0, max(1, steps // 2)),
        ]
    )


@register("lbmhd", "lattice Boltzmann magnetohydrodynamics (skewed 2D stencil)")
def _gen_lbmhd(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    steps = int(ov.get("steps", 8))
    lattice_bytes = int(ov.get("lattice_bytes", 131072))
    recs: list[CommRecord] = []
    px, py = _factor2(nranks)

    def to_rank(ix: int, iy: int) -> int:
        return (ix % px) * py + (iy % py)

    # Interpenetrating-lattice streaming: axis neighbours plus skewed
    # diagonals, the structure behind lbmhd's degree ~12 in the paper.
    # The first four offsets are the axis (full-lattice) exchanges; the
    # payload class must follow the offset, not the peer's position in the
    # dedup order, or byte conservation breaks on non-square grids (rank A
    # would send a quarter lattice that rank B receives as a full one).
    offsets = [(-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (1, 1), (-1, 1), (1, -1)]
    for r in range(nranks):
        ix, iy = r // py, r % py
        peers: list[tuple[int, int]] = []
        for j, (dx, dy) in enumerate(offsets):
            peer = to_rank(ix + dx, iy + dy)
            if peer != r and peer not in [p for p, _ in peers]:
                peers.append((peer, j))
        for peer, j in peers:
            size = lattice_bytes if j < 4 else lattice_bytes // 4
            recs.append(CommRecord(r, "MPI_Isend", size, peer, count=steps))
            recs.append(CommRecord(r, "MPI_Irecv", size, peer, count=steps))
        recs.append(CommRecord(r, "MPI_Waitall", 0, r, count=steps))
        recs.append(CommRecord(r, "MPI_Allreduce", 64, 0, count=max(1, steps // 4)))
    return recs


_LBMHD_OFFSETS = np.array(
    [(-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (1, 1), (-1, 1), (1, -1)],
    dtype=np.int64,
)


@vectorized("lbmhd")
def _vec_lbmhd(nranks: int, ov: dict[str, Any]) -> RecordBatch:
    steps = int(ov.get("steps", 8))
    lattice_bytes = int(ov.get("lattice_bytes", 131072))
    px, py = _factor2(nranks)
    r = np.arange(nranks, dtype=np.int64)
    ix, iy = r // py, r % py
    # peers[rank, j]: the j-th offset's target, mirroring the scalar loop.
    peers = ((ix[:, None] + _LBMHD_OFFSETS[:, 0]) % px) * py + (
        (iy[:, None] + _LBMHD_OFFSETS[:, 1]) % py
    )
    keep = peers != r[:, None]
    # Order-preserving dedup: drop offset j if an earlier offset k hit the
    # same peer (small grids alias diagonals onto axis neighbours).
    noffsets = peers.shape[1]
    for j in range(1, noffsets):
        for k in range(j):
            keep[:, j] &= peers[:, j] != peers[:, k]
    # Payload class follows the offset that produced the surviving pair:
    # the first four (axis) offsets move a full lattice, diagonals a
    # quarter — symmetric under (dx, dy) -> (-dx, -dy), so send and recv
    # sizes always agree (see the scalar generator's note).
    size = np.where(np.arange(noffsets) < 4, lattice_bytes, lattice_bytes // 4)
    size = np.broadcast_to(size, peers.shape)
    ranks_rep = np.broadcast_to(r[:, None], peers.shape)[keep]
    peers_flat = peers[keep]
    sizes_flat = size[keep]
    return RecordBatch.from_parts(
        [
            ("MPI_Isend", ranks_rep, sizes_flat, peers_flat, steps),
            ("MPI_Irecv", ranks_rep, sizes_flat, peers_flat, steps),
            ("MPI_Waitall", r, 0, r, steps),
            ("MPI_Allreduce", r, 64, 0, max(1, steps // 4)),
        ]
    )


@register("paratec", "plane-wave DFT with 3D FFT transpose (all-to-all)")
def _gen_paratec(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    fft_cycles = int(ov.get("fft_cycles", 3))
    grid_bytes = int(ov.get("grid_bytes", 16384))
    recs: list[CommRecord] = []
    for r in range(nranks):
        for peer in range(nranks):
            if peer == r:
                continue
            recs.append(CommRecord(r, "MPI_Isend", grid_bytes, peer, count=fft_cycles))
            recs.append(CommRecord(r, "MPI_Irecv", grid_bytes, peer, count=fft_cycles))
        recs.append(CommRecord(r, "MPI_Waitall", 0, r, count=2 * fft_cycles))
        recs.append(CommRecord(r, "MPI_Allreduce", 8, 0, count=fft_cycles))
    return recs


@vectorized("paratec")
def _vec_paratec(nranks: int, ov: dict[str, Any]) -> RecordBatch:
    fft_cycles = int(ov.get("fft_cycles", 3))
    grid_bytes = int(ov.get("grid_bytes", 16384))
    n = nranks
    every = np.arange(n, dtype=np.int32)
    # Rank-pair grid: row i holds i's peers 0..n-1 minus the diagonal, in
    # ascending order (j, plus one once j reaches i) — every ordered pair
    # without an n x n mask or a modulo over n^2 elements.
    ranks = np.repeat(every, max(0, n - 1))
    base = np.arange(n - 1, dtype=np.int32)
    peers = (base[None, :] + (base[None, :] >= every[:, None])).ravel()
    return RecordBatch.from_parts(
        [
            ("MPI_Isend", ranks, grid_bytes, peers, fft_cycles),
            ("MPI_Irecv", ranks, grid_bytes, peers, fft_cycles),
            ("MPI_Waitall", every, 0, every, 2 * fft_cycles),
            ("MPI_Allreduce", every, 8, 0, fft_cycles),
        ]
    )
