"""Synthetic trace generators for the paper's application suite.

Each generator is deterministic in (app, nranks, overrides) and emits
aggregated IPM-style records mirroring the communication structure the
SC'05 study measured:

- ``cactus``  — 3D regular-grid ghost-zone exchange (nearest neighbours,
  non-blocking send/recv + waits, periodic 8-byte allreduce).
- ``gtc``     — particle-in-cell toroidal shift: each rank exchanges
  particles with its two poloidal neighbours, plus field allreduces.
- ``lbmhd``   — lattice Boltzmann MHD: skewed 2D neighbour exchange with
  a wider stencil (interpenetrating lattices).
- ``paratec`` — 3D FFT transpose: dense personalized all-to-all via
  non-blocking point-to-point, the paper's worst case for degree.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from hfast.obs.profile import profiled
from hfast.records import CommRecord, Trace, aggregate

GeneratorFn = Callable[[int, dict[str, Any]], list[CommRecord]]

APPS: dict[str, "AppSpec"] = {}


class AppSpec:
    def __init__(self, name: str, generator: GeneratorFn, description: str):
        self.name = name
        self.generator = generator
        self.description = description


def register(name: str, description: str) -> Callable[[GeneratorFn], GeneratorFn]:
    def deco(fn: GeneratorFn) -> GeneratorFn:
        APPS[name] = AppSpec(name, fn, description)
        return fn

    return deco


def available_apps() -> list[str]:
    return sorted(APPS)


@profiled("trace_synthesis")
def synthesize(app: str, nranks: int, overrides: dict[str, Any] | None = None) -> Trace:
    """Generate the aggregated trace for one app at one scale."""
    if app not in APPS:
        raise KeyError(f"unknown app '{app}' (available: {', '.join(available_apps())})")
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    overrides = dict(overrides or {})
    records = APPS[app].generator(nranks, overrides)
    return Trace(app=app, nranks=nranks, records=aggregate(records), overrides=overrides)


def _factor3(n: int) -> tuple[int, int, int]:
    """Near-cubic 3D process grid for n ranks."""
    best = (n, 1, 1)
    best_score = float("inf")
    for x in range(1, int(round(n ** (1 / 3))) + 2):
        if n % x:
            continue
        rem = n // x
        for y in range(x, int(math.isqrt(rem)) + 1):
            if rem % y:
                continue
            z = rem // y
            score = (z - x) + (z - y)
            if score < best_score:
                best_score = score
                best = (x, y, z)
    return best


def _factor2(n: int) -> tuple[int, int]:
    x = int(math.isqrt(n))
    while n % x:
        x -= 1
    return (x, n // x)


def _ghost_pairs(nranks: int, dims: tuple[int, ...]) -> list[tuple[int, int]]:
    """(rank, neighbour) pairs for a periodic Cartesian grid, both directions."""
    ndim = len(dims)
    strides = [1] * ndim
    for i in range(ndim - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]

    def coords(r: int) -> list[int]:
        return [(r // strides[i]) % dims[i] for i in range(ndim)]

    def to_rank(c: list[int]) -> int:
        return sum((c[i] % dims[i]) * strides[i] for i in range(ndim))

    pairs = []
    for r in range(nranks):
        c = coords(r)
        for axis in range(ndim):
            if dims[axis] == 1:
                continue
            for step in (-1, 1):
                cc = list(c)
                cc[axis] += step
                peer = to_rank(cc)
                if peer != r:
                    pairs.append((r, peer))
    return pairs


@register("cactus", "3D grid ghost-zone exchange (Einstein-equation solver)")
def _gen_cactus(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    steps = int(ov.get("steps", 12))
    ghost_bytes = int(ov.get("ghost_bytes", 294912))
    recs: list[CommRecord] = []
    dims = _factor3(nranks)
    pairs = _ghost_pairs(nranks, dims)
    for r, peer in pairs:
        recs.append(CommRecord(r, "MPI_Isend", ghost_bytes, peer, count=steps))
        recs.append(CommRecord(r, "MPI_Irecv", ghost_bytes, peer, count=steps))
        recs.append(CommRecord(r, "MPI_Wait", 0, r, count=steps))
    nneigh = {r: 0 for r in range(nranks)}
    for r, _ in pairs:
        nneigh[r] += 1
    for r in range(nranks):
        recs.append(CommRecord(r, "MPI_Waitall", 0, r, count=max(1, steps // 2)))
        if steps >= 6:
            recs.append(CommRecord(r, "MPI_Allreduce", 8, 0, count=max(1, steps // 12)))
    return recs


@register("gtc", "gyrokinetic toroidal particle-in-cell (1D shift)")
def _gen_gtc(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    steps = int(ov.get("steps", 10))
    particle_bytes = int(ov.get("particle_bytes", 524288))
    recs: list[CommRecord] = []
    for r in range(nranks):
        up = (r + 1) % nranks
        down = (r - 1) % nranks
        if up != r:
            recs.append(CommRecord(r, "MPI_Isend", particle_bytes, up, count=steps))
            recs.append(CommRecord(r, "MPI_Irecv", particle_bytes, down, count=steps))
            recs.append(CommRecord(r, "MPI_Wait", 0, r, count=2 * steps))
        recs.append(CommRecord(r, "MPI_Allreduce", 4096, 0, count=max(1, steps // 2)))
    return recs


@register("lbmhd", "lattice Boltzmann magnetohydrodynamics (skewed 2D stencil)")
def _gen_lbmhd(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    steps = int(ov.get("steps", 8))
    lattice_bytes = int(ov.get("lattice_bytes", 131072))
    recs: list[CommRecord] = []
    px, py = _factor2(nranks)

    def to_rank(ix: int, iy: int) -> int:
        return (ix % px) * py + (iy % py)

    # Interpenetrating-lattice streaming: axis neighbours plus skewed
    # diagonals, the structure behind lbmhd's degree ~12 in the paper.
    offsets = [(-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (1, 1), (-1, 1), (1, -1)]
    for r in range(nranks):
        ix, iy = r // py, r % py
        peers = []
        for dx, dy in offsets:
            peer = to_rank(ix + dx, iy + dy)
            if peer != r and peer not in peers:
                peers.append(peer)
        for j, peer in enumerate(peers):
            size = lattice_bytes if j < 4 else lattice_bytes // 4
            recs.append(CommRecord(r, "MPI_Isend", size, peer, count=steps))
            recs.append(CommRecord(r, "MPI_Irecv", size, peer, count=steps))
        recs.append(CommRecord(r, "MPI_Waitall", 0, r, count=steps))
        recs.append(CommRecord(r, "MPI_Allreduce", 64, 0, count=max(1, steps // 4)))
    return recs


@register("paratec", "plane-wave DFT with 3D FFT transpose (all-to-all)")
def _gen_paratec(nranks: int, ov: dict[str, Any]) -> list[CommRecord]:
    fft_cycles = int(ov.get("fft_cycles", 3))
    grid_bytes = int(ov.get("grid_bytes", 16384))
    recs: list[CommRecord] = []
    for r in range(nranks):
        for peer in range(nranks):
            if peer == r:
                continue
            recs.append(CommRecord(r, "MPI_Isend", grid_bytes, peer, count=fft_cycles))
            recs.append(CommRecord(r, "MPI_Irecv", grid_bytes, peer, count=fft_cycles))
        recs.append(CommRecord(r, "MPI_Waitall", 0, r, count=2 * fft_cycles))
        recs.append(CommRecord(r, "MPI_Allreduce", 8, 0, count=fft_cycles))
    return recs
