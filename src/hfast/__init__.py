"""hfast — reproduction of "Analyzing Ultra-Scale Application Communication
Requirements for a Reconfigurable Hybrid Interconnect" (SC 2005).

Pipeline: synthetic trace generation (IPM-style per-rank MPI call records)
-> repro-cache -> communication-matrix reduction -> topology-degree analysis
-> hybrid (circuit + packet) interconnect evaluation.

The :mod:`hfast.obs` package provides the observability substrate: span
tracing, a metrics registry, profiling hooks, run manifests, and the
IPM-style run report.
"""

__version__ = "0.2.0"

from hfast.records import CommRecord  # noqa: F401
