"""Deterministic LogGP-style per-record timing synthesis.

Cached traces synthesized before this module existed carry
``total_time = 0.0`` everywhere, which left the paper-facing %comm and
per-call latency columns dead. This module fills them in with a LogGP
model (latency ``L``, per-call overhead ``o``, per-message gap ``g``,
per-byte gap ``G``) plus per-call-type overhead factors and seeded,
fully deterministic jitter:

- the mean per-call time is ``o * f(call) + (L + g + size * G) * stages``
  where ``stages`` is ``ceil(log2(nranks))`` for collectives (a log-tree
  schedule) and 1 otherwise;
- jitter multiplies the mean by a factor drawn from a splitmix64 hash of
  ``(seed, rank, peer, call)`` — *never* of ``size``, so synthesized
  times are monotone nondecreasing in message size at a fixed call type;
- with ``count > 1`` repeats, ``min_time``/``max_time`` spread around the
  mean using two more hash streams; with ``count == 1`` they equal it.

Both the scalar (per-record) and vectorized (columnar) paths evaluate the
exact same IEEE-754 double expressions, so the two backends serialize to
byte-identical cache documents, timing fields included.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

from hfast.records import (
    COLLECTIVE_CALLS,
    COMPLETION_CALLS,
    PTP_CALLS,
    CommRecord,
    RecordBatch,
    Trace,
)

TIMING_MODEL = "loggp"
DEFAULT_TIMING_SEED = 0

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
# Distinct hash streams for the min/max spread around the mean.
_STREAM_MIN = 0xA5A5A5A5A5A5A5A5
_STREAM_MAX = 0x5A5A5A5A5A5A5A5A
_INV_2_53 = 2.0**-53


def mix64(x: int) -> int:
    """splitmix64 finalizer over Python ints (mod 2^64)."""
    x = (x + _SPLITMIX_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX_1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_2) & _MASK64
    return x ^ (x >> 31)


def mix64_vec(x: np.ndarray) -> np.ndarray:
    """splitmix64 over uint64 arrays; bit-identical to :func:`mix64`."""
    with np.errstate(over="ignore"):
        x = x + np.uint64(_SPLITMIX_GAMMA)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX_1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX_2)
        return x ^ (x >> np.uint64(31))


# Stable small integer per MPI call, shared by both backends. Unknown
# calls collapse onto one reserved id — they still get deterministic
# jitter, just a shared stream.
_CALL_IDS: dict[str, int] = {
    name: i
    for i, name in enumerate(sorted(PTP_CALLS | COLLECTIVE_CALLS | COMPLETION_CALLS))
}
_UNKNOWN_CALL_ID = 63

# Per-call CPU overhead factors (multiples of the app's ``o``): eager
# sends are cheaper than rendezvous, completions cheaper than posts,
# collectives carry algorithmic setup on top of their log-tree stages.
_CALL_OVERHEAD: dict[str, float] = {
    "MPI_Send": 1.2,
    "MPI_Isend": 1.0,
    "MPI_Ssend": 1.6,
    "MPI_Sendrecv": 2.0,
    "MPI_Recv": 1.1,
    "MPI_Irecv": 0.9,
    "MPI_Wait": 0.5,
    "MPI_Waitall": 0.8,
    "MPI_Waitany": 0.6,
    "MPI_Test": 0.3,
    "MPI_Allreduce": 2.0,
    "MPI_Reduce": 1.5,
    "MPI_Bcast": 1.2,
    "MPI_Alltoall": 2.5,
    "MPI_Alltoallv": 2.6,
    "MPI_Allgather": 2.2,
    "MPI_Gather": 1.4,
    "MPI_Scatter": 1.4,
    "MPI_Barrier": 1.0,
}
_DEFAULT_OVERHEAD = 1.0


@dataclass(frozen=True)
class LogGPParams:
    """LogGP fabric parameters plus the jitter/compute knobs."""

    L: float = 5.0e-6  # wire latency (s)
    o: float = 1.5e-6  # per-call CPU overhead (s), scaled by the call factor
    g: float = 2.5e-6  # per-message gap (s)
    G: float = 1.0e-9  # per-byte gap (s/B); 1e-9 ~ 1 GB/s links
    jitter: float = 0.2  # relative jitter amplitude, must stay < 1
    compute_step_s: float = 0.05  # per-iteration compute time driving %comm

    def to_dict(self) -> dict[str, float]:
        return asdict(self)


# Per-app parameter flavors mirroring the SC'05 measurements: cactus is
# bandwidth-bound on fat ghost zones, gtc is compute-dominated (low
# %comm), lbmhd sits in between, paratec's all-to-all is latency- and
# message-rate-bound.
APP_PARAMS: dict[str, LogGPParams] = {
    "cactus": LogGPParams(L=5.0e-6, o=1.5e-6, g=2.5e-6, G=0.8e-9, compute_step_s=0.08),
    "gtc": LogGPParams(L=5.0e-6, o=1.5e-6, g=2.5e-6, G=1.0e-9, compute_step_s=0.25),
    "lbmhd": LogGPParams(L=5.0e-6, o=1.5e-6, g=2.5e-6, G=1.0e-9, compute_step_s=0.06),
    "paratec": LogGPParams(L=8.0e-6, o=2.0e-6, g=4.0e-6, G=1.2e-9, compute_step_s=0.02),
}

# (overrides key, default) controlling each app's iteration count; the
# compute-time side of the %comm estimate scales with it.
_STEP_KNOBS: dict[str, tuple[str, int]] = {
    "cactus": ("steps", 12),
    "gtc": ("steps", 10),
    "lbmhd": ("steps", 8),
    "paratec": ("fft_cycles", 3),
}


# -- calibrated-params artifact -------------------------------------------
#
# ``hfast calibrate`` (:mod:`hfast.dse.calibrate`) fits per-app params
# against the paper's %comm tables and writes a provenance-stamped JSON
# artifact. This module can load that artifact and *activate* it as an
# overlay over ``APP_PARAMS``: activation is always explicit (an API
# call or a CLI flag) — there is no ambient environment hook — so two
# runs of the same command can never silently disagree.

PARAMS_ARTIFACT_FORMAT = 1
PARAMS_ARTIFACT_KIND = "hfast-loggp-params"

_PARAM_FIELDS = ("L", "o", "g", "G", "jitter", "compute_step_s")

_ACTIVE_PARAMS: dict[str, LogGPParams] = {}
_ACTIVE_SOURCE: str | None = None


class ParamsArtifactError(ValueError):
    """A calibrated-params artifact is malformed or unreadable."""


def load_params_artifact(path: Any) -> dict[str, LogGPParams]:
    """Parse and validate a calibrated-params artifact file.

    Returns the per-app :class:`LogGPParams` mapping; raises
    :class:`ParamsArtifactError` on any structural problem so a stale or
    hand-edited artifact fails loudly instead of skewing results.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ParamsArtifactError(f"cannot read params artifact {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != PARAMS_ARTIFACT_KIND:
        raise ParamsArtifactError(
            f"{path}: not a {PARAMS_ARTIFACT_KIND} artifact"
        )
    if doc.get("format") != PARAMS_ARTIFACT_FORMAT:
        raise ParamsArtifactError(
            f"{path}: unsupported format {doc.get('format')!r} "
            f"(expected {PARAMS_ARTIFACT_FORMAT})"
        )
    raw = doc.get("params")
    if not isinstance(raw, dict) or not raw:
        raise ParamsArtifactError(f"{path}: missing per-app params table")
    out: dict[str, LogGPParams] = {}
    for app, fields in raw.items():
        if not isinstance(fields, dict):
            raise ParamsArtifactError(f"{path}: params[{app!r}] is not an object")
        kwargs: dict[str, float] = {}
        for name in _PARAM_FIELDS:
            v = fields.get(name)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v):
                raise ParamsArtifactError(
                    f"{path}: params[{app!r}].{name} must be a finite number, got {v!r}"
                )
            kwargs[name] = float(v)
        if not 0.0 <= kwargs["jitter"] < 1.0:
            raise ParamsArtifactError(
                f"{path}: params[{app!r}].jitter must be in [0, 1)"
            )
        out[app] = LogGPParams(**kwargs)
    return out


def activate_params(params: dict[str, LogGPParams], source: str) -> None:
    """Install a calibrated overlay; apps not in it keep their defaults."""
    global _ACTIVE_SOURCE
    _ACTIVE_PARAMS.clear()
    _ACTIVE_PARAMS.update(params)
    _ACTIVE_SOURCE = source


def deactivate_params() -> None:
    """Drop the calibrated overlay; everything reverts to ``APP_PARAMS``."""
    global _ACTIVE_SOURCE
    _ACTIVE_PARAMS.clear()
    _ACTIVE_SOURCE = None


def active_params(app: str) -> LogGPParams:
    """The effective params for an app: overlay, else defaults."""
    overlay = _ACTIVE_PARAMS.get(app)
    if overlay is not None:
        return overlay
    return APP_PARAMS.get(app, LogGPParams())


def params_provenance(app: str) -> str:
    """``default`` or ``calibrated:<source>`` for the app's active params."""
    if app in _ACTIVE_PARAMS and _ACTIVE_SOURCE is not None:
        return f"calibrated:{_ACTIVE_SOURCE}"
    return "default"


def _app_tag(app: str) -> int:
    tag = 0
    for ch in app.encode("utf-8"):
        tag = (tag * 131 + ch) & _MASK64
    return tag


class TimingModel:
    """Deterministic LogGP timing for one (app, nranks, seed) triple."""

    def __init__(
        self,
        app: str,
        nranks: int,
        seed: int = DEFAULT_TIMING_SEED,
        params: LogGPParams | None = None,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.app = app
        self.nranks = int(nranks)
        self.seed = int(seed)
        self.params = params if params is not None else active_params(app)
        if not 0.0 <= self.params.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.params.jitter}")
        self._seed_base = mix64((self.seed & _MASK64) ^ _app_tag(app))
        # Log-tree collective schedule depth.
        self._stages = float(max(1, math.ceil(math.log2(self.nranks)))) if self.nranks > 1 else 1.0

    # -- scalar path -------------------------------------------------------

    def _jitter_hash(self, rank: int, peer: int, call: str) -> int:
        key = (
            ((rank & 0xFFFFFFF) << 28)
            ^ ((peer & 0xFFFFF) << 8)
            ^ _CALL_IDS.get(call, _UNKNOWN_CALL_ID)
        )
        return mix64(self._seed_base ^ key)

    def mean_call_time(self, call: str, size: int, rank: int, peer: int) -> float:
        """Jittered mean time of one call of ``size`` bytes."""
        p = self.params
        wire = (p.L + p.g) + float(size) * p.G
        stages = self._stages if call in COLLECTIVE_CALLS else 1.0
        base = p.o * _CALL_OVERHEAD.get(call, _DEFAULT_OVERHEAD) + wire * stages
        u = (self._jitter_hash(rank, peer, call) >> 11) * _INV_2_53
        return base * (1.0 + p.jitter * (2.0 * u - 1.0))

    def time_record(self, rec: CommRecord) -> tuple[float, float, float]:
        """(total_time, min_time, max_time) for one aggregated record."""
        mean = self.mean_call_time(rec.call, rec.size, rec.rank, rec.peer)
        total = mean * float(rec.count)
        if rec.count <= 1:
            return total, mean, mean
        h = self._jitter_hash(rec.rank, rec.peer, rec.call)
        umin = (mix64(h ^ _STREAM_MIN) >> 11) * _INV_2_53
        umax = (mix64(h ^ _STREAM_MAX) >> 11) * _INV_2_53
        jit = self.params.jitter
        return total, mean * (1.0 - 0.5 * jit * umin), mean * (1.0 + 0.5 * jit * umax)

    # -- vector path -------------------------------------------------------

    def time_batch(self, batch: RecordBatch) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar (total, min, max) arrays, bit-identical to the scalar path."""
        p = self.params
        n = len(batch)
        if n == 0:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy(), empty.copy()
        over = np.array(
            [p.o * _CALL_OVERHEAD.get(c, _DEFAULT_OVERHEAD) for c in batch.calls],
            dtype=np.float64,
        )
        stages = np.array(
            [self._stages if c in COLLECTIVE_CALLS else 1.0 for c in batch.calls],
            dtype=np.float64,
        )
        call_ids = np.array(
            [_CALL_IDS.get(c, _UNKNOWN_CALL_ID) for c in batch.calls], dtype=np.uint64
        )
        code = batch.call_code.astype(np.int64)
        wire = (p.L + p.g) + batch.size.astype(np.float64) * p.G
        base = over[code] + wire * stages[code]

        key = (
            ((batch.rank.astype(np.uint64) & np.uint64(0xFFFFFFF)) << np.uint64(28))
            ^ ((batch.peer.astype(np.uint64) & np.uint64(0xFFFFF)) << np.uint64(8))
            ^ call_ids[code]
        )
        h = mix64_vec(np.uint64(self._seed_base) ^ key)
        u = (h >> np.uint64(11)).astype(np.float64) * _INV_2_53
        mean = base * (1.0 + p.jitter * (2.0 * u - 1.0))
        count = batch.count.astype(np.float64)
        total = mean * count

        umin = (mix64_vec(h ^ np.uint64(_STREAM_MIN)) >> np.uint64(11)).astype(
            np.float64
        ) * _INV_2_53
        umax = (mix64_vec(h ^ np.uint64(_STREAM_MAX)) >> np.uint64(11)).astype(
            np.float64
        ) * _INV_2_53
        repeated = batch.count > 1
        tmin = np.where(repeated, mean * (1.0 - 0.5 * p.jitter * umin), mean)
        tmax = np.where(repeated, mean * (1.0 + 0.5 * p.jitter * umax), mean)
        return total, tmin, tmax

    # -- aggregates --------------------------------------------------------

    def compute_time(self, overrides: dict[str, Any] | None = None) -> float:
        """Per-rank compute seconds, the denominator side of %comm."""
        key, default = _STEP_KNOBS.get(self.app, ("steps", 10))
        steps = int((overrides or {}).get(key, default))
        return self.params.compute_step_s * float(max(1, steps))

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": TIMING_MODEL,
            "seed": self.seed,
            "params": self.params.to_dict(),
        }


def apply_timing(
    trace: Trace,
    seed: int = DEFAULT_TIMING_SEED,
    params: LogGPParams | None = None,
) -> Trace:
    """Synthesize timing onto a trace in place (idempotent per seed).

    Works on whichever representation the trace holds — the columnar
    batch, the materialized record list, or both — and stamps
    ``trace.timing`` with the model descriptor so cache documents record
    how their times were produced.
    """
    model = TimingModel(trace.app, trace.nranks, seed=seed, params=params)
    if trace.batch is not None:
        total, tmin, tmax = model.time_batch(trace.batch)
        trace.batch.set_times(total, tmin, tmax)
    if trace._records is not None:
        for rec in trace._records:
            rec.total_time, rec.min_time, rec.max_time = model.time_record(rec)
    trace.timing = model.to_dict()
    return trace
