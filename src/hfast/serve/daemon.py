"""Analysis-as-a-service daemon: ``python -m hfast serve``.

A long-running asyncio HTTP service in front of the pipeline. Clients
submit one analysis cell at a time over the full
(app, scale, seed, timing/interconnect/matcher config) space and get a
content-addressed result back:

- ``POST /v1/jobs`` — validate + canonicalize the submission
  (:mod:`hfast.serve.jobspec`); identical work already running is
  deduplicated onto the in-flight job (single-flight), identical work
  already finished is answered straight from the result store, and new
  work is admitted against a bounded budget (``429`` + ``Retry-After``
  past it).
- ``POST /v1/sweeps`` — submit a design-space search as a single job:
  the daemon fans the sweep into candidate evaluations through
  :func:`hfast.dse.search.run_search` and content-addresses the Pareto
  frontier artifact under the search's key, byte-identical to a direct
  ``hfast search --out`` run of the same spec. Sweeps share the analyze
  jobs' admission ladder (dedupe, cached answers, backpressure), ledger
  recovery, and journal-backed resume.
- ``GET /v1/jobs/<id>`` — job status, scheduler stats, error detail.
- ``GET /v1/results/<key>`` — the stored artifact, byte-for-byte the
  same JSON a direct ``hfast analyze`` run would produce for that spec.
- ``GET /healthz`` / ``GET /metrics`` / ``GET /v1/events`` — ops
  surface: liveness + drain state, Prometheus exposition over the
  service and cumulative pipeline registries, and a ring of recent
  telemetry events.

Jobs execute on a small thread pool (``max_running`` wide) by calling
:func:`hfast.pipeline.run_pipeline` — the same entry point the CLI uses,
so served results inherit every determinism and caching guarantee the
pipeline already has. Each job runs under its own
:class:`~hfast.obs.profile.Observability` (installed thread-locally via
:func:`~hfast.obs.profile.using`); its metrics fold into a cumulative
registry and, when ``--trace-out`` is set, its spans graft into the
daemon's unified trace under a ``serve_job`` root.

The daemon is crash-tolerant: every job is journaled in a ledger and
(with the default stealing scheduler) in the run journal keyed by the
job's pinned ``run_id``. On restart, unfinished ledger entries are
re-admitted, resuming from their journal when one survived. ``SIGTERM``
triggers a graceful drain: new submissions get ``503`` while in-flight
jobs run to completion and their results become servable before exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from hfast.obs.metrics import MetricsRegistry
from hfast.obs.profile import Observability, using
from hfast.obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from hfast.obs.prom import render_registries
from hfast.obs.stream import EventBus, RingLog
from hfast.obs.trace import JsonlSink
from hfast.pipeline import run_pipeline
from hfast.sched.journal import JournalError, has_journal, new_run_id
from hfast.serve.jobspec import (
    JobSpec,
    JobValidationError,
    SweepSpec,
    canonicalize,
    canonicalize_sweep,
)
from hfast.serve.store import JobLedger, ResultStore

PROTOCOL = "HTTP/1.1"
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 100
MAX_BODY = 1 << 20
IO_TIMEOUT = 10.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Everything ``hfast serve`` needs to run (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0
    cache_dir: str = ".repro_cache"
    serve_dir: str = ".hfast_serve"
    max_running: int = 2
    queue_limit: int = 8
    workers: int = 1
    scheduler: str = "stealing"
    trace_out: str | None = None
    store: bool = True
    bench_dir: str | None = None
    # LRU byte budget for the result store (None = unbounded); evictions
    # increment the serve.store_evictions_total counter.
    store_max_bytes: int | None = None
    # Telemetry history root: every finished job appends a
    # content-addressed run snapshot (None = history off).
    history_dir: str | None = None
    # SLO spec ("default", or a JSON/YAML path) evaluated per job; None
    # disables the SLO engine.
    slo_spec: str | None = None
    # Seconds between heartbeat events on the bus (<= 0 disables them).
    # Tailing /v1/events clients use the heartbeat to tell "quiet daemon"
    # from "stalled daemon".
    heartbeat_interval: float = 2.0


@dataclass
class Job:
    """In-memory lifecycle record for one admitted submission."""

    job_id: str
    spec: JobSpec | SweepSpec
    key: str
    run_id: str
    kind: str = "analyze"  # "analyze" (POST /v1/jobs) or "sweep" (POST /v1/sweeps)
    status: str = "queued"
    error: str | None = None
    resume: str | None = None
    recovered: bool = False
    submitted: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    sched: dict[str, Any] | None = None
    attempts: int | None = None

    def doc(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "job_id": self.job_id,
            "key": self.key,
            "cell": self.spec.cell_key,
            "kind": self.kind,
            "status": self.status,
            "run_id": self.run_id,
            "recovered": self.recovered,
            "spec": self.spec.payload(),
        }
        if self.error is not None:
            d["error"] = self.error
        if self.status == "done":
            d["result_url"] = f"/v1/results/{self.key}"
        if self.sched is not None:
            d["scheduler"] = self.sched
        if self.attempts is not None:
            d["attempts"] = self.attempts
        return d


class AnalysisService:
    """The HTTP front end + job engine behind ``hfast serve``.

    All admission decisions (dedupe, cache check, backpressure) happen on
    the event-loop thread, so they are race-free by construction; only
    job *execution* leaves the loop, onto a ``max_running``-wide thread
    pool.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        root = Path(config.serve_dir)

        # Service-level counters/gauges; pipeline metrics accumulate
        # separately so a scrape distinguishes "what the daemon did" from
        # "what the analyses did".
        self.metrics = MetricsRegistry(enabled=True)
        self.pipeline_metrics = MetricsRegistry(enabled=True)

        self.store = ResultStore(
            root / "results",
            max_bytes=config.store_max_bytes,
            on_evict=lambda _key: self.metrics.counter("serve.store_evictions_total").inc(),
        )
        self.ledger = JobLedger(root / "jobs")
        self.journal_dir = root / "journal"
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.bus = EventBus()
        self.ring = RingLog(capacity=512)
        self.bus.subscribe(self.ring.handle)

        self._trace_obs = (
            Observability(enabled=True, trace_sink=JsonlSink(config.trace_out), keep_events=False)
            if config.trace_out
            else Observability.disabled()
        )
        self._graft_lock = threading.Lock()

        # SLO engine shared by every job (the engine is stateless across
        # evaluate() calls, so one instance is safe on the thread pool).
        self.slo_engine = None
        if config.slo_spec:
            from hfast.obs.slo import SloEngine, load_slo_spec

            self.slo_engine = SloEngine(load_slo_spec(config.slo_spec))

        # Telemetry history: one store, appended from job threads (each
        # append goes through the store's lock / per-writer wip file).
        self.history = None
        if config.history_dir:
            from hfast.obs.history import HistoryStore

            self.history = HistoryStore(config.history_dir)

        # Structured daemon log (rotating JSONL under <serve_dir>/logs).
        from hfast.obs.logs import RotatingJsonlWriter, StructuredLogger

        self.log = StructuredLogger(
            RotatingJsonlWriter(root / "logs" / "daemon.jsonl")
        ).bind(component="serve")
        self._heartbeat_task: asyncio.Task | None = None

        self._jobs: dict[str, Job] = {}
        self._active: dict[str, Job] = {}  # result key -> in-flight job
        self._tasks: set[asyncio.Task] = set()
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.max_running), thread_name_prefix="hfast-serve-job"
        )
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.log.info("serve_start", host=self.config.host, port=self.port)
        if self.config.heartbeat_interval > 0:
            self._heartbeat_task = self._loop.create_task(self._heartbeat_loop())
        self._recover()

    async def _heartbeat_loop(self) -> None:
        """Periodic liveness beacon on the event bus (lands in the ring).

        A tailing ``/v1/events`` client that stops seeing heartbeats can
        distinguish "the daemon is idle" from "the daemon is stalled".
        """
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            running = sum(1 for j in self._active.values() if j.status == "running")
            self.bus.publish(
                {
                    "event": "heartbeat",
                    "ts": round(time.time(), 6),
                    "running": running,
                    "queued": len(self._active) - running,
                    "draining": self._draining,
                }
            )

    def _recover(self) -> None:
        """Re-admit jobs a previous daemon left unfinished."""
        for rec in self.ledger.unfinished():
            kind = rec.get("kind") or "analyze"
            try:
                if kind == "sweep":
                    spec: JobSpec | SweepSpec = canonicalize_sweep(rec.get("spec"))
                else:
                    spec = canonicalize(rec.get("spec"))
            except JobValidationError as exc:
                rec.update(status="failed", error=f"unrecoverable spec: {exc}")
                self.ledger.write(rec)
                continue
            job_id = rec.get("job_id") or new_run_id()
            if spec.key in self._active:
                continue
            if self.store.has(spec.key):
                rec.update(status="done", key=spec.key)
                self.ledger.write(rec)
                continue
            job = Job(
                job_id=job_id,
                spec=spec,
                key=spec.key,
                run_id=rec.get("run_id") or new_run_id(),
                kind=kind,
                recovered=True,
            )
            if self.config.scheduler == "stealing" and has_journal(
                self.journal_dir, job.run_id
            ):
                job.resume = job.run_id
            self.metrics.counter("serve.jobs_recovered").inc()
            self._admit_job(job)

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight, then stop."""
        self._draining = True
        self.metrics.gauge("serve.draining").set(1)
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._trace_obs.tracer.flush()
        self._trace_obs.tracer.close()
        if self.history is not None:
            # Final service-counter snapshot, then seal the segment so a
            # clean shutdown leaves only content-addressed files behind.
            from hfast.obs.history import snapshot_from_service

            self.history.append(
                snapshot_from_service(
                    self.metrics.to_dict(),
                    timestamp=round(time.time(), 6),
                    extra_meta={"port": self.port},
                )
            )
            self.history.close()
        self.log.info("serve_drained", jobs=len(self._jobs))
        self.log.close()

    # -- admission (event-loop thread only) ---------------------------------

    def _admit_job(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        self._active[job.key] = job
        self.log.info(
            "job_admitted",
            job_id=job.job_id,
            key=job.key,
            run_id=job.run_id,
            cell=job.spec.cell_key,
            kind=job.kind,
            recovered=job.recovered,
        )
        self.ledger.write(job.doc())
        self._update_gauges()
        assert self._loop is not None
        task = self._loop.create_task(self._run_job(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _submit(
        self, payload: Any, kind: str = "analyze"
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Admission decision for one POST /v1/jobs or /v1/sweeps body."""
        if self._draining:
            return (
                503,
                {"error": "service is draining; resubmit after restart"},
                {"Retry-After": "5"},
            )
        try:
            if kind == "sweep":
                spec: JobSpec | SweepSpec = canonicalize_sweep(payload)
            else:
                spec = canonicalize(payload)
        except JobValidationError as exc:
            return 400, {"error": "validation failed", "errors": exc.errors}, {}
        self.metrics.counter("serve.jobs_submitted").inc()
        key = spec.key

        inflight = self._active.get(key)
        if inflight is not None:
            self.metrics.counter("serve.jobs_deduped").inc()
            doc = inflight.doc()
            doc["deduped"] = True
            return 200, doc, {}

        if self.store.has(key):
            self.metrics.counter("serve.cache_hits").inc()
            return (
                200,
                {
                    "key": key,
                    "cell": spec.cell_key,
                    "status": "done",
                    "cached": True,
                    "result_url": f"/v1/results/{key}",
                },
                {},
            )

        budget = self.config.max_running + self.config.queue_limit
        if len(self._active) >= budget:
            self.metrics.counter("serve.rejected_429").inc()
            self.log.warning("job_rejected", cell=spec.cell_key, key=key, reason="budget")
            return (
                429,
                {"error": f"admission budget exhausted ({budget} jobs in flight)"},
                {"Retry-After": "1"},
            )

        job = Job(job_id=new_run_id(), spec=spec, key=key, run_id=new_run_id(), kind=kind)
        self._admit_job(job)
        return 202, job.doc(), {}

    def _update_gauges(self) -> None:
        # Called from both the loop and job threads; snapshot first so a
        # concurrent admission can't mutate the dict mid-iteration.
        active = list(self._active.values())
        running = sum(1 for j in active if j.status == "running")
        self.metrics.gauge("serve.running").set(running)
        self.metrics.gauge("serve.queue_depth").set(len(active) - running)

    # -- execution ----------------------------------------------------------

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None
        try:
            await self._loop.run_in_executor(self._executor, self._execute, job)
        finally:
            self._active.pop(job.key, None)
            self._update_gauges()

    def _execute(self, job: Job) -> None:
        """Worker-thread body: one pipeline run for one job."""
        job.status = "running"
        job.started = time.time()
        self.ledger.write(job.doc())
        self._update_gauges()
        self.bus.publish({"event": "job_start", "job_id": job.job_id, "cell": job.spec.cell_key})
        job_log = self.log.bind(
            job_id=job.job_id, key=job.key, run_id=job.run_id, cell=job.spec.cell_key
        )
        job_log.info("job_start", kind=job.kind, recovered=job.recovered)

        keep_events = self._trace_obs.enabled
        job_obs = Observability(enabled=True, keep_events=keep_events)
        runner = self._run_sweep_once if job.kind == "sweep" else self._run_pipeline_once
        out: dict[str, Any] | None = None
        try:
            out = runner(job, job_obs)
        except JournalError as exc:
            # The journal for a recovered run id is unusable (torn header,
            # fingerprint drift across a config change). Fall back to a
            # fresh run under a new id rather than failing the job.
            if job.resume is not None:
                job.resume = None
                job.run_id = new_run_id()
                self.bus.publish(
                    {"event": "job_resume_fallback", "job_id": job.job_id, "error": str(exc)}
                )
                try:
                    out = runner(job, job_obs)
                except Exception as retry_exc:  # noqa: BLE001 - job boundary
                    job.error = f"{type(retry_exc).__name__}: {retry_exc}"
            else:
                job.error = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001 - job boundary
            job.error = f"{type(exc).__name__}: {exc}"

        if out is not None:
            manifest = out.get("manifest") or {}
            job.sched = manifest.get("scheduler")
            cells = manifest.get("cells") or []
            if cells:
                job.attempts = max(int(c.get("attempts", 1)) for c in cells)
            failed = manifest.get("failed_cells") or []
            if job.kind == "sweep":
                # A sweep succeeds as long as any candidate evaluated: the
                # frontier artifact itself records per-candidate failures.
                frontier = out.get("frontier") or {}
                if not frontier.get("evaluated"):
                    job.error = f"all candidate evaluations failed ({', '.join(failed)})"
                else:
                    # store.put serializes with sort_keys + trailing newline,
                    # exactly frontier_bytes() — so GET /v1/results/<key>
                    # is byte-identical to `hfast search --out`.
                    self.store.put(job.key, frontier)
            elif failed:
                detail = "; ".join(
                    f"{c.get('app')}_p{c.get('nranks')}: {c.get('error')}"
                    for c in cells
                    if not c.get("ok", True)
                )
                job.error = f"cell execution failed ({detail or ', '.join(failed)})"
            elif not out.get("results"):
                job.error = "pipeline returned no results"
            else:
                self.store.put(job.key, out["results"][0])

        job.status = "failed" if job.error is not None else "done"
        job.finished = time.time()
        self.metrics.counter(
            "serve.jobs_failed" if job.error else "serve.jobs_executed"
        ).inc()
        self.pipeline_metrics.merge_snapshot(job_obs.metrics.to_dict())
        self._graft_job(job, job_obs)
        self.ledger.write(job.doc())
        self._update_gauges()
        self.bus.publish(
            {
                "event": "job_done",
                "job_id": job.job_id,
                "cell": job.spec.cell_key,
                "status": job.status,
                "wall_s": job.finished - (job.started or job.finished),
            }
        )
        if job.error is not None:
            job_log.error("job_failed", error=job.error, wall_s=round(job.finished - (job.started or job.finished), 6))
        else:
            job_log.info("job_done", wall_s=round(job.finished - (job.started or job.finished), 6))
        # History is a pure side channel: the stored artifact bytes are
        # already final (store.put above), so a snapshot failure can only
        # ever cost us the snapshot, never the job.
        if self.history is not None and job.kind == "analyze" and out is not None:
            try:
                from hfast.obs.history import snapshot_from_run

                self.history.append(
                    snapshot_from_run(
                        out.get("manifest") or {},
                        out.get("results") or [],
                        metrics_snapshot=job_obs.metrics.to_dict(),
                        source="serve",
                        anomalies=out.get("anomalies"),
                        slo_statuses=out.get("slo"),
                    )
                )
            except Exception as exc:  # noqa: BLE001 - side-channel boundary
                job_log.error("history_append_failed", error=f"{type(exc).__name__}: {exc}")

    def _run_pipeline_once(self, job: Job, job_obs: Observability) -> dict[str, Any]:
        spec = job.spec
        with using(job_obs):
            return run_pipeline(
                apps=[spec.app],
                scales={spec.app: [spec.nranks]},
                cache_dir=self.config.cache_dir,
                obs=job_obs,
                config=spec.interconnect_config(),
                store=self.config.store,
                argv=["hfast-serve", job.job_id],
                workers=self.config.workers,
                backend=spec.backend,
                timing_seed=spec.timing_seed,
                scheduler=self.config.scheduler,
                journal_dir=str(self.journal_dir),
                resume=job.resume,
                run_id=job.run_id,
                service={"job_id": job.job_id, "key": job.key},
                bench_dir=self.config.bench_dir,
                slo=self.slo_engine,
            )

    def _run_sweep_once(self, job: Job, job_obs: Observability) -> dict[str, Any]:
        # Sweep payloads only reach this daemon-thread path, so the DSE
        # import stays out of the common analyze flow.
        from hfast.dse.search import run_search

        assert isinstance(job.spec, SweepSpec)
        with using(job_obs):
            return run_search(
                job.spec.search,
                cache_dir=self.config.cache_dir,
                obs=job_obs,
                store=self.config.store,
                argv=["hfast-serve", job.job_id],
                workers=self.config.workers,
                scheduler=self.config.scheduler,
                journal_dir=str(self.journal_dir),
                resume=job.resume,
                run_id=job.run_id,
                bench_dir=self.config.bench_dir,
            )

    def _graft_job(self, job: Job, job_obs: Observability) -> None:
        """Re-root one job's span events under the daemon's unified trace.

        Mirrors the pipeline's worker-event graft: the job's locally
        numbered spans are remapped onto the daemon tracer's id space and
        hung off a synthetic ``serve_job`` root, so the daemon's JSONL
        trace is one forest with a root per job. Serialized by a lock —
        jobs finish concurrently but the tracer's id counter and sink
        are shared.
        """
        tracer = self._trace_obs.tracer
        if not tracer.enabled or job_obs.event_buffer is None:
            return
        events = job_obs.event_buffer.events
        with self._graft_lock:
            job_span_id = tracer.reserve_ids(1)
            max_local = max(
                (e["span_id"] for e in events if e.get("event") == "span"), default=0
            )
            base = tracer.reserve_ids(max_local + 1)
            for ev in events:
                ev = dict(ev)
                kind = ev.pop("event")
                if kind == "span":
                    ev["span_id"] = ev["span_id"] + base
                    if ev.get("parent_id") is None:
                        ev["parent_id"] = job_span_id
                    else:
                        ev["parent_id"] = ev["parent_id"] + base
                    ev["depth"] = ev.get("depth", 0) + 1
                else:
                    ev.setdefault("parent_id", job_span_id)
                tracer.emit_event(kind, ev)
            tracer.emit_event(
                "span",
                {
                    "name": "serve_job",
                    "span_id": job_span_id,
                    "parent_id": None,
                    "depth": 0,
                    "wall_s": (job.finished or 0.0) - (job.started or 0.0),
                    "peak_rss_kb": 0,
                    "attrs": {
                        "job_id": job.job_id,
                        "key": job.key,
                        "cell": job.spec.cell_key,
                        "kind": job.kind,
                        "status": job.status,
                    },
                },
            )
            tracer.flush()

    # -- HTTP ---------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(self._read_request(reader), IO_TIMEOUT)
            if request is None:
                return
            method, target, body = request
            status, ctype, payload, headers = self._route(method, target, body)
            await self._write_response(writer, status, ctype, payload, headers)
        except (asyncio.TimeoutError, ConnectionError):
            pass
        except _HttpError as exc:
            try:
                await self._write_response(
                    writer,
                    exc.status,
                    "application/json",
                    (json.dumps({"error": exc.message}) + "\n").encode("utf-8"),
                    {},
                )
            except (ConnectionError, asyncio.TimeoutError):
                pass
        except Exception:  # noqa: BLE001 - connection boundary
            try:
                await self._write_response(
                    writer,
                    500,
                    "application/json",
                    b'{"error": "internal server error"}\n',
                    {},
                )
            except (ConnectionError, asyncio.TimeoutError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        line = await reader.readline()
        if not line:
            return None  # client connected and went away
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        content_length = 0
        for _ in range(MAX_HEADERS):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            if len(header) > MAX_REQUEST_LINE:
                raise _HttpError(400, "header line too long")
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "invalid Content-Length") from exc
        else:
            raise _HttpError(400, "too many headers")
        if content_length < 0 or content_length > MAX_BODY:
            raise _HttpError(413, f"body exceeds {MAX_BODY} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, target, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        ctype: str,
        payload: bytes,
        headers: dict[str, str],
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [f"{PROTOCOL} {status} {reason}"]
        head.append(f"Content-Type: {ctype}")
        head.append(f"Content-Length: {len(payload)}")
        head.append("Connection: close")
        for name, value in headers.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
        await asyncio.wait_for(writer.drain(), IO_TIMEOUT)

    def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        parsed = urllib.parse.urlsplit(target)
        path = parsed.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(parsed.query)

        def json_response(
            status: int, doc: Any, headers: dict[str, str] | None = None
        ) -> tuple[int, str, bytes, dict[str, str]]:
            payload = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
            return status, "application/json", payload, headers or {}

        if path in ("/v1/jobs", "/v1/sweeps") and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return json_response(400, {"error": f"invalid JSON body: {exc}"})
            kind = "sweep" if path == "/v1/sweeps" else "analyze"
            status, doc, headers = self._submit(payload, kind=kind)
            return json_response(status, doc, headers)

        if path == "/v1/jobs" and method == "GET":
            jobs = [job.doc() for job in self._jobs.values()]
            jobs.sort(key=lambda d: d["job_id"])
            return json_response(200, {"jobs": jobs, "active": len(self._active)})

        if path.startswith("/v1/jobs/") and method == "GET":
            job_id = path[len("/v1/jobs/"):]
            job = self._jobs.get(job_id)
            if job is not None:
                return json_response(200, job.doc())
            rec = self.ledger.read(job_id)
            if rec is not None:
                return json_response(200, rec)
            return json_response(404, {"error": f"no such job {job_id!r}"})

        if path.startswith("/v1/results/") and method == "GET":
            key = path[len("/v1/results/"):]
            raw = self.store.get_bytes(key)
            if raw is None:
                return json_response(404, {"error": f"no result for key {key!r}"})
            return 200, "application/json", raw, {}

        if path == "/healthz" and method == "GET":
            running = sum(1 for j in self._active.values() if j.status == "running")
            return json_response(
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "running": running,
                    "queued": len(self._active) - running,
                    "results": len(self.store.keys()),
                },
            )

        if path == "/metrics" and method == "GET":
            text = render_registries(self.metrics, self.pipeline_metrics)
            return 200, PROM_CONTENT_TYPE, text.encode("utf-8"), {}

        if path == "/v1/events" and method == "GET":
            if "cursor" in query:
                # Cursor-paginated tail: only events newer than the
                # client's last-seen seq, plus how many rotated out of
                # the ring before it caught up.
                try:
                    cursor = int(query["cursor"][0])
                except ValueError:
                    return json_response(400, {"error": "cursor must be an integer"})
                events, next_cursor, missed = self.ring.since(cursor)
                return json_response(
                    200,
                    {
                        "seen": self.ring.seen,
                        "cursor": next_cursor,
                        "missed": missed,
                        "events": events,
                    },
                )
            n = None
            if "n" in query:
                try:
                    n = int(query["n"][0])
                except ValueError:
                    return json_response(400, {"error": "n must be an integer"})
            return json_response(200, {"seen": self.ring.seen, "events": self.ring.tail(n)})

        known = {"/v1/jobs", "/v1/sweeps", "/healthz", "/metrics", "/v1/events"}
        if path in known or path.startswith(("/v1/jobs/", "/v1/results/")):
            return json_response(405, {"error": f"{method} not allowed on {path}"})
        return json_response(404, {"error": f"no such endpoint {path}"})


class _HttpError(Exception):
    """Protocol-level request failure mapped to a 4xx response."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class ServiceThread:
    """Run an :class:`AnalysisService` on a background event-loop thread.

    The embedding API for tests and the smoke script: boot the daemon
    in-process on an ephemeral port, talk to it over real sockets, drain
    it programmatically. Usable as a context manager; exit drains.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.service: AnalysisService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._drained = False

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="hfast-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.service = AnalysisService(self.config)
        try:
            self.loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._error = exc
            self._ready.set()
            self.loop.close()
            return
        self._ready.set()
        try:
            self.loop.run_forever()
        finally:
            self.loop.run_until_complete(self.loop.shutdown_asyncgens())
            self.loop.close()

    @property
    def port(self) -> int:
        assert self.service is not None and self.service.port is not None
        return self.service.port

    def drain(self, timeout: float = 120.0) -> None:
        """Synchronously run the graceful-drain path from the caller's thread."""
        if self._drained or self.service is None or self.loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.service.shutdown(), self.loop)
        future.result(timeout=timeout)
        self._drained = True

    def stop(self, timeout: float = 120.0) -> None:
        self.drain(timeout=timeout)
        if self.loop is not None and self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


async def serve_forever(config: ServeConfig) -> int:
    """Foreground daemon entry: start, announce, wait for SIGTERM, drain."""
    service = AnalysisService(config)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    # The exact line the subprocess tests and ops tooling wait for.
    print(f"hfast-serve listening on http://{config.host}:{service.port}", flush=True)
    await stop.wait()
    print("hfast-serve draining", flush=True)
    await service.shutdown()
    print("hfast-serve drained, exiting", flush=True)
    return 0


def run_serve(config: ServeConfig) -> int:
    """Synchronous wrapper the CLI dispatches to."""
    try:
        return asyncio.run(serve_forever(config))
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        return 130
