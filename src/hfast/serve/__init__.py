"""Analysis-as-a-service: the ``hfast serve`` HTTP daemon.

Public surface:

- :func:`hfast.serve.jobspec.canonicalize` / :class:`~hfast.serve.jobspec.JobSpec`
  — submission validation and content addressing.
- :class:`hfast.serve.store.ResultStore` / :class:`hfast.serve.store.JobLedger`
  — durable result artifacts and job lifecycle records.
- :class:`hfast.serve.daemon.AnalysisService` — the asyncio HTTP service.
- :class:`hfast.serve.daemon.ServiceThread` — in-process embedding for
  tests and smoke scripts.
- :func:`hfast.serve.daemon.run_serve` — the CLI entry point.
"""

from hfast.serve.daemon import AnalysisService, ServeConfig, ServiceThread, run_serve
from hfast.serve.jobspec import JobSpec, JobValidationError, canonicalize
from hfast.serve.store import JobLedger, ResultStore

__all__ = [
    "AnalysisService",
    "ServeConfig",
    "ServiceThread",
    "run_serve",
    "JobSpec",
    "JobValidationError",
    "canonicalize",
    "JobLedger",
    "ResultStore",
]
