"""Job specifications: validation, canonicalization, content addressing.

A submission to ``POST /v1/jobs`` names one (app, nranks) cell plus the
knobs that change its analysis output: trace-synthesis backend and
overrides, the deterministic timing seed, and the full interconnect
configuration. :func:`canonicalize` validates the request and maps it
onto a :class:`JobSpec` whose :attr:`JobSpec.key` is the sha256 of the
canonical JSON document — two submissions that differ only in field
order or in explicitly spelling out default values land on the same key
(and therefore the same cached result), while any field that actually
changes the output changes the key.

The spec's ``overrides`` feed the same ``{app, nranks, overrides}``
sha256 key the repro-cache has always used (:func:`hfast.cache.cache_key`),
so the service's result addressing is an extension of the existing
content-addressed trace cache, not a parallel scheme.

``POST /v1/sweeps`` submissions go through :func:`canonicalize_sweep`
instead: the payload names a design-space search (workload + space +
strategy + seed), validation delegates to the DSE layer's own
:class:`~hfast.dse.space.SearchSpace` /
:class:`~hfast.dse.search.SearchSpec` validators (errors merged into
one :class:`JobValidationError`), and the resulting
:class:`SweepSpec`'s key IS the search's content key — so the stored
frontier artifact is addressed identically whether it came through the
daemon or a direct ``hfast search`` run.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any

from hfast.apps import APPS, BACKENDS, DEFAULT_BACKEND
from hfast.cache import cache_key
from hfast.interconnect import InterconnectConfig
from hfast.matcher import MATCHERS
from hfast.timing import DEFAULT_TIMING_SEED

#: Canonical-document schema version; bump on any change to the layout
#: below, because the version participates in the sha256 key.
SPEC_FORMAT = 1

MAX_NRANKS = 1 << 20
MAX_TIMESTEPS = 4096

_DEFAULT_CONFIG = InterconnectConfig()

#: field -> (default, kind); ``kind`` drives validation + normalization.
FIELDS: dict[str, tuple[Any, str]] = {
    "app": (None, "app"),
    "nranks": (None, "nranks"),
    "backend": (DEFAULT_BACKEND, "backend"),
    "timing_seed": (DEFAULT_TIMING_SEED, "int"),
    "overrides": ({}, "overrides"),
    "circuits_per_node": (_DEFAULT_CONFIG.circuits_per_node, "nonneg_int"),
    "circuit_bandwidth": (_DEFAULT_CONFIG.circuit_bandwidth, "pos_float"),
    "packet_bandwidth": (_DEFAULT_CONFIG.packet_bandwidth, "pos_float"),
    "circuit_latency": (_DEFAULT_CONFIG.circuit_latency, "pos_float"),
    "packet_latency": (_DEFAULT_CONFIG.packet_latency, "pos_float"),
    "timesteps": (_DEFAULT_CONFIG.timesteps, "timesteps"),
    "reconfig_cost": (_DEFAULT_CONFIG.reconfig_cost, "nonneg_float"),
    "slice_seed": (_DEFAULT_CONFIG.slice_seed, "int"),
    "matcher": (_DEFAULT_CONFIG.matcher, "matcher"),
}

_INT_FIELDS = {"nranks", "timing_seed", "circuits_per_node", "timesteps", "slice_seed"}
_FLOAT_FIELDS = {
    "circuit_bandwidth",
    "packet_bandwidth",
    "circuit_latency",
    "packet_latency",
    "reconfig_cost",
}


class JobValidationError(ValueError):
    """A job submission failed validation; ``errors`` lists every problem."""

    def __init__(self, errors: list[str]):
        self.errors = list(errors)
        super().__init__("; ".join(errors))


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_finite_number(value: Any) -> bool:
    if isinstance(value, bool):
        return False
    return isinstance(value, (int, float)) and math.isfinite(value)


@dataclass(frozen=True)
class JobSpec:
    """One validated, fully-defaulted analysis request."""

    app: str
    nranks: int
    backend: str
    timing_seed: int
    overrides: tuple[tuple[str, Any], ...]
    circuits_per_node: int
    circuit_bandwidth: float
    packet_bandwidth: float
    circuit_latency: float
    packet_latency: float
    timesteps: int
    reconfig_cost: float
    slice_seed: int
    matcher: str

    @property
    def cell_key(self) -> str:
        return f"{self.app}_p{self.nranks}"

    def overrides_dict(self) -> dict[str, Any]:
        return dict(self.overrides)

    def interconnect_config(self) -> InterconnectConfig:
        return InterconnectConfig(
            circuits_per_node=self.circuits_per_node,
            circuit_bandwidth=self.circuit_bandwidth,
            packet_bandwidth=self.packet_bandwidth,
            circuit_latency=self.circuit_latency,
            packet_latency=self.packet_latency,
            timesteps=self.timesteps,
            reconfig_cost=self.reconfig_cost,
            slice_seed=self.slice_seed,
            matcher=self.matcher,
        )

    def canonical_doc(self) -> dict[str, Any]:
        """Fully-defaulted, normalized document the result key hashes."""
        return {
            "format": SPEC_FORMAT,
            "app": self.app,
            "nranks": self.nranks,
            "backend": self.backend,
            "timing_seed": self.timing_seed,
            "overrides": self.overrides_dict(),
            "interconnect": {
                "circuits_per_node": self.circuits_per_node,
                "circuit_bandwidth": float(self.circuit_bandwidth),
                "packet_bandwidth": float(self.packet_bandwidth),
                "circuit_latency": float(self.circuit_latency),
                "packet_latency": float(self.packet_latency),
                "timesteps": self.timesteps,
                "reconfig_cost": float(self.reconfig_cost),
                "slice_seed": self.slice_seed,
                "matcher": self.matcher,
            },
        }

    @property
    def key(self) -> str:
        """Content address: sha256 hex of the canonical JSON document."""
        payload = json.dumps(self.canonical_doc(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def trace_cache_key(self) -> str:
        """The underlying repro-cache key this job's trace lives under."""
        return cache_key(self.app, self.nranks, self.overrides_dict())

    def payload(self) -> dict[str, Any]:
        """Flat request payload that round-trips through :func:`canonicalize`.

        The job ledger persists this form so daemon restart recovery can
        rebuild the exact spec (and therefore the exact key) from disk.
        """
        doc = self.canonical_doc()
        flat = {k: v for k, v in doc.items() if k not in ("format", "interconnect")}
        flat.update(doc["interconnect"])
        return flat


def _validate_field(name: str, kind: str, value: Any, errors: list[str]) -> Any:
    if kind == "app":
        if not isinstance(value, str) or value not in APPS:
            errors.append(
                f"app: unknown app {value!r} (expected one of {sorted(APPS)})"
            )
            return None
        return value
    if kind == "nranks":
        if not _is_int(value) or not 1 <= value <= MAX_NRANKS:
            errors.append(f"nranks: expected an integer in [1, {MAX_NRANKS}], got {value!r}")
            return None
        return value
    if kind == "backend":
        if not isinstance(value, str) or value not in BACKENDS:
            errors.append(f"backend: expected one of {BACKENDS}, got {value!r}")
            return None
        return value
    if kind == "matcher":
        if not isinstance(value, str) or value not in MATCHERS:
            errors.append(f"matcher: expected one of {MATCHERS}, got {value!r}")
            return None
        return value
    if kind == "timesteps":
        if not _is_int(value) or not 1 <= value <= MAX_TIMESTEPS:
            errors.append(
                f"timesteps: expected an integer in [1, {MAX_TIMESTEPS}], got {value!r}"
            )
            return None
        return value
    if kind == "int":
        if not _is_int(value):
            errors.append(f"{name}: expected an integer, got {value!r}")
            return None
        return value
    if kind == "nonneg_int":
        if not _is_int(value) or value < 0:
            errors.append(f"{name}: expected a non-negative integer, got {value!r}")
            return None
        return value
    if kind == "pos_float":
        if not _is_finite_number(value) or value <= 0:
            errors.append(f"{name}: expected a positive finite number, got {value!r}")
            return None
        return float(value)
    if kind == "nonneg_float":
        if not _is_finite_number(value) or value < 0:
            errors.append(f"{name}: expected a non-negative finite number, got {value!r}")
            return None
        return float(value)
    if kind == "overrides":
        if not isinstance(value, dict):
            errors.append(f"overrides: expected an object, got {type(value).__name__}")
            return None
        clean: dict[str, Any] = {}
        for k in sorted(value):
            v = value[k]
            if not isinstance(k, str):
                errors.append(f"overrides: keys must be strings, got {k!r}")
                continue
            if v is not None and not isinstance(v, str) and not _is_finite_number(v):
                errors.append(
                    f"overrides[{k!r}]: values must be null, strings, or finite numbers, "
                    f"got {v!r}"
                )
                continue
            clean[k] = v
        return tuple(sorted(clean.items()))
    raise AssertionError(f"unhandled field kind {kind!r}")  # pragma: no cover


#: Top-level fields a sweep submission may carry; everything nested under
#: ``space`` is validated by :class:`hfast.dse.space.SearchSpace`.
SWEEP_FIELDS = (
    "app",
    "nranks",
    "space",
    "strategy",
    "seed",
    "population",
    "generations",
    "backend",
    "timing_seed",
)


@dataclass(frozen=True)
class SweepSpec:
    """One validated design-space sweep request.

    A thin service-facing wrapper around the DSE layer's
    :class:`~hfast.dse.search.SearchSpec`: the spec owns validation and
    content addressing, this class adapts it to the daemon's job
    protocol (``key``/``cell_key``/``payload``).
    """

    search: Any  # hfast.dse.search.SearchSpec

    @property
    def key(self) -> str:
        """The search's content key — shared with ``hfast search``."""
        return self.search.key

    @property
    def cell_key(self) -> str:
        return f"{self.search.app}_p{self.search.nranks}"

    def payload(self) -> dict[str, Any]:
        """Flat payload that round-trips through :func:`canonicalize_sweep`."""
        doc = self.search.canonical_doc()
        return {k: v for k, v in doc.items() if k != "format"}


def canonicalize_sweep(payload: Any) -> SweepSpec:
    """Validate a sweep submission and return its canonical :class:`SweepSpec`.

    Like :func:`canonicalize`, every problem is collected before raising.
    Space and spec validation are delegated to the DSE layer so the
    service accepts exactly what ``hfast search`` accepts.
    """
    # Lazy import: only sweep submissions pull in the DSE package.
    from hfast.dse.search import SearchSpec, SearchSpecError
    from hfast.dse.space import SearchSpace, SpaceValidationError

    errors: list[str] = []
    if not isinstance(payload, dict):
        raise JobValidationError(
            [f"sweep spec must be a JSON object, got {type(payload).__name__}"]
        )
    unknown = sorted(set(payload) - set(SWEEP_FIELDS))
    if unknown:
        errors.append(f"unknown field(s): {', '.join(unknown)}")
    for name in ("app", "nranks"):
        if name not in payload:
            errors.append(f"{name}: required field is missing")
    space = SearchSpace()
    if "space" in payload:
        try:
            space = SearchSpace.from_doc(payload["space"])
        except SpaceValidationError as exc:
            errors.extend(exc.errors)
    if not errors:
        kwargs = {
            k: payload[k]
            for k in SWEEP_FIELDS
            if k in payload and k != "space"
        }
        try:
            return SweepSpec(search=SearchSpec(space=space, **kwargs))
        except SearchSpecError as exc:
            errors.extend(exc.errors)
        except TypeError as exc:
            errors.append(str(exc))
    raise JobValidationError(errors)


def canonicalize(payload: Any) -> JobSpec:
    """Validate a submission and return its canonical :class:`JobSpec`.

    Every problem is collected before raising, so a client sees the full
    list of offending fields in one round trip, not one per retry.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        raise JobValidationError(
            [f"job spec must be a JSON object, got {type(payload).__name__}"]
        )
    unknown = sorted(set(payload) - set(FIELDS))
    if unknown:
        errors.append(f"unknown field(s): {', '.join(unknown)}")
    values: dict[str, Any] = {}
    for name, (default, kind) in FIELDS.items():
        if name not in payload:
            if default is None and name in ("app", "nranks"):
                errors.append(f"{name}: required field is missing")
                continue
            values[name] = tuple(sorted(default.items())) if name == "overrides" else default
            continue
        checked = _validate_field(name, kind, payload[name], errors)
        if checked is not None:
            values[name] = checked
    if errors:
        raise JobValidationError(errors)
    return JobSpec(**values)
