"""Durable service state: result artifacts + job ledger.

Two small on-disk stores back the daemon, both plain files under the
serve directory so an operator can inspect them with ``cat``:

- :class:`ResultStore` — content-addressed result cache under
  ``results/<sha256>.json``. The stored bytes are exactly
  ``json.dumps(summary, sort_keys=True) + "\\n"`` — the same
  serialization the repro-cache and report writers use — and
  ``GET /v1/results/<key>`` serves them verbatim, which is what makes
  the byte-identity contract with a direct ``hfast analyze`` run
  testable. Writes are atomic (tmp file + ``os.replace``), matching the
  repro-cache's crash-safety idiom.
- :class:`JobLedger` — one JSON document per job under
  ``jobs/<job_id>.json`` recording the submission, its canonical key,
  and the job's lifecycle state. The ledger is what daemon restart
  recovery walks: any job left ``queued``/``running`` by a crash is
  re-admitted, resuming from the scheduler journal when one survived.

Keys are validated against strict hex patterns before touching the
filesystem, so a request path can never escape the store directory.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any

RESULT_KEY_RE = re.compile(r"^[0-9a-f]{64}$")
JOB_ID_RE = re.compile(r"^[0-9A-Za-z._-]{1,64}$")

#: Lifecycle states a ledger entry moves through.
JOB_STATES = ("queued", "running", "done", "failed")


class ResultStore:
    """Content-addressed result artifacts: ``results/<sha256>.json``.

    With ``max_bytes`` set, the store enforces an LRU byte budget: each
    ``put`` that pushes the total over the cap evicts the
    least-recently-used artifacts (by file mtime — reads touch it) until
    the budget holds again. The just-written artifact is never evicted,
    even when it alone exceeds the budget, so a ``put`` is always
    followed by a successful ``get``. ``on_evict`` (if given) is called
    once per evicted key — the daemon hangs its
    ``serve.store_evictions_total`` counter there.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int | None = None,
        on_evict: Any = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.on_evict = on_evict

    def _path(self, key: str) -> Path:
        if not RESULT_KEY_RE.match(key):
            raise KeyError(f"invalid result key {key!r}")
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        try:
            return self._path(key).is_file()
        except KeyError:
            return False

    def put(self, key: str, summary: dict[str, Any]) -> Path:
        """Atomically store a result summary; idempotent per key."""
        path = self._path(key)
        payload = json.dumps(summary, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp_", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._evict(keep=path.name)
        return path

    def _evict(self, keep: str) -> None:
        """Drop LRU artifacts until the byte budget holds (best-effort)."""
        entries = []
        total = 0
        for p in self.root.glob("*.json"):
            if not RESULT_KEY_RE.match(p.stem):
                continue
            try:
                st = p.stat()
            except OSError:
                continue
            total += st.st_size
            entries.append((st.st_mtime, p))
        if total <= self.max_bytes:
            return
        entries.sort()
        for _mtime, p in entries:
            if total <= self.max_bytes:
                break
            if p.name == keep:
                continue
            try:
                size = p.stat().st_size
                p.unlink()
            except OSError:
                continue
            total -= size
            if self.on_evict is not None:
                self.on_evict(p.stem)

    def get_bytes(self, key: str) -> bytes | None:
        """The stored artifact, byte-for-byte; ``None`` when absent."""
        try:
            path = self._path(key)
        except KeyError:
            return None
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        # A read is an LRU touch: recently-served artifacts survive
        # eviction longer than cold ones.
        if self.max_bytes is not None:
            try:
                os.utime(path)
            except OSError:
                pass
        return raw

    def get(self, key: str) -> dict[str, Any] | None:
        raw = self.get_bytes(key)
        return None if raw is None else json.loads(raw)

    def keys(self) -> list[str]:
        return sorted(
            p.stem for p in self.root.glob("*.json") if RESULT_KEY_RE.match(p.stem)
        )


class JobLedger:
    """Per-job lifecycle records: ``jobs/<job_id>.json``."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        if not JOB_ID_RE.match(job_id):
            raise KeyError(f"invalid job id {job_id!r}")
        return self.root / f"{job_id}.json"

    def write(self, record: dict[str, Any]) -> None:
        """Atomically persist one job record (keyed by ``record['job_id']``)."""
        path = self._path(record["job_id"])
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp_", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def read(self, job_id: str) -> dict[str, Any] | None:
        try:
            path = self._path(job_id)
        except KeyError:
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def all(self) -> list[dict[str, Any]]:
        records = []
        for path in sorted(self.root.glob("*.json")):
            if path.name.startswith(".tmp_"):
                continue
            try:
                records.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue
        return records

    def unfinished(self) -> list[dict[str, Any]]:
        """Jobs a previous daemon left in flight (crash-recovery input)."""
        return [r for r in self.all() if r.get("status") in ("queued", "running")]
