"""Topology-degree analysis (the paper's central measurement).

The SC'05 study's key observation: most ultra-scale applications talk to a
small, fixed set of partners, so a hybrid interconnect can provision
circuits for the heavy links and fall back to a cheap packet network for
the rest. These reductions quantify that: per-rank degree, the degree
distribution, and the traffic fraction concentrated on each rank's top-k
partners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from hfast.matrix import CommMatrix
from hfast.obs.profile import profiled


@dataclass
class TopologyStats:
    nranks: int
    degrees: np.ndarray  # per-rank partner count (union of send/recv)
    max_degree: int
    avg_degree: float
    degree_histogram: dict[int, int]
    concentration: dict[int, float]  # k -> fraction of bytes on top-k partners/rank

    def to_dict(self) -> dict:
        return {
            "nranks": self.nranks,
            "max_degree": self.max_degree,
            "avg_degree": round(self.avg_degree, 3),
            "degree_histogram": {str(k): v for k, v in sorted(self.degree_histogram.items())},
            "concentration": {str(k): round(v, 4) for k, v in sorted(self.concentration.items())},
        }


@profiled("topology_degree")
def analyze_topology(cm: CommMatrix, ks: tuple[int, ...] = (1, 2, 4, 8, 16)) -> TopologyStats:
    # Partner volume seen by each rank, regardless of direction.
    volume = cm.bytes_matrix + cm.bytes_matrix.T
    np.fill_diagonal(volume, 0)
    partners = volume > 0
    degrees = partners.sum(axis=1)

    hist: dict[int, int] = {}
    for d in degrees:
        hist[int(d)] = hist.get(int(d), 0) + 1

    total = float(volume.sum())
    concentration: dict[int, float] = {}
    if total > 0:
        sorted_vol = np.sort(volume, axis=1)[:, ::-1]
        for k in ks:
            concentration[k] = float(sorted_vol[:, :k].sum()) / total
    else:
        concentration = {k: 0.0 for k in ks}

    return TopologyStats(
        nranks=cm.nranks,
        degrees=degrees,
        max_degree=int(degrees.max()) if cm.nranks else 0,
        avg_degree=float(degrees.mean()) if cm.nranks else 0.0,
        degree_histogram=hist,
        concentration=concentration,
    )
