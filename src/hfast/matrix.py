"""Communication-matrix reduction.

Reduces a trace's point-to-point records into dense nranks x nranks
byte- and message-count matrices. Traffic is attributed send-side; when a
trace only records one side of an exchange (as IPM sometimes does), the
recv-derived matrix fills the gap via an elementwise max, so volume is
never double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from hfast.obs.profile import profiled
from hfast.records import RECV_CALLS, SEND_CALLS, CommRecord, RecordBatch


@dataclass
class CommMatrix:
    nranks: int
    bytes_matrix: np.ndarray  # [src, dst] payload bytes
    msg_matrix: np.ndarray  # [src, dst] message count
    time_matrix: np.ndarray | None = None  # [src, dst] transfer seconds (zeros when untimed)

    def __post_init__(self) -> None:
        if self.time_matrix is None:
            self.time_matrix = np.zeros_like(self.bytes_matrix, dtype=np.float64)

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_matrix.sum())

    @property
    def total_messages(self) -> int:
        return int(self.msg_matrix.sum())

    @property
    def total_comm_time(self) -> float:
        """Sum of per-link point-to-point transfer seconds."""
        return float(self.time_matrix.sum())

    def nonzero_links(self) -> int:
        return int(np.count_nonzero(self.bytes_matrix))

    def top_links(self, k: int = 10) -> list[tuple[int, int, int]]:
        """Heaviest (src, dst, bytes) links, descending."""
        flat = self.bytes_matrix.ravel()
        if not flat.any():
            return []
        k = min(k, int(np.count_nonzero(flat)))
        idx = np.argpartition(flat, -k)[-k:]
        idx = idx[np.argsort(flat[idx])[::-1]]
        n = self.nranks
        return [(int(i // n), int(i % n), int(flat[i])) for i in idx]

    def top_peers(self, rank: int, k: int = 5) -> list[tuple[int, int]]:
        """Heaviest (peer, bytes) partners of one rank (send + recv volume)."""
        volume = self.bytes_matrix[rank, :] + self.bytes_matrix[:, rank]
        order = np.argsort(volume)[::-1]
        return [(int(p), int(volume[p])) for p in order[:k] if volume[p] > 0]


@profiled("matrix_reduce")
def reduce_matrix(records: Iterable[CommRecord] | RecordBatch, nranks: int) -> CommMatrix:
    """Build the communication matrix from point-to-point records.

    Accepts either an iterable of :class:`CommRecord` or a columnar
    :class:`RecordBatch`. Record lists are columnarized up front so both
    representations run the same vectorized reduction (and produce the
    same float64 sums); only a multi-region record list — which
    :meth:`RecordBatch.from_records` cannot represent — falls back to the
    per-record loop.
    """
    if not isinstance(records, RecordBatch):
        recs = records if isinstance(records, list) else list(records)
        try:
            records = RecordBatch.from_records(recs)
        except ValueError:
            records = recs
    send_bytes = np.zeros((nranks, nranks), dtype=np.int64)
    send_msgs = np.zeros((nranks, nranks), dtype=np.int64)
    send_time = np.zeros((nranks, nranks), dtype=np.float64)
    recv_bytes = np.zeros((nranks, nranks), dtype=np.int64)
    recv_msgs = np.zeros((nranks, nranks), dtype=np.int64)
    recv_time = np.zeros((nranks, nranks), dtype=np.float64)
    if isinstance(records, RecordBatch):
        b = records
        active = (b.size > 0) & (b.rank != b.peer)
        moved = b.size.astype(np.int64) * b.count
        for mask, by, ms, tm, flip in (
            (b.call_mask(SEND_CALLS) & active, send_bytes, send_msgs, send_time, False),
            (b.call_mask(RECV_CALLS) & active, recv_bytes, recv_msgs, recv_time, True),
        ):
            src = b.peer[mask] if flip else b.rank[mask]
            dst = b.rank[mask] if flip else b.peer[mask]
            # bincount over flattened (src, dst) is far faster than
            # np.add.at's scattered adds on multi-million-record batches;
            # float64 accumulation is exact for the < 2^53 sums seen here.
            flat = src.astype(np.int64) * nranks + dst
            by += np.bincount(
                flat, weights=moved[mask].astype(np.float64), minlength=nranks * nranks
            ).reshape(nranks, nranks).astype(np.int64)
            ms += np.bincount(
                flat, weights=b.count[mask].astype(np.float64), minlength=nranks * nranks
            ).reshape(nranks, nranks).astype(np.int64)
            if b.has_times:
                tm += np.bincount(
                    flat, weights=b.total_time[mask], minlength=nranks * nranks
                ).reshape(nranks, nranks)
        return CommMatrix(
            nranks=nranks,
            bytes_matrix=np.maximum(send_bytes, recv_bytes),
            msg_matrix=np.maximum(send_msgs, recv_msgs),
            time_matrix=np.maximum(send_time, recv_time),
        )
    for r in records:
        if not r.is_ptp or r.size <= 0 or r.rank == r.peer:
            continue
        if r.is_send:
            send_bytes[r.rank, r.peer] += r.bytes_moved
            send_msgs[r.rank, r.peer] += r.count
            send_time[r.rank, r.peer] += r.total_time
        elif r.is_recv:
            recv_bytes[r.peer, r.rank] += r.bytes_moved
            recv_msgs[r.peer, r.rank] += r.count
            recv_time[r.peer, r.rank] += r.total_time
    return CommMatrix(
        nranks=nranks,
        bytes_matrix=np.maximum(send_bytes, recv_bytes),
        msg_matrix=np.maximum(send_msgs, recv_msgs),
        time_matrix=np.maximum(send_time, recv_time),
    )
