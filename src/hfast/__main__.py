import sys

from hfast.cli import main

sys.exit(main())
