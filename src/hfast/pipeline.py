"""Pipeline orchestration: trace -> matrix -> topology -> interconnect.

Every stage runs under an observability span; per-record message sizes
feed the IPM-style log2 histograms; each (app, nranks) cell emits one
``app_summary`` event carrying the full analysis result, which is what the
run report is rendered from. A run manifest is emitted before any work and
re-emitted with cache statistics once the run completes.
"""

from __future__ import annotations

from typing import Any

from hfast.apps import available_apps, synthesize
from hfast.cache import DEFAULT_CACHE_DIR, ReproCache
from hfast.interconnect import InterconnectConfig, evaluate_hybrid
from hfast.matrix import reduce_matrix
from hfast.obs.manifest import build_manifest
from hfast.obs.metrics import log2_bucket
from hfast.obs.profile import Observability, get_obs, using
from hfast.records import Trace
from hfast.topology import analyze_topology

DEFAULT_SCALES = (16, 64)


def discover_scales(cache: ReproCache, apps: list[str]) -> dict[str, list[int]]:
    """Per-app scales present in the cache, with a default fallback."""
    scales: dict[str, list[int]] = {app: [] for app in apps}
    for path in cache.list_entries():
        parts = path.stem.split("_")
        if len(parts) < 3 or not parts[-2].startswith("p"):
            continue
        app = "_".join(parts[:-2])
        try:
            nranks = int(parts[-2][1:])
        except ValueError:
            continue
        if app in scales and nranks not in scales[app]:
            scales[app].append(nranks)
    for app in apps:
        scales[app] = sorted(scales[app]) or list(DEFAULT_SCALES)
    return scales


def analyze_app(
    app: str,
    nranks: int,
    cache: ReproCache,
    obs: Observability,
    config: InterconnectConfig | None = None,
    overrides: dict[str, Any] | None = None,
    store: bool = True,
) -> dict[str, Any]:
    """Analyze one (app, nranks) cell and emit its app_summary event."""
    with using(obs), obs.tracer.span("analyze_app", app=app, nranks=nranks) as sp:
        trace: Trace | None = cache.load(app, nranks, overrides)
        if trace is None:
            trace = synthesize(app, nranks, overrides)
            if store:
                cache.store(trace)
        cm = reduce_matrix(trace.records, trace.nranks)
        topo = analyze_topology(cm)
        ev = evaluate_hybrid(cm, config)

        # The size-bucket table is part of the analysis result; the metric
        # observes only happen when observability is on, keeping the
        # disabled path free of per-record instrument calls.
        local_buckets: dict[int, int] = {}
        if obs.enabled:
            size_hist = obs.metrics.histogram("msg_size_bytes")
            app_hist = obs.metrics.histogram(f"msg_size_bytes.{app}")
            for rec in trace.records:
                if rec.is_send and rec.size > 0:
                    size_hist.observe(rec.size, weight=rec.count)
                    app_hist.observe(rec.size, weight=rec.count)
                    edge = log2_bucket(rec.size)
                    local_buckets[edge] = local_buckets.get(edge, 0) + rec.count
            for call, total in trace.call_totals.items():
                obs.metrics.counter(f"calls.{call}").inc(total)
            obs.metrics.counter("pipeline.bytes_total").inc(cm.total_bytes)
            obs.metrics.counter("pipeline.messages_total").inc(cm.total_messages)
            obs.metrics.counter("pipeline.apps_analyzed").inc()
        else:
            for rec in trace.records:
                if rec.is_send and rec.size > 0:
                    edge = log2_bucket(rec.size)
                    local_buckets[edge] = local_buckets.get(edge, 0) + rec.count

        top_peers = []
        for rank, _deg in sorted(
            enumerate(topo.degrees), key=lambda kv: -int(kv[1])
        )[:5]:
            peers = cm.top_peers(rank, k=1)
            if peers:
                top_peers.append(
                    {"rank": rank, "peer": peers[0][0], "bytes": peers[0][1]}
                )

        summary: dict[str, Any] = {
            "app": app,
            "nranks": nranks,
            "overrides": dict(overrides or {}),
            "call_totals": trace.call_totals,
            "total_bytes": cm.total_bytes,
            "total_messages": cm.total_messages,
            "nonzero_links": cm.nonzero_links(),
            "size_buckets": {str(k): v for k, v in sorted(local_buckets.items())},
            "top_peers": top_peers,
            "topology": topo.to_dict(),
            "interconnect": ev.to_dict(),
        }
        sp.set_attr("total_bytes", cm.total_bytes)
        sp.set_attr("max_degree", topo.max_degree)
        obs.tracer.emit_event("app_summary", summary)
        return summary


def run_pipeline(
    apps: list[str] | None = None,
    scales: dict[str, list[int]] | None = None,
    cache_dir: str = DEFAULT_CACHE_DIR,
    obs: Observability | None = None,
    config: InterconnectConfig | None = None,
    store: bool = True,
    argv: list[str] | None = None,
) -> dict[str, Any]:
    """Run the full analysis matrix; returns {manifest, results}."""
    obs = obs if obs is not None else get_obs()
    cache = ReproCache(cache_dir, readonly=not store)
    apps = list(apps) if apps else available_apps()
    scales = scales or discover_scales(cache, apps)

    manifest = build_manifest(apps, scales, argv=argv)
    obs.tracer.emit_event("manifest", manifest)

    results: list[dict[str, Any]] = []
    with obs.tracer.span("pipeline", napps=len(apps)):
        for app in apps:
            for nranks in scales.get(app, list(DEFAULT_SCALES)):
                results.append(
                    analyze_app(app, nranks, cache, obs, config=config, store=store)
                )

    manifest["cache"] = cache.stats.to_dict()
    obs.tracer.emit_event("manifest", manifest)
    return {"manifest": manifest, "results": results}
