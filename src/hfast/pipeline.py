"""Pipeline orchestration: trace -> matrix -> topology -> interconnect.

The (app, nranks) analysis matrix is partitioned into *cells*. Cells run
under one of two scheduler backends:

- ``static`` (the default) — serial execution, or a
  ``ProcessPoolExecutor`` fan-out with a fixed cell partition when
  ``workers > 1``.
- ``stealing`` — the fault-tolerant work-stealing scheduler
  (:mod:`hfast.sched`): a cost-ordered shared queue, per-cell retries
  with backoff, heartbeat-based detection of crashed/hung workers with
  re-dispatch, and a run journal enabling ``resume=<run-id>``.

Either way the merged output is deterministic — cell results, trace
events, metrics, and cache statistics are stitched back together in
cell-definition order, never completion order, so a ``--workers 4`` run
is byte-identical to a serial one (modulo wall-clock timing fields and
scheduler bookkeeping). ``--shard i/m`` selects a deterministic subset of
cells so independent hosts can split a sweep and later union their
caches.

A failing cell does not abort the sweep: its error is recorded in the run
manifest (``cells`` / ``failed_cells``) and the remaining cells still
run. Under the stealing backend a cell that succeeds on a retry is *not*
a failure — the manifest records its ``attempts`` count instead.

Every stage runs under an observability span; per-record message sizes
feed the IPM-style log2 histograms; each cell emits one ``app_summary``
event carrying the full analysis result, which is what the run report is
rendered from. A run manifest is emitted before any work and re-emitted
with per-cell timings and cache statistics once the run completes.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any

import numpy as np

from hfast.apps import DEFAULT_BACKEND, available_apps, synthesize
from hfast.cache import DEFAULT_CACHE_DIR, CacheStats, ReproCache
from hfast.interconnect import InterconnectConfig, evaluate_hybrid, evaluate_temporal
from hfast.matcher import DEFAULT_MATCHER
from hfast.matrix import reduce_matrix
from hfast.obs import stream
from hfast.obs.anomaly import AnomalyDetector
from hfast.obs.logs import get_logger
from hfast.obs.manifest import build_manifest
from hfast.obs.metrics import log2_bucket
from hfast.obs.profile import Observability, get_obs, using
from hfast.obs.slo import SloEngine, cells_for_slo
from hfast.records import SEND_CALLS, Trace
from hfast.sched.cost import CostModel
from hfast.sched.faults import inject_slow
from hfast.sched.journal import RunJournal, build_fingerprint, journal_dir_for, new_run_id
from hfast.sched.mitigate import MitigationPolicy
from hfast.sched.scheduler import SchedulerConfig, run_stealing
from hfast.timing import DEFAULT_TIMING_SEED, TimingModel
from hfast.topology import analyze_topology

DEFAULT_SCALES = (16, 64)
SCHEDULERS = ("static", "stealing")


@dataclass(frozen=True)
class Cell:
    """One (app, nranks) unit of work, with its position in the sweep."""

    app: str
    nranks: int
    index: int

    @property
    def key(self) -> str:
        return f"{self.app}_p{self.nranks}"


def build_cells(apps: list[str], scales: dict[str, list[int]]) -> list[Cell]:
    """Flatten the app x scale matrix into an ordered cell list."""
    cells: list[Cell] = []
    for app in apps:
        for nranks in scales.get(app, list(DEFAULT_SCALES)):
            cells.append(Cell(app=app, nranks=nranks, index=len(cells)))
    return cells


def shard_cells(cells: list[Cell], shard_index: int, shard_count: int) -> list[Cell]:
    """Deterministic round-robin shard: cells whose index % count == index."""
    if not 0 <= shard_index < shard_count:
        raise ValueError(f"shard index {shard_index} out of range for {shard_count} shards")
    return [c for c in cells if c.index % shard_count == shard_index]


def discover_scales(cache: ReproCache, apps: list[str]) -> dict[str, list[int]]:
    """Per-app scales present in the cache, with a default fallback."""
    scales: dict[str, list[int]] = {app: [] for app in apps}
    for path in cache.list_entries():
        parts = path.stem.split("_")
        if len(parts) < 3 or not parts[-2].startswith("p"):
            continue
        app = "_".join(parts[:-2])
        try:
            nranks = int(parts[-2][1:])
        except ValueError:
            continue
        if app in scales and nranks not in scales[app]:
            scales[app].append(nranks)
    for app in apps:
        scales[app] = sorted(scales[app]) or list(DEFAULT_SCALES)
    return scales


def _observe_sizes(
    trace: Trace, app: str, obs: Observability
) -> dict[int, int]:
    """Message-size bucket table; feeds the obs histograms when enabled.

    Uses the columnar batch when the trace has one (unique sizes only, with
    aggregated weights), so a million-record trace costs a handful of
    ``observe`` calls instead of one per record.
    """
    local_buckets: dict[int, int] = {}
    size_hist = obs.metrics.histogram("msg_size_bytes") if obs.enabled else None
    app_hist = obs.metrics.histogram(f"msg_size_bytes.{app}") if obs.enabled else None
    if trace.batch is not None:
        b = trace.batch
        mask = b.call_mask(SEND_CALLS) & (b.size > 0)
        if mask.any():
            sizes = b.size[mask]
            uniq, inv = np.unique(sizes, return_inverse=True)
            weights = np.bincount(inv, weights=b.count[mask].astype(np.float64))
            for s, w in zip(uniq.tolist(), weights.tolist()):
                w = int(w)
                edge = log2_bucket(s)
                local_buckets[edge] = local_buckets.get(edge, 0) + w
                if size_hist is not None:
                    size_hist.observe(s, weight=w)
                    app_hist.observe(s, weight=w)
        return local_buckets
    for rec in trace.records:
        if rec.is_send and rec.size > 0:
            edge = log2_bucket(rec.size)
            local_buckets[edge] = local_buckets.get(edge, 0) + rec.count
            if size_hist is not None:
                size_hist.observe(rec.size, weight=rec.count)
                app_hist.observe(rec.size, weight=rec.count)
    return local_buckets


def _observe_latencies(
    trace: Trace, app: str, obs: Observability
) -> dict[int, int]:
    """Per-call mean-latency bucket table (microseconds), log2-bucketed.

    The mean latency of an aggregated record is ``total_time / count``;
    each record contributes its ``count`` calls at that latency. Like
    :func:`_observe_sizes`, the columnar path collapses duplicate
    latencies before touching the histogram instruments.
    """
    local_buckets: dict[int, int] = {}
    lat_hist = obs.metrics.histogram("call_latency_usec") if obs.enabled else None
    app_hist = obs.metrics.histogram(f"call_latency_usec.{app}") if obs.enabled else None
    if trace.batch is not None and trace.batch.has_times:
        b = trace.batch
        mask = b.count > 0
        if mask.any():
            mean_usec = (b.total_time[mask] / b.count[mask]) * 1e6
            uniq, inv = np.unique(mean_usec, return_inverse=True)
            weights = np.bincount(inv, weights=b.count[mask].astype(np.float64))
            for v, w in zip(uniq.tolist(), weights.tolist()):
                w = int(w)
                edge = log2_bucket(v)
                local_buckets[edge] = local_buckets.get(edge, 0) + w
                if lat_hist is not None:
                    lat_hist.observe(v, weight=w)
                    app_hist.observe(v, weight=w)
        return local_buckets
    for rec in trace.records:
        if rec.count > 0 and rec.total_time > 0.0:
            v = (rec.total_time / rec.count) * 1e6
            edge = log2_bucket(v)
            local_buckets[edge] = local_buckets.get(edge, 0) + rec.count
            if lat_hist is not None:
                lat_hist.observe(v, weight=rec.count)
                app_hist.observe(v, weight=rec.count)
    return local_buckets


def _timing_summary(
    trace: Trace,
    timing_seed: int,
    overrides: dict[str, Any] | None,
    latency_buckets: dict[int, int],
) -> dict[str, Any]:
    """%comm block of an app summary: comm vs compute at the model's seed."""
    if trace.batch is not None and trace.batch.has_times:
        comm_time_s = float(np.sum(trace.batch.total_time))
    else:
        comm_time_s = math.fsum(r.total_time for r in trace.records)
    model = TimingModel(trace.app, trace.nranks, seed=timing_seed)
    compute_time_s = model.compute_time(overrides)
    comm_per_rank = comm_time_s / trace.nranks
    wall_time_s = comm_per_rank + compute_time_s
    pct_comm = 100.0 * comm_per_rank / wall_time_s if wall_time_s > 0 else 0.0
    return {
        "seed": timing_seed,
        "model": trace.timing.get("model") if trace.timing else None,
        "comm_time_s": comm_time_s,
        "compute_time_s": compute_time_s,
        "wall_time_s": wall_time_s,
        "pct_comm": round(pct_comm, 3),
        "latency_buckets": {str(k): v for k, v in sorted(latency_buckets.items())},
    }


def analyze_app(
    app: str,
    nranks: int,
    cache: ReproCache,
    obs: Observability,
    config: InterconnectConfig | None = None,
    overrides: dict[str, Any] | None = None,
    store: bool = True,
    backend: str = DEFAULT_BACKEND,
    timing_seed: int = DEFAULT_TIMING_SEED,
) -> dict[str, Any]:
    """Analyze one (app, nranks) cell and emit its app_summary event."""
    with using(obs), obs.tracer.span("analyze_app", app=app, nranks=nranks) as sp:
        trace: Trace | None = cache.load(app, nranks, overrides, timing_seed=timing_seed)
        if trace is None:
            trace = synthesize(app, nranks, overrides, backend=backend, timing_seed=timing_seed)
            if store:
                cache.store(trace)
        # Columnarize loaded record lists so warm (cache-hit) and cold runs
        # share the exact same vectorized float64 reductions.
        trace.ensure_batch()
        cm = reduce_matrix(
            trace.batch if trace.batch is not None else trace.records, trace.nranks
        )
        topo = analyze_topology(cm)
        ev = evaluate_hybrid(cm, config)
        ev_temporal = evaluate_temporal(cm, config)

        local_buckets = _observe_sizes(trace, app, obs)
        latency_buckets = _observe_latencies(trace, app, obs)
        if obs.enabled:
            for call, total in trace.call_totals.items():
                obs.metrics.counter(f"calls.{call}").inc(total)
            obs.metrics.counter("pipeline.bytes_total").inc(cm.total_bytes)
            obs.metrics.counter("pipeline.messages_total").inc(cm.total_messages)
            obs.metrics.counter("pipeline.apps_analyzed").inc()

        top_peers = []
        for rank, _deg in sorted(
            enumerate(topo.degrees), key=lambda kv: -int(kv[1])
        )[:5]:
            peers = cm.top_peers(rank, k=1)
            if peers:
                top_peers.append(
                    {"rank": rank, "peer": peers[0][0], "bytes": peers[0][1]}
                )

        summary: dict[str, Any] = {
            "app": app,
            "nranks": nranks,
            "overrides": dict(overrides or {}),
            "call_totals": trace.call_totals,
            "total_bytes": cm.total_bytes,
            "total_messages": cm.total_messages,
            "nonzero_links": cm.nonzero_links(),
            "size_buckets": {str(k): v for k, v in sorted(local_buckets.items())},
            "top_peers": top_peers,
            "topology": topo.to_dict(),
            "interconnect": ev.to_dict(),
            "interconnect_temporal": ev_temporal.to_dict(),
            "timing": _timing_summary(trace, timing_seed, overrides, latency_buckets),
        }
        sp.set_attr("total_bytes", cm.total_bytes)
        sp.set_attr("max_degree", topo.max_degree)
        obs.tracer.emit_event("app_summary", summary)
        return summary


def _execute_cell(payload: dict[str, Any]) -> dict[str, Any]:
    """Cell entry point: run one cell (in-process or in a worker process).

    Builds a private cache handle and observability buffer, so everything
    the cell produced (summary, span/app_summary events, metrics, cache
    statistics) comes back as one picklable result the parent merges
    deterministically. When the payload carries ``live=True`` and this
    process has a registered stream channel, every event is *also*
    forwarded live with trace context attached — annotated copies only,
    so the buffered events (and therefore the merged trace) are identical
    with and without streaming.
    """
    forward = stream.forward_sink_for(payload)
    obs = Observability(enabled=payload["profiled"], trace_sink=forward, keep_events=True)
    cache = ReproCache(payload["cache_dir"], readonly=not payload["store"])
    if forward is not None:
        forward.emit({"event": "cell_start"})
    t0 = time.perf_counter()
    t_start = time.time()  # absolute stamp for post-hoc gantt/attribution
    ok, summary, error = True, None, None
    try:
        inject_slow(f"{payload['app']}_p{payload['nranks']}", payload.get("attempt", 1))
        summary = analyze_app(
            payload["app"],
            payload["nranks"],
            cache,
            obs,
            config=payload["config"],
            overrides=payload.get("overrides"),
            store=payload["store"],
            backend=payload["backend"],
            timing_seed=payload.get("timing_seed", DEFAULT_TIMING_SEED),
        )
    except Exception as exc:  # surfaced per-cell, never aborts the sweep
        ok, error = False, f"{type(exc).__name__}: {exc}"
    return {
        "app": payload["app"],
        "nranks": payload["nranks"],
        "index": payload["index"],
        "ok": ok,
        "error": error,
        "summary": summary,
        "wall_s": time.perf_counter() - t0,
        "t_start": t_start,
        "t_end": time.time(),
        "pid": os.getpid(),
        "events": obs.events,
        "metrics": obs.metrics.to_dict() if obs.enabled else {},
        "cache": cache.stats.to_dict(),
    }


def _graft_cell(
    obs: Observability,
    res: dict[str, Any],
    root_id: int | None,
    span_name: str = "cell",
    extra_attrs: dict[str, Any] | None = None,
) -> None:
    """Re-emit a cell's events under a synthetic ``cell`` span.

    Every attempt's events (failed prior attempts included) are remapped
    onto the parent tracer's id space and re-rooted: a worker-side root
    span (``parent_id is None``) becomes a child of the cell span, tagged
    with its attempt number, so retries appear as sibling subtrees rather
    than duplicate roots. The cell span itself hangs off ``root_id`` (the
    run's ``pipeline`` span), making the merged trace one tree.

    Empty attempt batches (faults that fired before any span was emitted)
    graft nothing and reserve no ids, so fault-injected runs keep the
    exact span numbering of a clean run.

    ``span_name``/``extra_attrs`` let other cell-shaped workloads (the
    DSE search grafts per-candidate subtrees as ``candidate`` spans)
    reuse the same remapping; the defaults preserve the analysis
    pipeline's trace shape bit-for-bit.
    """
    if not obs.enabled:
        return
    tracer = obs.tracer
    cell_span_id = tracer.reserve_ids(1)
    batches = list(res.get("prior_attempts") or [])
    batches.append({"attempt": res.get("attempts", 1), "events": res.get("events") or []})
    for batch in batches:
        events = batch.get("events") or []
        if not events:
            continue
        max_local = max(
            (e["span_id"] for e in events if e.get("event") == "span"), default=0
        )
        # Claim max_local + 1 ids: remapped ids land on base+1..base+max_local,
        # keeping the tracer's next fresh id clear of the block.
        base = tracer.reserve_ids(max_local + 1)
        for ev in events:
            ev = dict(ev)
            kind = ev.pop("event")
            if kind == "span":
                ev["span_id"] = ev["span_id"] + base
                if ev.get("parent_id") is None:
                    ev["parent_id"] = cell_span_id
                    attrs = dict(ev.get("attrs") or {})
                    attrs["attempt"] = batch.get("attempt", 1)
                    ev["attrs"] = attrs
                else:
                    ev["parent_id"] = ev["parent_id"] + base
                ev["depth"] = ev.get("depth", 0) + 2
            else:
                # Non-span worker events (app_summary) keep a pointer to
                # their cell so the trace tree covers every event.
                ev.setdefault("parent_id", cell_span_id)
            tracer.emit_event(kind, ev)
    attrs: dict[str, Any] = {
        "app": res["app"],
        "nranks": res["nranks"],
        "attempts": res.get("attempts", 1),
        "ok": bool(res.get("ok")),
    }
    if extra_attrs:
        attrs.update(extra_attrs)
    tracer.emit_event(
        "span",
        {
            "name": span_name,
            "span_id": cell_span_id,
            "parent_id": root_id,
            "depth": 1,
            "wall_s": res.get("wall_s", 0.0),
            "peak_rss_kb": 0,
            "attrs": attrs,
        },
    )


# Public aliases: the DSE search layer dispatches candidate evaluations
# through the exact cell harness and trace graft above, so candidates
# inherit the worker/caching/retry semantics of analysis cells verbatim.
execute_cell = _execute_cell
graft_cell = _graft_cell


def _merge_cache_stats(target: CacheStats, snap: dict[str, Any]) -> None:
    target.hits += snap.get("hits", 0)
    target.misses += snap.get("misses", 0)
    target.stores += snap.get("stores", 0)
    target.validation_failures += snap.get("validation_failures", 0)
    target.entries.extend(snap.get("entries", []))


def run_pipeline(
    apps: list[str] | None = None,
    scales: dict[str, list[int]] | None = None,
    cache_dir: str = DEFAULT_CACHE_DIR,
    obs: Observability | None = None,
    config: InterconnectConfig | None = None,
    store: bool = True,
    argv: list[str] | None = None,
    workers: int = 1,
    shard: tuple[int, int] | None = None,
    backend: str = DEFAULT_BACKEND,
    timing_seed: int = DEFAULT_TIMING_SEED,
    scheduler: str = "static",
    max_retries: int = 2,
    heartbeat_timeout: float = 30.0,
    retry_backoff: float = 0.05,
    journal_dir: str | None = None,
    resume: str | None = None,
    run_id: str | None = None,
    service: dict[str, Any] | None = None,
    bench_dir: str | None = ".",
    bus: "stream.EventBus | None" = None,
    anomaly: AnomalyDetector | None = None,
    anomaly_threshold: float | None = None,
    mitigate: bool = False,
    slo: SloEngine | None = None,
    history_dir: str | None = None,
    history_source: str = "analyze",
) -> dict[str, Any]:
    """Run the analysis matrix; returns {manifest, results, anomalies, slo}.

    ``workers > 1`` fans cells out over a process pool; ``shard=(i, m)``
    restricts the run to every m-th cell starting at i. Failed cells are
    recorded in ``manifest["cells"]`` / ``manifest["failed_cells"]`` and
    excluded from ``results``.

    ``scheduler="stealing"`` switches to the fault-tolerant work-stealing
    backend: cells are pulled largest-estimated-cost-first, transient
    failures retry up to ``max_retries`` times with exponential backoff,
    crashed or hung workers (``heartbeat_timeout``) have their cells
    re-dispatched, and progress is journaled so ``resume=<run-id>``
    replays completed cells instead of re-running them. Scheduler
    bookkeeping lands in ``manifest["scheduler"]``; per-cell ``attempts``
    in ``manifest["cells"]``.

    ``bus`` turns on live telemetry: run/cell state transitions and every
    worker event (with trace context attached) are published to the bus
    as they happen. The stream is a strict side-channel — merged trace,
    metrics, manifest, and report artifacts are identical with and
    without it.

    Completed cells are scored by an online straggler/regression detector
    (``anomaly``, or a default calibrated from ``bench_dir`` and
    ``anomaly_threshold``); flagged cells are emitted as ``anomaly``
    trace events and returned under ``"anomalies"``.

    ``run_id`` pins the stealing scheduler's journal id instead of
    generating one — callers that must find the journal again after a
    crash (the serve daemon keys journals by job id) pass it here.
    ``service`` is provenance only: it lands in the manifest so a served
    artifact is traceable to its HTTP submission.

    ``mitigate=True`` (stealing backend only) closes the loop: in-flight
    cells the detector flags as ``straggler_running`` are speculatively
    re-dispatched and their app's queued siblings reprioritized. This
    changes only scheduling order and wall time — results, cache, trace
    invariants, and report content stay byte-identical to a
    non-mitigated run.

    ``slo`` evaluates the engine's objectives once the matrix completes:
    statuses are emitted as ``slo_status`` / ``slo_violation`` trace
    events, recorded as ``slo.*`` registry instruments, and returned
    under ``"slo"``. A breached spec also tightens the mitigation
    policy's straggler threshold (advisory pressure) when ``mitigate``
    is on. ``history_dir`` appends one content-addressed snapshot of the
    run (results projection + deterministic metrics) to the persistent
    telemetry history as the final step — a pure side channel that
    touches no event, metric, or artifact the run produces.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler '{scheduler}' (expected one of {SCHEDULERS})")
    if resume is not None and scheduler != "stealing":
        raise ValueError("resume requires scheduler='stealing'")
    if mitigate and scheduler != "stealing":
        raise ValueError("mitigate requires scheduler='stealing'")
    obs = obs if obs is not None else get_obs()
    cache = ReproCache(cache_dir, readonly=not store)
    apps = list(apps) if apps else available_apps()
    scales = scales or discover_scales(cache, apps)

    cells = build_cells(apps, scales)
    if shard is not None:
        cells = shard_cells(cells, shard[0], shard[1])

    sched_info: dict[str, Any] = {"backend": scheduler}
    journal: RunJournal | None = None
    if scheduler != "stealing":
        run_id = None
    if scheduler == "stealing":
        fingerprint = build_fingerprint(
            apps, scales, cache_dir, backend, timing_seed, store,
            config.to_dict() if config is not None else None, shard,
        )
        jdir = journal_dir_for(cache_dir, journal_dir)
        if resume is not None:
            journal = RunJournal.load(jdir, resume)
            journal.check_fingerprint(fingerprint)
            run_id = resume
        else:
            run_id = run_id or new_run_id()
            journal = RunJournal.create(jdir, run_id, fingerprint)
        sched_info["run_id"] = run_id
        sched_info["resumed"] = resume is not None
    elif bus is not None:
        # Live-only identity; deliberately kept out of the static manifest
        # so live mode cannot perturb the deterministic artifacts.
        run_id = new_run_id()

    matcher = config.matcher if config is not None else DEFAULT_MATCHER
    manifest = build_manifest(
        apps, scales, argv=argv, workers=workers, shard=shard, scheduler=sched_info,
        matcher=matcher, service=service,
    )
    obs.tracer.emit_event("manifest", manifest)

    # Structured logging is a pure side channel (separate file, wall-clock
    # allowed): a no-op unless configure_logging() installed a sink.
    log = get_logger(component="pipeline", run_id=run_id)
    log.info(
        "run_start", scheduler=scheduler, workers=workers,
        ncells=len(cells), apps=apps,
    )

    cost_model: CostModel | None = None
    if scheduler == "stealing" or bus is not None:
        cost_model = CostModel.from_bench_dir(bench_dir, matcher=matcher)

    detector = anomaly
    if detector is None and (obs.enabled or bus is not None):
        kwargs = {"threshold": anomaly_threshold} if anomaly_threshold else {}
        detector = AnomalyDetector.from_bench_dir(bench_dir, **kwargs)

    # The mitigation policy gets its own detector instance: it is warmed
    # in completion order on the scheduler side, while ``detector`` above
    # is warmed in deterministic cell order at merge time.
    mitigator: MitigationPolicy | None = None
    if mitigate:
        # SLO advisory pressure: a spec's mitigation_threshold can tighten
        # (never slacken) the straggler ratio the policy acts on.
        mitigation_threshold = anomaly_threshold
        slo_threshold = slo.mitigation_threshold() if slo is not None else None
        if slo_threshold is not None:
            mitigation_threshold = (
                slo_threshold
                if mitigation_threshold is None
                else min(mitigation_threshold, slo_threshold)
            )
        mitigator = MitigationPolicy.from_bench_dir(bench_dir, threshold=mitigation_threshold)

    def payload_for(cell: Cell) -> dict[str, Any]:
        return {
            "app": cell.app,
            "nranks": cell.nranks,
            "index": cell.index,
            "cache_dir": cache_dir,
            "config": config,
            "store": store,
            "backend": backend,
            "timing_seed": timing_seed,
            "profiled": obs.enabled,
            "live": bus is not None,
            "ctx": (
                {"run_id": run_id, "cell": cell.key, "index": cell.index}
                if bus is not None
                else None
            ),
        }

    def report_for(res: dict[str, Any]) -> dict[str, Any]:
        return {
            "app": res["app"],
            "nranks": res["nranks"],
            "ok": res["ok"],
            "wall_s": round(res["wall_s"], 6),
            "error": res["error"],
            "attempts": res.get("attempts", 1),
        }

    def merge_one(res: dict[str, Any]) -> None:
        _graft_cell(obs, res, root_id)
        if obs.enabled and res.get("t_start") is not None:
            # Wall-clock execution window per cell, for post-hoc scheduler
            # attribution (queue-wait/utilization/gantt). Wall-clock-derived
            # by construction, hence outside the byte-identity contract —
            # the analytics layer reads it, the report builder ignores it.
            # No "cell" key here: the live-stream tests pin that buffered
            # events are never cell-context-stamped; app+nranks identify it.
            obs.tracer.emit_event(
                "cell_timing",
                {
                    "app": res["app"],
                    "nranks": res["nranks"],
                    "index": res["index"],
                    "worker": res.get("worker"),
                    "pid": res.get("pid"),
                    "attempts": res.get("attempts", 1),
                    "ok": bool(res["ok"]),
                    "t_start": res["t_start"],
                    "t_end": res.get("t_end"),
                },
            )
        if obs.enabled:
            obs.metrics.merge_snapshot(res["metrics"])
        _merge_cache_stats(cache.stats, res["cache"])
        cell_reports.append(report_for(res))
        log.log(
            "info" if res["ok"] else "error",
            "cell_done",
            cell=f"{res['app']}_p{res['nranks']}",
            ok=bool(res["ok"]),
            attempts=res.get("attempts", 1),
            wall_s=round(res["wall_s"], 6),
            error=res["error"],
        )
        if res["summary"] is not None:
            results.append(res["summary"])
        if detector is not None:
            found = detector.observe(
                res["app"],
                res["nranks"],
                res["wall_s"],
                attempts=res.get("attempts", 1),
                ok=bool(res["ok"]),
            )
            for a in found:
                anomalies.append(a)
                obs.tracer.emit_event("anomaly", a)
                if bus is not None:
                    bus.publish({"event": "anomaly", **a})

    def merge_raw(raw: list[dict[str, Any]]) -> None:
        # Completion order is nondeterministic; merge in cell order.
        raw.sort(key=lambda r: r["index"])
        for res in raw:
            merge_one(res)

    cell_reports: list[dict[str, Any]] = []
    results: list[dict[str, Any]] = []
    anomalies: list[dict[str, Any]] = []
    root_id: int | None = None
    with obs.tracer.span(
        "pipeline", napps=len(apps), ncells=len(cells), workers=workers
    ) as pipe_sp:
        root_id = getattr(pipe_sp, "span_id", None)
        if bus is not None:
            bus.publish(
                {
                    "event": "run_start",
                    "run_id": run_id,
                    "scheduler": scheduler,
                    "workers": workers,
                    "cells": [
                        {
                            "cell": c.key,
                            "app": c.app,
                            "nranks": c.nranks,
                            "index": c.index,
                            "est": cost_model.estimate(c.app, c.nranks)
                            if cost_model is not None
                            else None,
                        }
                        for c in cells
                    ],
                }
            )
        if scheduler == "stealing":
            sched_cfg = SchedulerConfig(
                workers=max(1, workers),
                max_retries=max_retries,
                heartbeat_timeout=heartbeat_timeout,
                retry_backoff=retry_backoff,
            )
            raw, stats = run_stealing(
                cells,
                lambda cell, attempt: payload_for(cell),
                _execute_cell,
                sched_cfg,
                cost_model=cost_model,
                obs=obs,
                journal=journal,
                on_event=bus.publish if bus is not None else None,
                mitigator=mitigator,
            )
            merge_raw(list(raw))
            sched_info.update(stats)
            sched_info["backend"] = "stealing"
            sched_info["journal"] = str(journal.path) if journal is not None else None
        elif workers <= 1 or len(cells) <= 1:
            # Serial runs execute through the exact same cell harness as the
            # parallel backends, so all three produce one trace shape.
            if bus is not None:
                stream.set_worker_channel(bus.publish, worker_id=0)
            try:
                for cell in cells:
                    if bus is not None:
                        bus.publish(
                            {
                                "event": "cell_state",
                                "state": "running",
                                "cell": cell.key,
                                "worker": 0,
                                "attempt": 1,
                                "stolen": False,
                            }
                        )
                    res = _execute_cell(payload_for(cell))
                    if bus is not None:
                        bus.publish(
                            {
                                "event": "cell_state",
                                "state": "done" if res["ok"] else "failed",
                                "cell": cell.key,
                                "worker": 0,
                                "attempt": 1,
                                "wall_s": res["wall_s"],
                            }
                        )
                    merge_one(res)
            finally:
                if bus is not None:
                    stream.clear_worker_channel()
        else:
            payloads = [payload_for(cell) for cell in cells]
            n_workers = min(workers, len(cells))
            if bus is not None:
                q = mp.get_context().Queue()
                drain = stream.QueueDrain(q, bus).start()
                try:
                    with ProcessPoolExecutor(
                        max_workers=n_workers,
                        initializer=stream.pool_worker_init,
                        initargs=(q,),
                    ) as pool:
                        futures = [pool.submit(_execute_cell, p) for p in payloads]
                        raw = []
                        for fut in as_completed(futures):
                            res = fut.result()
                            raw.append(res)
                            bus.publish(
                                {
                                    "event": "cell_state",
                                    "state": "done" if res["ok"] else "failed",
                                    "cell": f"{res['app']}_p{res['nranks']}",
                                    "attempt": 1,
                                    "wall_s": res["wall_s"],
                                }
                            )
                finally:
                    drain.stop()
            else:
                with ProcessPoolExecutor(max_workers=n_workers) as pool:
                    raw = list(pool.map(_execute_cell, payloads))
            merge_raw(raw)

    manifest["cells"] = cell_reports
    manifest["failed_cells"] = [
        f"{c['app']}_p{c['nranks']}" for c in cell_reports if not c["ok"]
    ]
    manifest["cache"] = cache.stats.to_dict()
    manifest["scheduler"] = sched_info
    obs.tracer.emit_event("manifest", manifest)

    slo_statuses: list[dict[str, Any]] = []
    if slo is not None:
        slo_statuses = slo.evaluate(
            cells=cells_for_slo(cell_reports, anomalies),
            counts={
                "cells_total": len(cell_reports),
                "cells_failed": len(manifest["failed_cells"]),
            },
            metrics=obs.metrics.to_dict() if obs.enabled else {},
        )
        if obs.enabled:
            slo.record(obs.metrics, slo_statuses)
        for status in slo_statuses:
            obs.tracer.emit_event("slo_status", status)
            if status["breached"]:
                obs.tracer.emit_event(
                    "slo_violation",
                    {
                        "slo": status["slo"],
                        "burn": status["burn"],
                        "objective": status["objective"],
                        "windows": status["windows"],
                    },
                )
            if bus is not None:
                bus.publish({"event": "slo_status", **status})
            if status["breached"]:
                log.warning(
                    "slo_breached", slo=status["slo"], burn=status["burn"],
                    objective=status["objective"],
                )

    if bus is not None:
        bus.publish(
            {
                "event": "run_end",
                "run_id": run_id,
                "failed_cells": manifest["failed_cells"],
                "anomalies": len(anomalies),
            }
        )

    log.info(
        "run_done",
        cells=len(cell_reports),
        failed=len(manifest["failed_cells"]),
        anomalies=len(anomalies),
    )

    if history_dir is not None:
        # Strictly last, and a pure side channel: nothing below touches
        # events, metrics, or any artifact the run produced — analyze
        # output is byte-identical history-on vs history-off.
        from hfast.obs.history import HistoryStore, snapshot_from_run

        with HistoryStore(history_dir) as hist:
            hist.append(
                snapshot_from_run(
                    manifest,
                    results,
                    metrics_snapshot=obs.metrics.to_dict() if obs.enabled else {},
                    source=history_source,
                    anomalies=anomalies,
                    slo_statuses=slo_statuses,
                )
            )

    return {
        "manifest": manifest,
        "results": results,
        "anomalies": anomalies,
        "slo": slo_statuses,
    }
