"""Command-line interface.

Subcommands::

    python -m hfast analyze [--apps a,b] [--scales 16,64] [--profile]
                            [--workers N] [--shard i/m] [--strict]
                            [--timing-seed N] [--timesteps N] [--reconfig-cost S]
                            [--matcher {scalar,vector,incremental}]
                            [--trace-out T.jsonl] [--metrics-out M.json]
                            [--report-dir DIR] [--bench-dir DIR] ...
    python -m hfast report  --trace T.jsonl [--report-dir DIR] [--bench-dir DIR]
    python -m hfast trace   {summary,critical-path,flame,gantt,diff} TRACE ...
    python -m hfast serve   [--host H] [--port P] [--serve-dir DIR] ...
    python -m hfast search  --app A --scale N [--circuits 1,2,4] [--strategy grid] ...
    python -m hfast calibrate [--out PARAMS.json]
    python -m hfast apps    [--params PARAMS.json]
    python -m hfast obs     {history,trend,slo,tail} ...

``--profile`` turns the observability layer on; ``--trace-out`` /
``--metrics-out`` imply it. With no profiling flags, the pipeline runs
with observability disabled (the near-zero-overhead path).

``--workers N`` runs (app, scale) cells on a process pool; the merged
output is deterministic and byte-identical to a serial run. ``--shard
i/m`` selects every m-th cell starting at i, for splitting a sweep across
hosts. A failing cell is reported and skipped; the exit code is nonzero
only when every cell failed, or when any cell failed under ``--strict``.

``--scheduler stealing`` swaps the static partition for the
fault-tolerant work-stealing scheduler: cost-ordered shared queue,
``--max-retries`` per-cell retries with backoff, hung/crashed-worker
re-dispatch (``--heartbeat-timeout``), and a run journal. ``--resume
RUN_ID`` (implies the stealing backend) replays a prior run's completed
cells from the journal and executes only what is left. A cell that
succeeds on retry is not a failure: ``--strict`` only trips on cells
that exhausted their retries.

``--live`` streams telemetry while the run executes: a repainting TTY
status view (per-cell state, steal/retry counters, cost-model ETA,
flagged stragglers) that degrades to periodic log lines when stderr is
not a TTY. ``--metrics-port N`` serves Prometheus text exposition on
``http://127.0.0.1:N/metrics`` for the duration of the run (0 picks a
free port). Both imply ``--profile`` and are strict side-channels: the
merged trace/metrics/report artifacts are byte-identical with or
without them.

``--mitigate`` (implies ``--scheduler stealing``) closes the
observability loop: in-flight cells the online anomaly detector flags
as stragglers are speculatively re-dispatched to another worker (first
result wins) and their app's queued siblings are reprioritized. Like
``--live``, it only changes scheduling order and wall time — results,
cache artifacts, and report content are byte-identical either way.

``hfast trace`` analyzes any ``--trace-out`` JSONL file or scheduler
journal post-mortem: ``summary`` (critical path, stage self-times,
scheduler attribution), ``critical-path`` (``--weight cost`` is
backend-invariant), ``flame`` (folded stacks or speedscope JSON),
``gantt`` (ASCII cell timeline), and ``diff A B`` (stage/cell deltas
between two runs).

``hfast serve`` runs the analysis-as-a-service daemon: an HTTP API
(``POST /v1/jobs``) over the (app, scale, seed, timing/interconnect/
matcher config) space, with a content-addressed result cache,
single-flight dedupe of identical in-flight submissions, bounded
admission with ``429`` backpressure, Prometheus ``/metrics``, and a
graceful SIGTERM drain. Served results are byte-identical to a direct
``hfast analyze`` run of the same spec.

``hfast search`` explores the interconnect design space (circuit
counts, reconfiguration cost, matcher backend, traffic-slice
granularity) against one (app, scale) workload and reports the Pareto
frontier over (coverage, packet-fallback bytes, reconfiguration cost,
analytic evaluation cost). Candidate evaluations dispatch through the
same serial/pool/work-stealing backends as analysis cells, so searches
shard, retry, journal, and ``--resume`` — and the ``--out`` frontier
artifact is byte-identical across all of them for a fixed spec.

``hfast calibrate`` fits each app's LogGP ``compute_step_s`` against
the paper's %comm tables and writes a provenance-stamped params
artifact; ``hfast apps --params`` overlays it and shows per-app
provenance (default vs calibrated).

``hfast obs`` queries persistent telemetry post-mortem: ``history``
lists/compacts a ``--history-dir`` written by analyze runs or the serve
daemon, ``trend`` renders deterministic cross-run trend tables (and can
ingest ``benchmarks/BENCH_*.json`` perf snapshots via ``--bench``),
``slo`` evaluates burn-rate rules over the recorded runs, and ``tail``
reads structured logs across their rotation chain. ``--slo`` on analyze
evaluates the spec inline — breaches land in the trace, ``/metrics``,
and the report's SLO compliance section.
"""

from __future__ import annotations

import argparse
import json
import sys

from hfast.apps import APPS, BACKENDS, DEFAULT_BACKEND, available_apps
from hfast.cache import DEFAULT_CACHE_DIR, CacheValidationError, ReproCache
from hfast.interconnect import InterconnectConfig
from hfast.matcher import DEFAULT_MATCHER, MATCHERS
from hfast.obs import analytics
from hfast.obs.anomaly import AnomalyDetector
from hfast.obs.flame import folded_stacks, speedscope_doc
from hfast.obs.live import LiveView
from hfast.obs.profile import Observability, configure
from hfast.obs.prom import MetricsServer, render_registry
from hfast.obs.report import build_report, write_report
from hfast.obs.stream import EventBus
from hfast.obs.trace import JsonlSink
from hfast.pipeline import SCHEDULERS, discover_scales, run_pipeline
from hfast.sched.journal import JournalError
from hfast.timing import DEFAULT_TIMING_SEED

DEFAULT_REPORT_DIR = "reports"


def _csv(value: str) -> list[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def _csv_ints(value: str) -> list[int]:
    try:
        return [int(v) for v in _csv(value)]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers: {value!r}") from exc


def _csv_floats(value: str) -> list[float]:
    try:
        return [float(v) for v in _csv(value)]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers: {value!r}") from exc


def _shard(value: str) -> tuple[int, int]:
    """Parse --shard i/m (0-based shard index out of m shards)."""
    try:
        index_s, count_s = value.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected i/m (e.g. 0/2): {value!r}") from exc
    if count <= 0 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(f"shard index must satisfy 0 <= i < m: {value!r}")
    return (index, count)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hfast",
        description="Ultra-scale communication analysis for a hybrid interconnect",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="run the analysis pipeline")
    p_an.add_argument("--apps", type=_csv, default=None, help="comma-separated app list")
    p_an.add_argument(
        "--scales",
        type=_csv_ints,
        default=None,
        help="comma-separated rank counts (applied to every app; default: cached scales)",
    )
    p_an.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p_an.add_argument("--no-store", action="store_true", help="do not write cache misses back")
    p_an.add_argument("--circuits", type=int, default=4, help="circuits per node for the hybrid eval")
    p_an.add_argument(
        "--timing-seed", type=int, default=DEFAULT_TIMING_SEED,
        help="seed for the deterministic LogGP timing model",
    )
    p_an.add_argument(
        "--timesteps", type=int, default=4,
        help="traffic slices for the temporal circuit evaluator (1 = static)",
    )
    p_an.add_argument(
        "--reconfig-cost", type=float, default=1e-3,
        help="seconds charged per circuit reconfiguration in the temporal evaluator",
    )
    p_an.add_argument(
        "--matcher", choices=MATCHERS, default=DEFAULT_MATCHER,
        help="circuit-matching backend: pure-Python reference (scalar), "
             "vectorized edge arrays (vector), or step-delta re-matching in "
             "the temporal evaluator (incremental); all byte-identical",
    )
    p_an.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for parallel cell execution (default: serial)",
    )
    p_an.add_argument(
        "--shard", type=_shard, default=None, metavar="i/m",
        help="run only every m-th (app, scale) cell starting at i (0-based)",
    )
    p_an.add_argument(
        "--strict", action="store_true",
        help="exit nonzero if any cell fails (default: only if all fail)",
    )
    p_an.add_argument(
        "--scheduler", choices=SCHEDULERS, default="static",
        help="cell scheduler: fixed partition (static) or fault-tolerant work stealing",
    )
    p_an.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume a prior stealing run from its journal (implies --scheduler stealing)",
    )
    p_an.add_argument(
        "--max-retries", type=int, default=2,
        help="stealing scheduler: retries per cell after the first attempt",
    )
    p_an.add_argument(
        "--heartbeat-timeout", type=float, default=30.0,
        help="stealing scheduler: seconds of worker silence before re-dispatching its cell",
    )
    p_an.add_argument(
        "--journal-dir", default=None,
        help="stealing scheduler: run-journal directory (default: <cache-dir>/.sched_journal)",
    )
    p_an.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
        help="trace-synthesis backend (vector is the fast default)",
    )
    p_an.add_argument("--profile", action="store_true", help="enable the observability layer")
    p_an.add_argument("--trace-out", default=None, help="JSONL span/event trace path (implies --profile)")
    p_an.add_argument("--metrics-out", default=None, help="metrics JSON export path (implies --profile)")
    p_an.add_argument("--report-dir", default=None, help="write report.md + report.json here (implies --profile)")
    p_an.add_argument("--bench-dir", default=None, help="write BENCH_<sha>.json here (implies --profile)")
    p_an.add_argument(
        "--live", action="store_true",
        help="stream live run status to stderr (TTY dashboard, or periodic "
             "log lines when not a TTY; implies --profile)",
    )
    p_an.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus /metrics on 127.0.0.1:PORT during the run "
             "(0 = pick a free port; implies --profile)",
    )
    p_an.add_argument(
        "--anomaly-threshold", type=float, default=None,
        help="flag a cell as a straggler when its wall time exceeds this "
             "multiple of the cost-model expectation (default: 4.0)",
    )
    p_an.add_argument(
        "--mitigate", action="store_true",
        help="act on live straggler advisories: speculatively re-dispatch "
             "flagged cells and reprioritize their app's queued siblings "
             "(implies --scheduler stealing; results stay byte-identical)",
    )
    p_an.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="evaluate SLO burn rates after the run: 'default' or a "
             "JSON/YAML spec path (implies --profile; breaches land in the "
             "trace, /metrics, and the report's SLO compliance section)",
    )
    p_an.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="append a content-addressed run snapshot to this telemetry "
             "history directory (implies --profile; query later with "
             "`hfast obs trend`)",
    )
    p_an.add_argument(
        "--log-out", default=None, metavar="LOG.jsonl",
        help="structured JSON log (rotating) with run/cell correlation ids "
             "for the scheduler and live view",
    )

    p_rep = sub.add_parser("report", help="render a report from an existing JSONL trace")
    p_rep.add_argument("--trace", required=True, help="JSONL event trace to read")
    p_rep.add_argument("--report-dir", default=DEFAULT_REPORT_DIR)
    p_rep.add_argument("--bench-dir", default=None)

    p_tr = sub.add_parser(
        "trace", help="post-mortem analytics over a JSONL trace or run journal"
    )
    tr_sub = p_tr.add_subparsers(dest="trace_command", required=True)

    def add_trace_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("trace", help="JSONL trace file, run-journal file, or journal directory")
        p.add_argument("--strict", action="store_true",
                       help="fail on malformed interior JSONL lines instead of skipping them")

    p_sum = tr_sub.add_parser("summary", help="run overview: critical path, stages, attribution")
    add_trace_source(p_sum)
    p_sum.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p_sum.add_argument("--top", type=int, default=5, help="entries per table")

    p_cp = tr_sub.add_parser("critical-path", help="heaviest span chain through the run")
    add_trace_source(p_cp)
    p_cp.add_argument(
        "--weight", choices=analytics.CRITICAL_PATH_WEIGHTS, default="wall",
        help="edge weight: measured wall time, or the analytic cost model "
             "(deterministic across backends and machines)",
    )
    p_cp.add_argument("--per-cell", action="store_true", help="one path per cell instead of the run path")
    p_cp.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    p_fl = tr_sub.add_parser("flame", help="flamegraph export from per-span self times")
    add_trace_source(p_fl)
    p_fl.add_argument(
        "--format", choices=("folded", "speedscope"), default="folded",
        help="folded stacks for flamegraph.pl, or speedscope JSON",
    )
    p_fl.add_argument("--out", default=None, help="write here instead of stdout")

    p_ga = tr_sub.add_parser("gantt", help="ASCII timeline of cell execution windows")
    add_trace_source(p_ga)
    p_ga.add_argument("--width", type=int, default=60, help="timeline width in characters")

    p_di = tr_sub.add_parser("diff", help="stage/cell wall-time deltas between two runs")
    p_di.add_argument("trace_a", help="baseline trace (A)")
    p_di.add_argument("trace_b", help="comparison trace (B)")
    p_di.add_argument("--strict", action="store_true",
                      help="fail on malformed interior JSONL lines instead of skipping them")
    p_di.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    p_sv = sub.add_parser("serve", help="run the analysis-as-a-service HTTP daemon")
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=8348, help="0 binds an ephemeral port")
    p_sv.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p_sv.add_argument(
        "--serve-dir", default=".hfast_serve",
        help="service state root (results/, jobs/ ledger, journal/)",
    )
    p_sv.add_argument(
        "--max-running", type=int, default=2,
        help="jobs executing concurrently; more wait in the queue",
    )
    p_sv.add_argument(
        "--queue-limit", type=int, default=8,
        help="queued jobs beyond --max-running before submissions get 429",
    )
    p_sv.add_argument(
        "--workers", type=int, default=1,
        help="pipeline workers per job (passed through to run_pipeline)",
    )
    p_sv.add_argument(
        "--job-scheduler", choices=SCHEDULERS, default="stealing",
        help="scheduler each job runs under; stealing journals progress so "
             "interrupted jobs resume after a daemon restart",
    )
    p_sv.add_argument(
        "--trace-out", default=None,
        help="unified JSONL trace: every job's spans graft under a serve_job root",
    )
    p_sv.add_argument(
        "--bench-dir", default=None,
        help="BENCH_*.json directory for the jobs' cost model (default: none)",
    )
    p_sv.add_argument(
        "--no-store", action="store_true",
        help="do not write pipeline cache misses back to --cache-dir",
    )
    p_sv.add_argument(
        "--store-max-bytes", type=int, default=None, metavar="N",
        help="LRU byte budget for the result store: writes past it evict "
             "the least-recently-served artifacts (default: unbounded)",
    )
    p_sv.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="append a content-addressed snapshot per finished job to this "
             "telemetry history directory",
    )
    p_sv.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="evaluate SLO burn rates per job: 'default' or a JSON/YAML spec path",
    )
    p_sv.add_argument(
        "--heartbeat-interval", type=float, default=2.0, metavar="S",
        help="seconds between heartbeat events on /v1/events (<= 0 disables)",
    )

    p_se = sub.add_parser(
        "search", help="design-space search over the temporal interconnect evaluator"
    )
    p_se.add_argument("--app", required=True, help="application workload to evaluate against")
    p_se.add_argument("--scale", type=int, required=True, help="rank count for the workload")
    p_se.add_argument(
        "--circuits", type=_csv_ints, default=None,
        help="comma-separated circuits-per-node values to search",
    )
    p_se.add_argument(
        "--reconfig-costs", type=_csv_floats, default=None,
        help="comma-separated reconfiguration costs (seconds) to search",
    )
    p_se.add_argument(
        "--matchers", type=_csv, default=None,
        help="comma-separated matcher backends to search",
    )
    p_se.add_argument(
        "--timesteps", type=_csv_ints, default=None,
        help="comma-separated traffic-slice counts to search (1 = static)",
    )
    p_se.add_argument(
        "--strategy", choices=("grid", "evolution"), default="grid",
        help="exhaustive grid, or seeded evolutionary search over the space",
    )
    p_se.add_argument("--seed", type=int, default=0, help="search seed (sampling + mutation)")
    p_se.add_argument(
        "--population", type=int, default=8, help="evolution: candidates per generation"
    )
    p_se.add_argument("--generations", type=int, default=3, help="evolution: generation count")
    p_se.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p_se.add_argument("--no-store", action="store_true", help="do not write cache misses back")
    p_se.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
        help="trace-synthesis backend for candidate evaluations",
    )
    p_se.add_argument(
        "--timing-seed", type=int, default=DEFAULT_TIMING_SEED,
        help="seed for the deterministic LogGP timing model",
    )
    p_se.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for parallel candidate evaluation (default: serial)",
    )
    p_se.add_argument(
        "--scheduler", choices=SCHEDULERS, default="static",
        help="candidate scheduler; the frontier artifact is byte-identical either way",
    )
    p_se.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume a prior stealing search from its journal (implies --scheduler stealing)",
    )
    p_se.add_argument(
        "--max-retries", type=int, default=2,
        help="stealing scheduler: retries per candidate after the first attempt",
    )
    p_se.add_argument(
        "--heartbeat-timeout", type=float, default=30.0,
        help="stealing scheduler: seconds of worker silence before re-dispatch",
    )
    p_se.add_argument(
        "--journal-dir", default=None,
        help="stealing scheduler: run-journal directory (default: <cache-dir>/.sched_journal)",
    )
    p_se.add_argument(
        "--out", default=None, metavar="FRONTIER.json",
        help="write the canonical frontier artifact here (byte-identical "
             "across scheduler backends for a fixed spec)",
    )
    p_se.add_argument("--profile", action="store_true", help="enable the observability layer")
    p_se.add_argument(
        "--trace-out", default=None,
        help="JSONL trace: per-candidate spans graft under a dse_search root (implies --profile)",
    )
    p_se.add_argument(
        "--report-dir", default=None,
        help="write report.md + report.json (with the Design-space frontier "
             "section) here (implies --profile)",
    )
    p_se.add_argument("--bench-dir", default=None, help="BENCH_*.json directory for the cost model")
    p_se.add_argument(
        "--strict", action="store_true",
        help="exit nonzero if any candidate evaluation failed "
             "(default: only if all failed)",
    )

    p_cal = sub.add_parser(
        "calibrate", help="fit LogGP params against the paper's %%comm tables"
    )
    p_cal.add_argument(
        "--apps", type=_csv, default=None,
        help="comma-separated app list (default: every app with paper targets)",
    )
    p_cal.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p_cal.add_argument("--no-store", action="store_true", help="do not write cache misses back")
    p_cal.add_argument(
        "--timing-seed", type=int, default=DEFAULT_TIMING_SEED,
        help="seed for the deterministic LogGP timing model",
    )
    p_cal.add_argument(
        "--out", default="loggp_params.json", metavar="PARAMS.json",
        help="provenance-stamped params artifact (consumed by `hfast apps --params`)",
    )

    p_apps = sub.add_parser("apps", help="list known apps and cached traces")
    p_apps.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p_apps.add_argument(
        "--params", default=None, metavar="PARAMS.json",
        help="overlay a calibrated LogGP params artifact (from `hfast calibrate`); "
             "each app's provenance shows default vs calibrated",
    )

    p_obs = sub.add_parser(
        "obs", help="query persistent telemetry: history, cross-run trends, SLOs, logs"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_oh = obs_sub.add_parser("history", help="list or compact a telemetry history directory")
    p_oh.add_argument("history_dir", help="history directory (from --history-dir)")
    p_oh.add_argument("--compact", action="store_true",
                      help="merge + dedupe every segment into one sealed segment")
    p_oh.add_argument("--retain", type=int, default=None, metavar="N",
                      help="with --compact: keep only the newest N snapshots")
    p_oh.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p_oh.add_argument("--strict", action="store_true",
                      help="fail on malformed snapshot lines instead of skipping them")

    p_ot = obs_sub.add_parser(
        "trend", help="cross-run trend table (deterministic: a pure function of history content)"
    )
    p_ot.add_argument("history_dirs", nargs="+", help="one or more history directories")
    p_ot.add_argument("--bench", default=None, metavar="DIR",
                      help="also ingest BENCH_*.json perf snapshots from this dir or file")
    p_ot.add_argument("--app", default=None, help="restrict to one app")
    p_ot.add_argument("--scale", type=int, default=None, help="restrict to one rank count")
    p_ot.add_argument("--quantiles", default=None, metavar="METRIC",
                      help="per-snapshot p50/p99 of a deterministic histogram "
                           "(e.g. call_latency_usec) instead of the trend table")
    p_ot.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p_ot.add_argument("--strict", action="store_true",
                      help="fail on malformed snapshot lines instead of skipping them")

    p_os = obs_sub.add_parser("slo", help="evaluate SLO burn rates over recorded history")
    p_os.add_argument("history_dir", help="history directory (from --history-dir)")
    p_os.add_argument("--spec", default="default",
                      help="'default' or a JSON/YAML SLO spec path")
    p_os.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    p_os.add_argument("--strict", action="store_true",
                      help="exit nonzero when any SLO is breached")

    p_otl = obs_sub.add_parser(
        "tail", help="read a structured log or trace stream (rotated siblings included)"
    )
    p_otl.add_argument("path", help="structured log / JSONL trace path")
    p_otl.add_argument("-n", type=int, default=None, metavar="N",
                       help="only the last N records")
    p_otl.add_argument("--level", choices=("debug", "info", "warning", "error"),
                       default=None, help="only records at this level")
    p_otl.add_argument("--event", default=None, help="only records with this event name")
    return parser


def _cmd_analyze(args: argparse.Namespace, argv: list[str]) -> int:
    profiling = bool(
        args.profile or args.trace_out or args.metrics_out or args.report_dir
        or args.bench_dir or args.live or args.metrics_port is not None
        or args.slo or args.history_dir
    )
    if profiling:
        sink = JsonlSink(args.trace_out) if args.trace_out else None
        obs = Observability(enabled=True, trace_sink=sink, keep_events=True)
    else:
        obs = Observability.disabled()
    configure(obs)

    slo_engine = None
    if args.slo:
        from hfast.obs.slo import SloEngine, SloSpecError, load_slo_spec

        try:
            slo_engine = SloEngine(load_slo_spec(args.slo))
        except SloSpecError as exc:
            for err in exc.errors:
                print(f"error: {err}", file=sys.stderr)
            return 2

    if args.log_out:
        from hfast.obs.logs import configure_logging

        configure_logging(args.log_out)

    apps = args.apps or available_apps()
    unknown = [a for a in apps if a not in APPS]
    if unknown:
        print(f"error: unknown app(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    scales = None
    if args.scales:
        scales = {app: list(args.scales) for app in apps}

    config = InterconnectConfig(
        circuits_per_node=args.circuits,
        timesteps=args.timesteps,
        reconfig_cost=args.reconfig_cost,
        matcher=args.matcher,
    )
    scheduler = "stealing" if (args.resume or args.mitigate) else args.scheduler

    # Live telemetry side-channels: an event bus feeding the status view,
    # and/or a background /metrics endpoint scraping the live registry.
    bus = live_view = metrics_server = detector = None
    if args.live:
        bus = EventBus()
        kwargs = {"threshold": args.anomaly_threshold} if args.anomaly_threshold else {}
        detector = AnomalyDetector.from_bench_dir(args.bench_dir or ".", **kwargs)
        live_view = LiveView(detector=detector)
        bus.subscribe(live_view.handle)
        live_view.start()
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            lambda: render_registry(obs.metrics), port=args.metrics_port
        ).start()
        print(
            f"metrics endpoint: http://127.0.0.1:{metrics_server.port}/metrics",
            file=sys.stderr,
        )

    try:
        out = run_pipeline(
            apps=apps,
            scales=scales,
            cache_dir=args.cache_dir,
            obs=obs,
            config=config,
            store=not args.no_store,
            argv=argv,
            workers=args.workers,
            shard=args.shard,
            backend=args.backend,
            timing_seed=args.timing_seed,
            scheduler=scheduler,
            max_retries=args.max_retries,
            heartbeat_timeout=args.heartbeat_timeout,
            journal_dir=args.journal_dir,
            resume=args.resume,
            bus=bus,
            anomaly=detector,
            anomaly_threshold=args.anomaly_threshold,
            mitigate=args.mitigate,
            slo=slo_engine,
            history_dir=args.history_dir,
        )
    except CacheValidationError as exc:
        print(f"error: cache validation failed: {exc}", file=sys.stderr)
        return 1
    except JournalError as exc:
        print(f"error: cannot resume: {exc}", file=sys.stderr)
        return 1
    finally:
        if live_view is not None:
            live_view.stop()
        if metrics_server is not None:
            metrics_server.stop()
        if args.log_out:
            from hfast.obs.logs import reset_logging

            reset_logging()

    for res in out["results"]:
        ic = res["interconnect"]
        tmp = res["interconnect_temporal"]
        tim = res["timing"]
        print(
            f"{res['app']:>8s} p{res['nranks']:<4d} "
            f"bytes={res['total_bytes']:>14,d} "
            f"maxdeg={res['topology']['max_degree']:>3d} "
            f"coverage={ic['coverage']:.3f} speedup={ic['speedup']:.2f}x "
            f"tcov={tmp['coverage']:.3f} reconf={tmp['n_reconfigs']:>3d} "
            f"comm={tim['pct_comm']:.1f}%"
        )

    sched = out["manifest"].get("scheduler") or {}
    if sched.get("backend") == "stealing":
        print(
            f"scheduler: stealing run {sched.get('run_id', '?')} "
            f"(steals={sched.get('steals', 0)} retries={sched.get('retries', 0)} "
            f"redispatches={sched.get('redispatches', 0)} "
            f"replayed={sched.get('cells_from_journal', 0)})"
        )
        if sched.get("journal"):
            print(f"journal: {sched['journal']} (resume with --resume {sched.get('run_id')})")
        mit = sched.get("mitigation")
        if mit:
            print(
                f"mitigation: {mit.get('advisories', 0)} advisories, "
                f"{mit.get('speculative_dispatches', 0)} speculative dispatches "
                f"({mit.get('speculation_wins', 0)} races won), "
                f"{mit.get('reweighted_cells', 0)} cells reweighted"
            )

    if profiling:
        if args.metrics_out:
            obs.metrics.write_json(args.metrics_out)
            print(f"metrics: {args.metrics_out}")
        report_dir = args.report_dir or DEFAULT_REPORT_DIR
        report = build_report(obs.events)
        paths = write_report(report, report_dir, bench_dir=args.bench_dir)
        for kind, path in paths.items():
            print(f"{kind}: {path}")
        if args.trace_out:
            print(f"trace: {args.trace_out}")
    obs.close()

    for a in out.get("anomalies") or []:
        print(
            f"anomaly: {a['cell']} {a['kind']}: {a['wall_s']:.3f}s vs "
            f"expected {a['expected_s']:.3f}s ({a['ratio']}x)",
            file=sys.stderr,
        )

    if slo_engine is not None:
        from hfast.obs.slo import render_slo_lines

        for line in render_slo_lines(out.get("slo") or []):
            print(line, file=sys.stderr)
    if args.history_dir:
        print(f"history: {args.history_dir}", file=sys.stderr)

    cells = out["manifest"].get("cells") or []
    failed = [c for c in cells if not c["ok"]]
    # A retry that succeeded is informational, never an error: the cell's
    # result is in the output and --strict must not trip on it.
    for c in cells:
        if c["ok"] and c.get("attempts", 1) > 1:
            print(
                f"note: cell {c['app']}_p{c['nranks']} succeeded after "
                f"{c['attempts']} attempts",
                file=sys.stderr,
            )
    for c in failed:
        print(f"error: cell {c['app']}_p{c['nranks']} failed: {c['error']}", file=sys.stderr)
    if failed and (args.strict or len(failed) == len(cells)):
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    # Tolerant loader: a trace truncated mid-line (crashed run) still
    # renders a report from everything that made it to disk.
    try:
        events = analytics.load_events(args.trace)
    except analytics.TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = build_report(events)
    paths = write_report(report, args.report_dir, bench_dir=args.bench_dir)
    for kind, path in paths.items():
        print(f"{kind}: {path}")
    return 0


def _load_tree(source: str, strict: bool) -> "analytics.TraceTree":
    tree = analytics.TraceTree.load(source, strict=strict)
    if tree.empty:
        raise analytics.TraceError(f"{source}: no span events in trace")
    return tree


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        if args.trace_command == "summary":
            tree = _load_tree(args.trace, args.strict)
            doc = analytics.summarize(tree, top=args.top)
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
                return 0
            print(
                f"{doc['cells']} cells / {doc['spans']} spans, "
                f"total wall {doc['total_wall_s']:.3f}s"
                + (f", scheduler {doc['scheduler']}" if doc.get("scheduler") else "")
            )
            if doc["failed_cells"]:
                print(f"failed cells: {', '.join(doc['failed_cells'])}")
            if doc["anomalies"]:
                counts = ", ".join(f"{k}={v}" for k, v in sorted(doc["anomalies"].items()))
                print(f"anomalies: {counts}")
            print("\ncritical path:")
            for e in doc["critical_path"]:
                print(f"  {'  ' * e['depth']}{e['label']}  {e['wall_s']:.4f}s")
            print("\ntop stages by self time:")
            for st in doc["stages"]:
                print(
                    f"  {st['stage']:<24s} x{st['calls']:<4d} "
                    f"self {st['self_s']:.4f}s ({st['pct_self']:.1f}%)"
                )
            attr = doc.get("attribution")
            if attr:
                util = f"{attr['utilization']:.0%}" if attr["utilization"] is not None else "n/a"
                print(
                    f"\nscheduler attribution: {len(attr['lanes'])} lane(s), "
                    f"utilization {util}, queue-wait share {attr['queue_wait_share']:.0%}, "
                    f"retry-exec {attr['total_retry_exec_s']:.3f}s"
                )
            return 0
        if args.trace_command == "critical-path":
            tree = _load_tree(args.trace, args.strict)
            if args.per_cell:
                paths = analytics.cell_critical_paths(tree, weight=args.weight)
                if args.json:
                    print(json.dumps(paths, indent=2, sort_keys=True))
                    return 0
                for cell, path in paths.items():
                    print(f"{cell}:")
                    for e in path:
                        print(f"  {'  ' * e['depth']}{e['label']}  weight={e['weight']:.4f}")
                return 0
            path = analytics.critical_path(tree, weight=args.weight)
            if args.json:
                print(json.dumps(path, indent=2, sort_keys=True))
                return 0
            for e in path:
                flag = f"  ERROR: {e['error']}" if e.get("error") else ""
                print(
                    f"{'  ' * e['depth']}{e['label']}  "
                    f"weight={e['weight']:.4f} wall={e['wall_s']:.4f}s{flag}"
                )
            return 0
        if args.trace_command == "flame":
            tree = _load_tree(args.trace, args.strict)
            if args.format == "speedscope":
                text = json.dumps(speedscope_doc(tree), indent=2, sort_keys=True) + "\n"
            else:
                text = folded_stacks(tree)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text)
                print(f"flame: {args.out}", file=sys.stderr)
            else:
                sys.stdout.write(text)
            return 0
        if args.trace_command == "gantt":
            tree = _load_tree(args.trace, args.strict)
            print(analytics.render_gantt(tree, width=args.width))
            return 0
        if args.trace_command == "diff":
            tree_a = _load_tree(args.trace_a, args.strict)
            tree_b = _load_tree(args.trace_b, args.strict)
            doc = analytics.diff_traces(tree_a, tree_b)
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
                return 0
            delta = doc["wall_delta_pct"]
            print(
                f"total wall: {doc['a_wall_s']:.3f}s -> {doc['b_wall_s']:.3f}s"
                + (f" ({delta:+.1f}%)" if delta is not None else "")
            )
            if doc["a_critical_path"] != doc["b_critical_path"]:
                print("critical path changed:")
                print(f"  A: {' > '.join(doc['a_critical_path'])}")
                print(f"  B: {' > '.join(doc['b_critical_path'])}")
            print("\nper-cell wall deltas:")
            for c in doc["cells"]:
                a = f"{c['a_wall_s']:.4f}" if c["a_wall_s"] is not None else "-"
                b = f"{c['b_wall_s']:.4f}" if c["b_wall_s"] is not None else "-"
                d = f" ({c['delta_pct']:+.1f}%)" if c["delta_pct"] is not None else ""
                print(f"  {c['cell']:<16s} {a} -> {b}{d}")
            return 0
    except analytics.TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    # Lazy import: the serve package pulls in asyncio machinery no other
    # subcommand needs.
    from hfast.serve.daemon import ServeConfig, run_serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        serve_dir=args.serve_dir,
        max_running=args.max_running,
        queue_limit=args.queue_limit,
        workers=args.workers,
        scheduler=args.job_scheduler,
        trace_out=args.trace_out,
        store=not args.no_store,
        bench_dir=args.bench_dir,
        store_max_bytes=args.store_max_bytes,
        history_dir=args.history_dir,
        slo_spec=args.slo,
        heartbeat_interval=args.heartbeat_interval,
    )
    return run_serve(config)


def _cmd_search(args: argparse.Namespace, argv: list[str]) -> int:
    # Lazy import: the DSE package is only needed by this subcommand.
    from hfast.dse.search import SearchSpec, SearchSpecError, frontier_bytes, run_search
    from hfast.dse.space import SearchSpace, SpaceValidationError

    profiling = bool(args.profile or args.trace_out or args.report_dir or args.bench_dir)
    if profiling:
        sink = JsonlSink(args.trace_out) if args.trace_out else None
        obs = Observability(enabled=True, trace_sink=sink, keep_events=True)
    else:
        obs = Observability.disabled()
    configure(obs)

    space_kwargs = {}
    if args.circuits is not None:
        space_kwargs["circuits"] = tuple(args.circuits)
    if args.reconfig_costs is not None:
        space_kwargs["reconfig_costs"] = tuple(args.reconfig_costs)
    if args.matchers is not None:
        space_kwargs["matchers"] = tuple(args.matchers)
    if args.timesteps is not None:
        space_kwargs["timesteps"] = tuple(args.timesteps)
    try:
        spec = SearchSpec(
            app=args.app,
            nranks=args.scale,
            space=SearchSpace(**space_kwargs),
            strategy=args.strategy,
            seed=args.seed,
            population=args.population,
            generations=args.generations,
            backend=args.backend,
            timing_seed=args.timing_seed,
        )
    except (SpaceValidationError, SearchSpecError) as exc:
        for err in exc.errors:
            print(f"error: {err}", file=sys.stderr)
        return 2

    scheduler = "stealing" if args.resume else args.scheduler
    try:
        out = run_search(
            spec,
            cache_dir=args.cache_dir,
            obs=obs,
            store=not args.no_store,
            argv=argv,
            workers=args.workers,
            scheduler=scheduler,
            max_retries=args.max_retries,
            heartbeat_timeout=args.heartbeat_timeout,
            journal_dir=args.journal_dir,
            resume=args.resume,
            bench_dir=args.bench_dir or ".",
        )
    except CacheValidationError as exc:
        print(f"error: cache validation failed: {exc}", file=sys.stderr)
        return 1
    except JournalError as exc:
        print(f"error: cannot resume: {exc}", file=sys.stderr)
        return 1

    frontier = out["frontier"]
    print(
        f"search {frontier['search_key'][:12]}: {spec.app} p{spec.nranks} "
        f"{spec.strategy} seed={spec.seed} -> "
        f"{frontier['evaluated']} evaluated, {len(frontier['frontier'])} on frontier, "
        f"{frontier['dominated']} dominated, {len(frontier['failed'])} failed"
    )
    for p in frontier["frontier"]:
        cand, objs = p["candidate"], p["objectives"]
        print(
            f"  {p['id']} circuits={cand['circuits_per_node']:<3d} "
            f"reconfig={cand['reconfig_cost']:<8g} matcher={cand['matcher']:<11s} "
            f"steps={cand['timesteps']:<3d} "
            f"coverage={objs['coverage']:.3f} packet={objs['packet_bytes']:,d}B "
            f"reconf_s={objs['reconfig_s']:g} cost={objs['eval_cost']:.1f}"
        )
    sched = out["sched"] or {}
    if sched.get("backend") == "stealing":
        print(
            f"scheduler: stealing run {sched.get('run_id', '?')} "
            f"(steals={sched.get('steals', 0)} retries={sched.get('retries', 0)} "
            f"replayed={sched.get('cells_from_journal', 0)})"
        )
        if sched.get("journal"):
            print(f"journal: {sched['journal']} (resume with --resume {sched.get('run_id')})")

    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(frontier_bytes(frontier))
        print(f"frontier: {args.out}")

    if profiling:
        report_dir = args.report_dir or DEFAULT_REPORT_DIR
        report = build_report(obs.events)
        paths = write_report(report, report_dir, bench_dir=args.bench_dir)
        for kind, path in paths.items():
            print(f"{kind}: {path}")
        if args.trace_out:
            print(f"trace: {args.trace_out}")
    obs.close()

    failed = frontier["failed"]
    for f in failed:
        print(f"error: candidate {f['id']} failed: {f['error']}", file=sys.stderr)
    if failed and (args.strict or frontier["evaluated"] == 0):
        return 1
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from hfast.dse.calibrate import calibrate, write_artifact

    try:
        doc = calibrate(
            apps=args.apps,
            cache_dir=args.cache_dir,
            timing_seed=args.timing_seed,
            store=not args.no_store,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for app in sorted(doc["residuals"]):
        for scale, res in sorted(doc["residuals"][app].items(), key=lambda kv: int(kv[0])):
            print(
                f"{app:>8s} p{scale:<5s} target={res['target_pct']:5.1f}% "
                f"fitted={res['fitted_pct']:6.2f}% (default was {res['default_pct']:.2f}%)"
            )
    path = write_artifact(doc, args.out)
    print(f"params: {path}")
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    from hfast.timing import (
        ParamsArtifactError,
        activate_params,
        active_params,
        deactivate_params,
        load_params_artifact,
        params_provenance,
    )

    if args.params:
        try:
            activate_params(load_params_artifact(args.params), args.params)
        except ParamsArtifactError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        cache = ReproCache(args.cache_dir, readonly=True)
        scales = discover_scales(cache, available_apps())
        listing = {
            app: {
                "description": APPS[app].description,
                "cached_scales": scales[app],
                # Per-app LogGP timing params with their provenance:
                # "default" (built-in APP_PARAMS) or "calibrated:<artifact>"
                # when --params overlays a `hfast calibrate` fit.
                "loggp": {
                    **active_params(app).to_dict(),
                    "provenance": params_provenance(app),
                },
            }
            for app in available_apps()
        }
        print(json.dumps(listing, indent=2))
    finally:
        if args.params:
            deactivate_params()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    # Lazy imports: post-mortem queries need none of the pipeline.
    from hfast.obs import history as hist

    if args.obs_command == "history":
        if args.compact:
            stats = hist.compact(args.history_dir, retain=args.retain, strict=args.strict)
            if args.json:
                print(json.dumps(stats, indent=2, sort_keys=True))
            else:
                print(
                    f"compacted {stats['segments_before']} segment(s) -> "
                    f"{stats['segments_after']}: {stats['snapshots']} snapshot(s) kept, "
                    f"{stats['dropped']} dropped"
                )
            return 0
        try:
            snapshots = hist.read_history(args.history_dir, strict=args.strict)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(snapshots, indent=2, sort_keys=True))
            return 0
        for snap in snapshots:
            meta = snap.get("meta") or {}
            rows = len((snap.get("data") or {}).get("results") or [])
            ts = meta.get("timestamp")
            print(
                f"{snap['key'][:12]}  {snap.get('kind', '?'):<8s} "
                f"{str(meta.get('source') or '-'):<8s} rows={rows:<3d} "
                f"ts={ts if ts is not None else '-'}"
            )
        print(f"{len(snapshots)} snapshot(s)")
        return 0

    if args.obs_command == "trend":
        snapshots: list[dict] = []
        try:
            for d in args.history_dirs:
                snapshots.extend(hist.read_history(d, strict=args.strict))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.bench:
            snapshots.extend(hist.load_bench_snapshots(args.bench))
        if args.quantiles:
            rows = hist.trend_quantiles(snapshots, args.quantiles)
            if args.json:
                print(json.dumps(rows, indent=2, sort_keys=True))
                return 0
            for r in rows:
                qs = " ".join(
                    f"{k}={r[k]:g}" for k in sorted(r) if k.startswith("p") and r[k] is not None
                )
                print(f"{r['key']}  n={r['count']:<8d} {qs}")
            return 0
        rows = hist.trend_rows(snapshots, app=args.app, nranks=args.scale)
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
            return 0
        sys.stdout.write(hist.render_trend(rows))
        return 0

    if args.obs_command == "slo":
        from hfast.obs.slo import SloEngine, SloSpecError, load_slo_spec, render_slo_lines

        try:
            engine = SloEngine(load_slo_spec(args.spec))
        except SloSpecError as exc:
            for err in exc.errors:
                print(f"error: {err}", file=sys.stderr)
            return 2
        snapshots = hist.read_history(args.history_dir, kinds=("run",))
        statuses = engine.evaluate_runs(snapshots)
        if args.json:
            print(json.dumps(statuses, indent=2, sort_keys=True))
        else:
            for line in render_slo_lines(statuses):
                print(line)
        if args.strict and any(s.get("breached") for s in statuses):
            return 1
        return 0

    if args.obs_command == "tail":
        from hfast.obs.logs import read_log_records

        try:
            records = read_log_records(args.path, level=args.level)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.event:
            records = [r for r in records if r.get("event") == args.event]
        if args.n is not None:
            records = records[-max(0, args.n):]
        for rec in records:
            print(json.dumps(rec, sort_keys=True))
        return 0

    return 2


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    if args.command == "analyze":
        return _cmd_analyze(args, argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "search":
        return _cmd_search(args, argv)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "apps":
        return _cmd_apps(args)
    if args.command == "obs":
        return _cmd_obs(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
