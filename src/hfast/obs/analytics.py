"""Post-mortem analytics over the unified JSONL trace tree.

PR 5 made every run emit one span tree (serial, pool, and stealing
backends all produce the same shape); this module is the analysis layer
the paper's methodology actually needs on top of it:

- :func:`load_events` — tolerant loader for ``--trace-out`` files and
  scheduler run journals (a directory picks the newest journal). A
  truncated final line — exactly what a crash mid-write leaves behind —
  is warned about and skipped, never fatal.
- :class:`TraceTree` — spans linked into a tree, plus the non-span
  events (manifest, ``cell_timing``, anomalies) analytics cares about.
  Orphaned spans (their parent never made it to disk) are promoted to
  roots rather than dropped.
- :func:`critical_path` — the heaviest root-to-leaf chain. Weighted by
  wall time by default; ``weight="cost"`` uses the scheduler's analytic
  cost model instead, which is a pure function of the tree shape — the
  same trace shape yields the same path on every backend and every
  machine.
- :func:`stage_rollup` — per-stage calls / total / *self* time (wall
  minus child walls), the flamegraph's ground truth.
- :func:`attribution` — scheduler attribution from ``cell_timing``
  events: queue-wait vs execute vs retry time per cell, worker lanes,
  and a busy-lane utilization timeline.
- :func:`render_gantt` / :func:`diff_traces` / :func:`summarize` — the
  renderers behind ``hfast trace gantt|diff|summary``.

Everything here is read-only over an existing trace; nothing feeds back
into the determinism contract.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from hfast.sched.cost import estimate_cell_cost

CRITICAL_PATH_WEIGHTS = ("wall", "cost")


class TraceError(ValueError):
    """A trace source could not be loaded or holds no usable events."""


def _warn_stderr(msg: str) -> None:
    print(f"warning: {msg}", file=sys.stderr)


def load_events(
    source: str | Path,
    strict: bool = False,
    warn: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """Load trace events from a JSONL trace, a run journal, or a journal dir.

    A directory resolves to its newest ``*.jsonl`` file. Journal files
    (first record ``kind == "run"``) are reconstructed into the merged
    event shape a live run would have produced, via the same grafting
    code the pipeline uses.

    A rotated sink (``JsonlSink(max_bytes=...)``) leaves a chain of
    siblings — ``<trace>.2``, ``<trace>.1``, ``<trace>`` — which is read
    back oldest-first so the merged event order survives rollover.

    Tolerance contract: a truncated *final* line (crash mid-write, e.g.
    under fault injection) is always skipped with a warning. Other
    malformed lines are skipped with a warning unless ``strict=True``.
    """
    warn = warn or _warn_stderr
    path = Path(source)
    if path.is_dir():
        candidates = sorted(path.glob("*.jsonl"), key=lambda p: (p.stat().st_mtime, p.name))
        if not candidates:
            raise TraceError(f"{path}: no .jsonl trace or journal files in directory")
        path = candidates[-1]
    if not path.is_file():
        raise TraceError(f"{path}: no such trace file")

    # Imported lazily (see events_from_journal) to avoid an import cycle.
    from hfast.obs.logs import rotated_paths

    parts = [Path(p) for p in rotated_paths(path)] or [path]
    records: list[dict[str, Any]] = []
    for part_no, part in enumerate(parts, start=1):
        try:
            lines = part.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise TraceError(f"{part}: {exc}") from exc
        is_last_part = part_no == len(parts)
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                rec = json.loads(stripped)
                if not isinstance(rec, dict):
                    raise json.JSONDecodeError("not an object", stripped, 0)
            except json.JSONDecodeError as exc:
                if is_last_part and lineno == len(lines):
                    warn(f"{part}:{lineno}: ignoring truncated final line")
                    continue
                if strict:
                    raise TraceError(f"{part}:{lineno}: malformed JSONL line: {exc}") from exc
                warn(f"{part}:{lineno}: skipping malformed line")
                continue
            records.append(rec)

    if records and records[0].get("kind") == "run":
        return events_from_journal(records)
    return records


def events_from_journal(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Reconstruct merged trace events from run-journal records.

    Replays each journaled cell result through the pipeline's own graft
    logic under a synthetic ``pipeline`` root, so journal-derived trees
    have the exact shape of a live trace (run-level wall times are not
    recorded in journals and come back as ~0).
    """
    # Imported lazily: pipeline imports the obs package, and this module
    # is re-exported from it — a top-level import would be circular.
    from hfast.obs.profile import Observability
    from hfast.pipeline import _graft_cell

    completed: dict[int, dict[str, Any]] = {}
    for rec in records:
        if rec.get("kind") == "cell_done" and isinstance(rec.get("result"), dict):
            completed[int(rec["index"])] = rec
    obs = Observability(enabled=True)
    with obs.tracer.span("pipeline", ncells=len(completed)) as sp:
        root_id = sp.span_id
    for index in sorted(completed):
        rec = completed[index]
        res = dict(rec["result"])
        res.setdefault("attempts", int(rec.get("attempts", 1)))
        _graft_cell(obs, res, root_id)
        if res.get("t_start") is not None:
            obs.tracer.emit_event(
                "cell_timing",
                {
                    "app": res.get("app"),
                    "nranks": res.get("nranks"),
                    "index": res.get("index"),
                    "worker": res.get("worker"),
                    "pid": res.get("pid"),
                    "attempts": res.get("attempts", 1),
                    "ok": bool(res.get("ok")),
                    "t_start": res["t_start"],
                    "t_end": res.get("t_end"),
                },
            )
    return obs.events


@dataclass
class SpanNode:
    """One span event, linked into the trace tree."""

    span_id: int
    name: str
    parent_id: int | None
    depth: int
    wall_s: float
    attrs: dict[str, Any]
    error: str | None = None
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def label(self) -> str:
        """Display name with the cell identity attached when present."""
        app, nranks = self.attrs.get("app"), self.attrs.get("nranks")
        if app is not None and nranks is not None:
            return f"{self.name}[{app}_p{nranks}]"
        return self.name

    @property
    def self_s(self) -> float:
        """Wall time not accounted for by child spans (clamped at 0)."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))


class TraceTree:
    """Span events linked into a tree, plus the sidecar events."""

    def __init__(self, events: list[dict[str, Any]], warn: Callable[[str], None] | None = None):
        warn = warn or _warn_stderr
        self.events = events
        self.nodes: dict[int, SpanNode] = {}
        self.roots: list[SpanNode] = []
        self.manifest: dict[str, Any] | None = None
        self.cell_timings: list[dict[str, Any]] = []
        self.anomalies: list[dict[str, Any]] = []
        self.sched_tasks: list[dict[str, Any]] = []

        for ev in events:
            kind = ev.get("event")
            if kind == "span":
                try:
                    node = SpanNode(
                        span_id=int(ev["span_id"]),
                        name=str(ev.get("name", "?")),
                        parent_id=ev.get("parent_id"),
                        depth=int(ev.get("depth", 0)),
                        wall_s=float(ev.get("wall_s", 0.0)),
                        attrs=dict(ev.get("attrs") or {}),
                        error=ev.get("error"),
                    )
                except (KeyError, TypeError, ValueError):
                    warn("skipping malformed span event")
                    continue
                if node.span_id in self.nodes:
                    warn(f"duplicate span id {node.span_id}; keeping the first")
                    continue
                self.nodes[node.span_id] = node
            elif kind == "manifest":
                # The final manifest re-emit carries cells; last one wins.
                self.manifest = ev
            elif kind == "cell_timing":
                self.cell_timings.append(ev)
            elif kind == "anomaly":
                self.anomalies.append(ev)
            elif kind == "sched_task":
                self.sched_tasks.append(ev)

        for node in self.nodes.values():
            parent = self.nodes.get(node.parent_id) if node.parent_id is not None else None
            if parent is None:
                if node.parent_id is not None:
                    warn(f"span {node.span_id} has dangling parent {node.parent_id}; treating as root")
                self.roots.append(node)
            else:
                parent.children.append(node)
        # Emission order interleaves subtrees (children are flushed before
        # their parent); span ids are the deterministic tree order.
        for node in self.nodes.values():
            node.children.sort(key=lambda n: n.span_id)
        self.roots.sort(key=lambda n: n.span_id)

    @classmethod
    def load(cls, source: str | Path, strict: bool = False,
             warn: Callable[[str], None] | None = None) -> "TraceTree":
        return cls(load_events(source, strict=strict, warn=warn), warn=warn)

    @property
    def empty(self) -> bool:
        return not self.nodes

    @property
    def root(self) -> SpanNode | None:
        """The run root: the ``pipeline`` span when present, else the heaviest root."""
        if not self.roots:
            return None
        for node in self.roots:
            if node.name == "pipeline":
                return node
        return max(self.roots, key=lambda n: (n.wall_s, -n.span_id))

    def walk(self) -> list[SpanNode]:
        """All nodes, depth-first from the roots, children in span-id order."""
        out: list[SpanNode] = []
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def cells(self) -> list[SpanNode]:
        return [n for n in self.walk() if n.name == "cell"]


# ---------------------------------------------------------------------------
# Critical path


def _cost_weight(node: SpanNode) -> float:
    app, nranks = node.attrs.get("app"), node.attrs.get("nranks")
    if app is None or nranks is None:
        return 0.0
    try:
        return estimate_cell_cost(str(app), int(nranks))
    except (TypeError, ValueError):
        return 0.0


def critical_path(
    tree: TraceTree, weight: str = "wall", start: SpanNode | None = None
) -> list[dict[str, Any]]:
    """The heaviest chain of spans from the run root down to a leaf.

    ``weight="wall"`` descends into the child with the largest wall time
    — the true critical path for this run. ``weight="cost"`` descends by
    the analytic cost model over each subtree's (app, nranks) attrs: a
    pure function of the tree shape, so traces with the same shape (all
    backends of the same sweep) yield the same path with the same
    weights. Ties break to the lowest span id, which is deterministic
    because the merged trace numbers spans in cell order.
    """
    if weight not in CRITICAL_PATH_WEIGHTS:
        raise ValueError(f"unknown weight '{weight}' (expected one of {CRITICAL_PATH_WEIGHTS})")
    node = start if start is not None else tree.root
    if node is None:
        return []

    if weight == "cost":
        subtree_cost: dict[int, float] = {}
        for n in reversed(tree.walk()):  # children before parents
            subtree_cost[n.span_id] = max(
                _cost_weight(n),
                max((subtree_cost[c.span_id] for c in n.children), default=0.0),
            )

    path: list[dict[str, Any]] = []
    while node is not None:
        w = subtree_cost[node.span_id] if weight == "cost" else node.wall_s
        path.append(
            {
                "label": node.label,
                "name": node.name,
                "span_id": node.span_id,
                "depth": node.depth,
                "wall_s": round(node.wall_s, 6),
                "self_s": round(node.self_s, 6),
                "weight": round(w, 6),
                "error": node.error,
            }
        )
        if not node.children:
            break
        if weight == "cost":
            node = min(node.children, key=lambda c: (-subtree_cost[c.span_id], c.span_id))
        else:
            node = min(node.children, key=lambda c: (-c.wall_s, c.span_id))
    return path


def cell_critical_paths(tree: TraceTree, weight: str = "wall") -> dict[str, list[dict[str, Any]]]:
    """Per-cell critical path, keyed by ``{app}_p{nranks}``."""
    out: dict[str, list[dict[str, Any]]] = {}
    for cell in tree.cells():
        app, nranks = cell.attrs.get("app"), cell.attrs.get("nranks")
        key = f"{app}_p{nranks}" if app is not None else f"cell_{cell.span_id}"
        out[key] = critical_path(tree, weight=weight, start=cell)
    return out


# ---------------------------------------------------------------------------
# Self-time rollup


def stage_rollup(tree: TraceTree) -> list[dict[str, Any]]:
    """Per-stage calls / total wall / self wall, heaviest self-time first.

    Total counts each span's full wall (so nested stages overlap); self
    time partitions the run wall exactly, which is what a flamegraph and
    a "where did the time go" table need.
    """
    calls: dict[str, int] = {}
    total: dict[str, float] = {}
    self_t: dict[str, float] = {}
    for node in tree.walk():
        calls[node.name] = calls.get(node.name, 0) + 1
        total[node.name] = total.get(node.name, 0.0) + node.wall_s
        self_t[node.name] = self_t.get(node.name, 0.0) + node.self_s
    # Journal-derived trees hang real cells under a synthetic ~0-wall
    # root; fall back to the self-time sum so percentages stay sane.
    run_wall = tree.root.wall_s if tree.root is not None else 0.0
    run_wall = max(run_wall, sum(self_t.values()))
    rows = [
        {
            "stage": name,
            "calls": calls[name],
            "total_s": round(total[name], 6),
            "self_s": round(self_t[name], 6),
            "pct_self": round(100.0 * self_t[name] / run_wall, 2) if run_wall > 0 else 0.0,
        }
        for name in calls
    ]
    rows.sort(key=lambda r: (-r["self_s"], r["stage"]))
    return rows


# ---------------------------------------------------------------------------
# Scheduler attribution (cell_timing events)


def _lane(ct: dict[str, Any]) -> str:
    if ct.get("worker") is not None:
        return f"w{ct['worker']}"
    if ct.get("pid") is not None:
        return f"pid{ct['pid']}"
    return "w0"


def attribution(tree: TraceTree, buckets: int = 20) -> dict[str, Any] | None:
    """Queue-wait / execute / retry attribution plus lane utilization.

    Built from the run's ``cell_timing`` events (absolute start/end
    stamps recorded per cell at merge time). Returns ``None`` on traces
    that predate those events.
    """
    cts = [
        ct for ct in tree.cell_timings
        if isinstance(ct.get("t_start"), (int, float)) and isinstance(ct.get("t_end"), (int, float))
    ]
    if not cts:
        return None
    t0 = min(ct["t_start"] for ct in cts)
    t_end = max(ct["t_end"] for ct in cts)
    span_s = max(0.0, t_end - t0)

    # Failed earlier attempts of a retried cell: execution time that was
    # spent but produced nothing (the sched_task events carry per-attempt
    # walls; the final attempt's wall is the cell's own).
    retry_exec: dict[str, float] = {}
    for ev in tree.sched_tasks:
        if not ev.get("ok"):
            key = ev.get("cell", "?")
            retry_exec[key] = retry_exec.get(key, 0.0) + float(ev.get("wall_s", 0.0))

    def cell_key(ct: dict[str, Any]) -> str:
        return f"{ct.get('app')}_p{ct.get('nranks')}"

    cells = []
    for ct in sorted(cts, key=lambda c: (c["t_start"], cell_key(c))):
        start = ct["t_start"] - t0
        wall = max(0.0, ct["t_end"] - ct["t_start"])
        key = cell_key(ct)
        cells.append(
            {
                "cell": key,
                "lane": _lane(ct),
                "start_s": round(start, 6),
                "wall_s": round(wall, 6),
                "queue_wait_s": round(start, 6),
                "retry_exec_s": round(retry_exec.get(key, 0.0), 6),
                "attempts": ct.get("attempts", 1),
                "ok": ct.get("ok", True),
            }
        )

    lanes = sorted({c["lane"] for c in cells})
    total_exec = sum(c["wall_s"] for c in cells)
    total_wait = sum(c["queue_wait_s"] for c in cells)
    total_retry = sum(retry_exec.values())
    utilization = total_exec / (len(lanes) * span_s) if span_s > 0 and lanes else None

    timeline = []
    if span_s > 0:
        width = span_s / buckets
        for i in range(buckets):
            lo, hi = t0 + i * width, t0 + (i + 1) * width
            busy = sum(1 for ct in cts if ct["t_start"] < hi and ct["t_end"] > lo)
            timeline.append(busy)

    denom = total_wait + total_exec
    return {
        "lanes": lanes,
        "span_s": round(span_s, 6),
        "total_execute_s": round(total_exec, 6),
        "total_queue_wait_s": round(total_wait, 6),
        "total_retry_exec_s": round(total_retry, 6),
        "queue_wait_share": round(total_wait / denom, 4) if denom > 0 else 0.0,
        "utilization": round(utilization, 4) if utilization is not None else None,
        "busy_timeline": timeline,
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# Renderers


def render_gantt(tree: TraceTree, width: int = 60) -> str:
    """ASCII gantt of cell execution windows, one row per cell."""
    attr = attribution(tree)
    if attr is None or not attr["cells"]:
        return "no cell_timing events in this trace (pre-analytics run?)"
    span = attr["span_s"] or 1.0
    name_w = max(len(c["cell"]) for c in attr["cells"])
    lane_w = max(len(c["lane"]) for c in attr["cells"])
    lines = [
        f"{len(attr['cells'])} cells over {attr['span_s']:.3f}s on "
        f"{len(attr['lanes'])} lane(s); utilization "
        + (f"{attr['utilization']:.0%}" if attr["utilization"] is not None else "n/a")
    ]
    for c in attr["cells"]:
        off = int(round(width * c["start_s"] / span))
        length = max(1, int(round(width * c["wall_s"] / span)))
        off = min(off, width - 1)
        length = min(length, width - off)
        bar = " " * off + ("#" if c["ok"] else "!") * length
        mark = "" if c["ok"] else "  FAILED"
        retry = f" r{c['attempts']}" if c.get("attempts", 1) > 1 else ""
        lines.append(
            f"{c['cell']:<{name_w}} {c['lane']:<{lane_w}} "
            f"|{bar:<{width}}| {c['wall_s']:.3f}s{retry}{mark}"
        )
    return "\n".join(lines)


def diff_traces(tree_a: TraceTree, tree_b: TraceTree) -> dict[str, Any]:
    """Stage and cell wall-time deltas between two traces (A = baseline)."""

    def pct(a: float, b: float) -> float | None:
        return round(100.0 * (b - a) / a, 1) if a > 0 else None

    roll_a = {r["stage"]: r for r in stage_rollup(tree_a)}
    roll_b = {r["stage"]: r for r in stage_rollup(tree_b)}
    stages = []
    for name in sorted(set(roll_a) | set(roll_b)):
        a, b = roll_a.get(name), roll_b.get(name)
        stages.append(
            {
                "stage": name,
                "a_total_s": a["total_s"] if a else None,
                "b_total_s": b["total_s"] if b else None,
                "a_calls": a["calls"] if a else 0,
                "b_calls": b["calls"] if b else 0,
                "delta_pct": pct(a["total_s"], b["total_s"]) if a and b else None,
            }
        )

    def cell_walls(tree: TraceTree) -> dict[str, float]:
        return {
            f"{n.attrs.get('app')}_p{n.attrs.get('nranks')}": n.wall_s for n in tree.cells()
        }

    walls_a, walls_b = cell_walls(tree_a), cell_walls(tree_b)
    cells = []
    for key in sorted(set(walls_a) | set(walls_b)):
        a_w, b_w = walls_a.get(key), walls_b.get(key)
        cells.append(
            {
                "cell": key,
                "a_wall_s": round(a_w, 6) if a_w is not None else None,
                "b_wall_s": round(b_w, 6) if b_w is not None else None,
                "delta_pct": pct(a_w, b_w) if a_w is not None and b_w is not None else None,
            }
        )

    root_a = tree_a.root.wall_s if tree_a.root else 0.0
    root_b = tree_b.root.wall_s if tree_b.root else 0.0
    return {
        "a_wall_s": round(root_a, 6),
        "b_wall_s": round(root_b, 6),
        "wall_delta_pct": pct(root_a, root_b),
        "stages": stages,
        "cells": cells,
        "a_critical_path": [e["label"] for e in critical_path(tree_a)],
        "b_critical_path": [e["label"] for e in critical_path(tree_b)],
    }


def summarize(tree: TraceTree, top: int = 5) -> dict[str, Any]:
    """The ``hfast trace summary`` document (also feeds the run report)."""
    man = tree.manifest or {}
    sched = man.get("scheduler") or {}
    by_kind: dict[str, int] = {}
    for a in tree.anomalies:
        by_kind[a.get("kind", "?")] = by_kind.get(a.get("kind", "?"), 0) + 1
    return {
        "spans": len(tree.nodes),
        "cells": len(tree.cells()),
        "failed_cells": list(man.get("failed_cells") or []),
        "scheduler": sched.get("backend"),
        "workers": man.get("workers"),
        "total_wall_s": max(
            round(tree.root.wall_s, 6) if tree.root else 0.0,
            round(sum(n.self_s for n in tree.walk()), 6),
        ),
        "critical_path": critical_path(tree)[:top],
        "stages": stage_rollup(tree)[:top],
        "attribution": attribution(tree),
        "anomalies": by_kind,
    }
