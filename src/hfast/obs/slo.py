"""Declarative SLO engine with multi-window burn-rate evaluation.

An SLO spec (JSON always; YAML when a ``yaml`` module happens to be
installed) declares objectives over the signals the observability stack
already produces — straggler-free cell execution (the anomaly
detector's verdicts), cell success counters, LogGP latency histograms,
serve queue depth — and the engine scores each objective with the
SRE-style multi-window burn-rate rule:

    burn = (bad fraction over window) / (1 - objective)

An SLO is **breached** only when *every* window exceeds its burn limit
— the fast window catches cliffs, the slow window filters blips, and
both must agree before anyone is paged. Violations surface everywhere
the run is observable: ``slo_status`` / ``slo_violation`` trace events,
``hfast_slo_*`` Prometheus series (:func:`hfast.obs.prom.render_slo_prometheus`),
stderr advisories, and the report's "SLO compliance" section. A breach
can also feed ``--mitigate`` as advisory pressure
(:meth:`SloEngine.mitigation_threshold` tightens the straggler
threshold).

Determinism: on a clean run every SLI here is a pure function of the
analyzed work (burn 0 everywhere), so ``--slo`` artifacts stay
byte-identical across backends. Under fault injection the ``cell_wall``
SLI follows the anomaly detector's verdicts, which are wall-derived and
sit outside the byte-identity contract — same precedent as the
``anomaly`` events themselves.

SLI kinds::

    {"kind": "cell_wall"}                          # bad = straggler-flagged cells
    {"kind": "ratio", "bad": NAME, "total": NAME}  # context count or counter metric
    {"kind": "latency", "metric": NAME,            # histogram: bad = fraction of
     "threshold": EDGE}                            #   observations above threshold
    {"kind": "gauge", "metric": NAME, "max": V}    # bad = 1.0 while over the cap

Windows: ``{"name", "last": N, "max_burn": B}`` — ``last`` bounds the
window to the most recent N units (cells in-run, runs for history
evaluation; 0 = everything).
"""

from __future__ import annotations

import json
import math
import os
from typing import Any

DEFAULT_OBJECTIVE = 0.99

#: Built-in spec (``--slo default``): straggler-free cells with a
#: fast/slow window pair, no failed cells, and p-latency on the LogGP
#: call-latency histogram.
DEFAULT_SPEC: dict[str, Any] = {
    "version": 1,
    "mitigation_threshold": 2.5,
    "slos": [
        {
            "name": "cell-wall",
            "objective": 0.99,
            "sli": {"kind": "cell_wall"},
            "windows": [
                {"name": "fast", "last": 4, "max_burn": 14.0},
                {"name": "slow", "last": 16, "max_burn": 6.0},
            ],
        },
        {
            "name": "cell-success",
            "objective": 0.999,
            "sli": {"kind": "ratio", "bad": "cells_failed", "total": "cells_total"},
            "windows": [{"name": "run", "last": 0, "max_burn": 1.0}],
        },
        {
            "name": "call-latency",
            "objective": 0.95,
            "sli": {"kind": "latency", "metric": "call_latency_usec", "threshold": 65536},
            "windows": [{"name": "run", "last": 0, "max_burn": 1.0}],
        },
    ],
}

SLI_KINDS = ("cell_wall", "ratio", "latency", "gauge")


class SloSpecError(ValueError):
    """An SLO spec failed validation; ``errors`` lists every problem."""

    def __init__(self, errors: list[str]):
        super().__init__("; ".join(errors))
        self.errors = errors


def load_slo_spec(source: str | os.PathLike | dict[str, Any] | None) -> dict[str, Any]:
    """Load + validate an SLO spec.

    ``None`` or the string ``"default"`` selects the built-in spec.
    JSON is always supported; ``.yaml``/``.yml`` files work when a
    ``yaml`` module is importable (it is not a dependency).
    """
    if source is None or source == "default":
        return validate_spec(DEFAULT_SPEC)
    if isinstance(source, dict):
        return validate_spec(source)
    path = os.fspath(source)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise SloSpecError([f"cannot read SLO spec {path}: {exc}"]) from exc
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml  # type: ignore[import-not-found]
        except ImportError as exc:
            raise SloSpecError(
                [f"{path}: YAML specs need a yaml module (not installed); use JSON"]
            ) from exc
        doc = yaml.safe_load(text)
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SloSpecError([f"{path}: invalid JSON: {exc}"]) from exc
    if not isinstance(doc, dict):
        raise SloSpecError([f"{path}: SLO spec must be an object"])
    return validate_spec(doc)


def validate_spec(doc: dict[str, Any]) -> dict[str, Any]:
    """All-errors validation (matches the jobspec/space validators' style)."""
    errors: list[str] = []
    slos = doc.get("slos")
    if not isinstance(slos, list) or not slos:
        raise SloSpecError(["spec.slos must be a non-empty list"])
    seen: set[str] = set()
    for i, slo in enumerate(slos):
        where = f"slos[{i}]"
        if not isinstance(slo, dict):
            errors.append(f"{where}: must be an object")
            continue
        name = slo.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing name")
        elif name in seen:
            errors.append(f"{where}: duplicate name {name!r}")
        else:
            seen.add(name)
        objective = slo.get("objective", DEFAULT_OBJECTIVE)
        if not isinstance(objective, (int, float)) or not 0.0 < objective < 1.0:
            errors.append(f"{where}: objective must be in (0, 1), got {objective!r}")
        sli = slo.get("sli")
        if not isinstance(sli, dict) or sli.get("kind") not in SLI_KINDS:
            errors.append(f"{where}: sli.kind must be one of {SLI_KINDS}")
        else:
            kind = sli["kind"]
            if kind == "ratio" and not (sli.get("bad") and sli.get("total")):
                errors.append(f"{where}: ratio sli needs 'bad' and 'total' names")
            if kind == "latency" and not (sli.get("metric") and sli.get("threshold") is not None):
                errors.append(f"{where}: latency sli needs 'metric' and 'threshold'")
            if kind == "gauge" and not (sli.get("metric") and sli.get("max") is not None):
                errors.append(f"{where}: gauge sli needs 'metric' and 'max'")
        windows = slo.get("windows") or [{"name": "run", "last": 0, "max_burn": 1.0}]
        if not isinstance(windows, list) or not windows:
            errors.append(f"{where}: windows must be a non-empty list")
            windows = []
        for j, win in enumerate(windows):
            if not isinstance(win, dict):
                errors.append(f"{where}.windows[{j}]: must be an object")
                continue
            if not isinstance(win.get("last", 0), int) or win.get("last", 0) < 0:
                errors.append(f"{where}.windows[{j}]: last must be a non-negative int")
            mb = win.get("max_burn")
            if not isinstance(mb, (int, float)) or mb <= 0:
                errors.append(f"{where}.windows[{j}]: max_burn must be > 0")
    mt = doc.get("mitigation_threshold")
    if mt is not None and (not isinstance(mt, (int, float)) or mt <= 1.0):
        errors.append("mitigation_threshold must be > 1.0 (a wall/expected ratio)")
    if errors:
        raise SloSpecError(errors)
    return doc


def _round(v: float) -> float:
    return round(float(v), 6)


class SloEngine:
    """Evaluates one validated spec against run or history observations."""

    def __init__(self, spec: dict[str, Any] | None = None):
        self.spec = validate_spec(spec if spec is not None else DEFAULT_SPEC)

    @property
    def names(self) -> list[str]:
        return [s["name"] for s in self.spec["slos"]]

    def mitigation_threshold(self) -> float | None:
        """Straggler-ratio threshold the spec advises ``--mitigate`` to use.

        Advisory pressure only: the pipeline takes the *minimum* of this
        and the user's ``--anomaly-threshold``, so a spec can tighten
        mitigation but never slacken an explicit request.
        """
        return self.spec.get("mitigation_threshold")

    # -- in-run evaluation -------------------------------------------------

    def evaluate(
        self,
        cells: list[dict[str, Any]] | None = None,
        counts: dict[str, int | float] | None = None,
        metrics: dict[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        """Score every SLO; returns one status doc per SLO.

        ``cells`` is the deterministic-order cell list (each with
        ``cell``/``ok``/``straggler``); ``counts`` are scalar context
        counts (``cells_failed``, serve queue depths, ...); ``metrics``
        is a registry ``to_dict()`` snapshot. All optional — an SLI with
        no data evaluates to burn 0 with ``n == 0``.
        """
        cells = cells or []
        counts = counts or {}
        metrics = metrics or {}
        return [
            self._evaluate_one(slo, cells, counts, metrics) for slo in self.spec["slos"]
        ]

    def _evaluate_one(
        self,
        slo: dict[str, Any],
        cells: list[dict[str, Any]],
        counts: dict[str, int | float],
        metrics: dict[str, Any],
    ) -> dict[str, Any]:
        sli = slo["sli"]
        objective = float(slo.get("objective", DEFAULT_OBJECTIVE))
        budget = 1.0 - objective
        windows_out = []
        worst_burn = 0.0
        breached_all = True
        for win in slo.get("windows") or [{"name": "run", "last": 0, "max_burn": 1.0}]:
            bad, total = self._window_units(sli, cells, counts, metrics, int(win.get("last", 0)))
            bad_frac = (bad / total) if total else 0.0
            burn = bad_frac / budget if budget else math.inf
            max_burn = float(win["max_burn"])
            breached = total > 0 and burn >= max_burn
            breached_all = breached_all and breached
            worst_burn = max(worst_burn, burn)
            windows_out.append(
                {
                    "name": win.get("name", "run"),
                    "last": int(win.get("last", 0)),
                    "n": total,
                    "bad": bad,
                    "burn": _round(burn),
                    "max_burn": max_burn,
                    "breached": breached,
                }
            )
        breached = breached_all and bool(windows_out)
        return {
            "slo": slo["name"],
            "kind": sli["kind"],
            "objective": objective,
            "burn": _round(worst_burn),
            "budget_remaining": _round(max(0.0, 1.0 - worst_burn)),
            "breached": breached,
            "windows": windows_out,
        }

    def _window_units(
        self,
        sli: dict[str, Any],
        cells: list[dict[str, Any]],
        counts: dict[str, int | float],
        metrics: dict[str, Any],
        last: int,
    ) -> tuple[float, float]:
        """(bad, total) units inside one window."""
        kind = sli["kind"]
        if kind == "cell_wall":
            window = cells[-last:] if last else cells
            bad = sum(1 for c in window if c.get("straggler"))
            return float(bad), float(len(window))
        if kind == "ratio":
            bad = self._scalar(sli["bad"], counts, metrics)
            total = self._scalar(sli["total"], counts, metrics)
            return float(bad or 0), float(total or 0)
        if kind == "latency":
            hist = metrics.get(sli["metric"])
            if not isinstance(hist, dict) or hist.get("type") != "histogram":
                return 0.0, 0.0
            threshold = float(sli["threshold"])
            total = float(hist.get("count") or 0)
            good = 0.0
            for edge, cnt in (hist.get("buckets") or {}).items():
                if float(int(edge)) <= threshold:
                    good += cnt
            return max(0.0, total - good), total
        if kind == "gauge":
            value = self._scalar(sli["metric"], counts, metrics)
            if value is None:
                return 0.0, 0.0
            return (1.0 if float(value) > float(sli["max"]) else 0.0), 1.0
        return 0.0, 0.0

    @staticmethod
    def _scalar(
        name: str, counts: dict[str, int | float], metrics: dict[str, Any]
    ) -> float | None:
        if name in counts:
            return float(counts[name])
        inst = metrics.get(name)
        if isinstance(inst, dict) and "value" in inst:
            return float(inst["value"])
        return None

    # -- cross-run (history) evaluation ------------------------------------

    def evaluate_runs(self, snapshots: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Score the spec over history snapshots, one unit per recorded run.

        Windows slide over *runs* ordered oldest-first by
        ``meta.timestamp`` (ties broken by key): ``cell_wall`` counts
        straggler-flagged cells, ``ratio`` re-resolves its counts from
        each run's meta, ``latency`` folds the windows' histograms
        together. This is the post-mortem half of the engine — it runs
        on any history dir, long after the producing processes exited.
        """
        runs = [s for s in snapshots if s.get("kind") == "run"]

        def order(s: dict[str, Any]) -> tuple[float, str]:
            t = (s.get("meta") or {}).get("timestamp")
            return (float(t) if isinstance(t, (int, float)) else -math.inf, s["key"])

        runs.sort(key=order)
        statuses = []
        for slo in self.spec["slos"]:
            sli = slo["sli"]
            objective = float(slo.get("objective", DEFAULT_OBJECTIVE))
            budget = 1.0 - objective
            windows_out = []
            worst = 0.0
            breached_all = True
            for win in slo.get("windows") or [{"name": "run", "last": 0, "max_burn": 1.0}]:
                last = int(win.get("last", 0))
                window = runs[-last:] if last else runs
                bad = total = 0.0
                for snap in window:
                    meta = snap.get("meta") or {}
                    if sli["kind"] == "cell_wall":
                        bad += len(meta.get("stragglers") or [])
                        total += float(meta.get("cells_total") or 0)
                    elif sli["kind"] == "ratio":
                        bad += float(meta.get(sli["bad"]) or 0)
                        total += float(meta.get(sli["total"]) or 0)
                    elif sli["kind"] == "latency":
                        hist = ((snap.get("data") or {}).get("metrics") or {}).get(sli["metric"])
                        if isinstance(hist, dict) and hist.get("type") == "histogram":
                            t = float(hist.get("count") or 0)
                            good = sum(
                                cnt
                                for edge, cnt in (hist.get("buckets") or {}).items()
                                if float(int(edge)) <= float(sli["threshold"])
                            )
                            bad += max(0.0, t - good)
                            total += t
                bad_frac = (bad / total) if total else 0.0
                burn = bad_frac / budget if budget else math.inf
                breached = total > 0 and burn >= float(win["max_burn"])
                breached_all = breached_all and breached
                worst = max(worst, burn)
                windows_out.append(
                    {
                        "name": win.get("name", "run"),
                        "last": last,
                        "n": total,
                        "bad": bad,
                        "burn": _round(burn),
                        "max_burn": float(win["max_burn"]),
                        "breached": breached,
                    }
                )
            statuses.append(
                {
                    "slo": slo["name"],
                    "kind": sli["kind"],
                    "objective": objective,
                    "burn": _round(worst),
                    "budget_remaining": _round(max(0.0, 1.0 - worst)),
                    "breached": breached_all and bool(windows_out),
                    "windows": windows_out,
                    "runs": len(runs),
                }
            )
        return statuses

    # -- emission ----------------------------------------------------------

    def record(self, registry: Any, statuses: list[dict[str, Any]]) -> None:
        """Fold statuses into a metrics registry as ``slo.*`` instruments.

        These land in the volatile namespace (excluded from history's
        deterministic families) and export to Prometheus both via the
        generic renderer and the labeled ``hfast_slo_*`` families.
        """
        for status in statuses:
            name = status["slo"]
            registry.gauge(f"slo.{name}.burn_rate").set(status["burn"])
            registry.gauge(f"slo.{name}.breached").set(1 if status["breached"] else 0)
            registry.gauge(f"slo.{name}.budget_remaining").set(status["budget_remaining"])
            if status["breached"]:
                registry.counter("slo.violations_total").inc()


def cells_for_slo(
    cell_reports: list[dict[str, Any]], anomalies: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Adapt pipeline cell reports + anomaly records to the SLI cell shape."""
    stragglers = {
        a.get("cell") for a in anomalies if a.get("kind") == "straggler" and a.get("cell")
    }
    return [
        {
            "cell": f"{c.get('app')}_p{c.get('nranks')}",
            "ok": bool(c.get("ok", True)),
            "straggler": f"{c.get('app')}_p{c.get('nranks')}" in stragglers,
        }
        for c in cell_reports
    ]


def render_slo_lines(statuses: list[dict[str, Any]]) -> list[str]:
    """Human-readable one-line-per-SLO summary (stderr advisories, CLI)."""
    lines = []
    for s in statuses:
        windows = ", ".join(
            f"{w['name']}[{w['last'] or 'all'}] burn={w['burn']:g}/{w['max_burn']:g}"
            for w in s.get("windows") or []
        )
        state = "BREACHED" if s["breached"] else "ok"
        lines.append(
            f"slo: {s['slo']} ({s['kind']}, objective {s['objective']:g}) {state} "
            f"burn={s['burn']:g} budget={s['budget_remaining']:g} [{windows}]"
        )
    return lines
