"""Prometheus text exposition for the metrics registry.

Renders a :class:`~hfast.obs.metrics.MetricsRegistry` in the Prometheus
text format (version 0.0.4): ``# TYPE`` comment lines, cumulative
``_bucket{le="..."}`` series ending in ``+Inf``, ``_sum``/``_count``
series. The registry's log2 histogram buckets map directly onto ``le``
edges — bucket counts just need cumulation since the registry stores
per-bucket (non-cumulative) counts. ``min``/``max`` have no native
Prometheus histogram series, so they export as companion gauges.

:class:`MetricsServer` serves ``/metrics`` from a daemon thread during a
run (``--metrics-port``). It scrapes a *live* registry that worker merges
mutate concurrently, so rendering retries on dictionary-changed-size
races rather than locking the hot path.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from hfast.obs.metrics import MetricsRegistry

PROM_PREFIX = "hfast_"
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    """Sanitize a registry metric name into a legal Prometheus name."""
    sane = _NAME_BAD.sub("_", name)
    if sane and sane[0].isdigit():
        sane = "_" + sane
    return PROM_PREFIX + sane


def _fmt(value: Any) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _labelblock(labels: dict[str, str]) -> str:
    inner = ",".join(f'{k}="{escape_label_value(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a registry ``to_dict()`` snapshot as Prometheus text."""
    lines: list[str] = []
    for name, d in sorted(snapshot.items()):
        kind = d.get("type")
        pname = prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_fmt(d['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(d['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for edge, cnt in sorted(
                ((int(e), c) for e, c in (d.get("buckets") or {}).items())
            ):
                cumulative += cnt
                lines.append(f'{pname}_bucket{{le="{_fmt(float(edge))}"}} {cumulative}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {d["count"]}')
            lines.append(f"{pname}_sum {_fmt(float(d['sum']))}")
            lines.append(f"{pname}_count {d['count']}")
            for agg in ("min", "max"):
                if d.get(agg) is not None:
                    lines.append(f"# TYPE {pname}_{agg} gauge")
                    lines.append(f"{pname}_{agg} {_fmt(float(d[agg]))}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_registry(registry: MetricsRegistry) -> str:
    """Render a live registry, retrying if a concurrent merge mutates it."""
    for _ in range(8):
        try:
            return render_prometheus(registry.to_dict())
        except RuntimeError:  # dict changed size during iteration
            continue
    return render_prometheus(dict(registry.to_dict()))


def render_registries(*registries: MetricsRegistry) -> str:
    """One exposition document over several live registries.

    The serve daemon keeps its service counters (admission, dedupe,
    cache hits) in one registry and the cumulative per-job pipeline
    metrics in another; a scrape must see both. Later registries win on
    name collisions — after :func:`prom_name` sanitization two distinct
    raw names can land on the same exposition name, and one series per
    name is a format invariant. Snapshots are taken with the same
    concurrent-mutation retry as :func:`render_registry`.
    """
    merged: dict[str, Any] = {}
    for registry in registries:
        for _ in range(8):
            try:
                merged.update(registry.to_dict())
                break
            except RuntimeError:  # dict changed size during iteration
                continue
        else:
            merged.update(dict(registry.to_dict()))
    return render_prometheus(merged)


# ---------------------------------------------------------------------------
# SLO series: labeled gauge families over the engine's status docs.


def render_slo_prometheus(statuses: list[dict[str, Any]]) -> str:
    """Render SLO engine statuses as labeled ``hfast_slo_*`` families.

    Per-window burn rates carry ``{slo, window}`` labels; breach state
    and remaining error budget carry ``{slo}``. Label values pass
    through :func:`escape_label_value`, so SLO names are unrestricted.
    """
    if not statuses:
        return ""
    lines: list[str] = []
    lines.append(f"# TYPE {PROM_PREFIX}slo_burn_rate gauge")
    for s in sorted(statuses, key=lambda s: str(s.get("slo"))):
        for w in s.get("windows") or []:
            block = _labelblock({"slo": str(s["slo"]), "window": str(w.get("name", "run"))})
            lines.append(f"{PROM_PREFIX}slo_burn_rate{block} {_fmt(float(w['burn']))}")
    lines.append(f"# TYPE {PROM_PREFIX}slo_breached gauge")
    for s in sorted(statuses, key=lambda s: str(s.get("slo"))):
        block = _labelblock({"slo": str(s["slo"])})
        lines.append(f"{PROM_PREFIX}slo_breached{block} {1 if s.get('breached') else 0}")
    lines.append(f"# TYPE {PROM_PREFIX}slo_error_budget_remaining gauge")
    for s in sorted(statuses, key=lambda s: str(s.get("slo"))):
        block = _labelblock({"slo": str(s["slo"])})
        lines.append(
            f"{PROM_PREFIX}slo_error_budget_remaining{block} "
            f"{_fmt(float(s.get('budget_remaining', 0.0)))}"
        )
    return "\n".join(lines) + "\n"


def slo_prometheus_projection(statuses: list[dict[str, Any]]) -> dict[str, Any]:
    """What :func:`parse_prometheus` should see after a render round-trip."""
    if not statuses:
        return {}
    burn: dict[str, float] = {}
    breached: dict[str, float] = {}
    budget: dict[str, float] = {}
    for s in statuses:
        sblock = _labelblock({"slo": str(s["slo"])})
        breached[sblock] = 1.0 if s.get("breached") else 0.0
        budget[sblock] = float(s.get("budget_remaining", 0.0))
        for w in s.get("windows") or []:
            block = _labelblock({"slo": str(s["slo"]), "window": str(w.get("name", "run"))})
            burn[block] = float(w["burn"])
    return {
        f"{PROM_PREFIX}slo_burn_rate": {"type": "gauge", "samples": burn},
        f"{PROM_PREFIX}slo_breached": {"type": "gauge", "samples": breached},
        f"{PROM_PREFIX}slo_error_budget_remaining": {"type": "gauge", "samples": budget},
    }


# ---------------------------------------------------------------------------
# Parse side: enough of the exposition format to round-trip our own output.

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse exposition text back into ``{name: {type, ...}}`` structures.

    Supports exactly the subset the renderers emit; used by tests and
    the CI smoke scrape to prove the exposition is well-formed and
    lossless for counters/gauges, histogram count/sum/buckets, and the
    labeled SLO families (label values unescape per the format, so a
    ``slo="a\\"b"`` sample parses back to its original name). Unlabeled
    counters/gauges parse to ``{"type", "value"}``; labeled families to
    ``{"type", "samples": {canonical-labelblock: value}}``.
    """
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$', line)
        if not m:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name, labelblock, value = m.groups()
        labels: dict[str, str] = {}
        if labelblock:
            for lm in _LABEL_RE.finditer(labelblock):
                labels[lm.group(1)] = _unescape_label_value(lm.group(2))
        samples.setdefault(name, []).append((labels, float(value)))

    out: dict[str, Any] = {}
    for name, kind in types.items():
        if kind in ("counter", "gauge"):
            series = samples.get(name, [])
            if not series:
                continue
            if len(series) == 1 and not series[0][0]:
                out[name] = {"type": kind, "value": series[0][1]}
            else:
                out[name] = {
                    "type": kind,
                    "samples": {_labelblock(labels): value for labels, value in series},
                }
        elif kind == "histogram":
            buckets: dict[str, int] = {}
            prev = 0
            for labels, value in samples.get(name + "_bucket", []):
                le = labels.get("le", "")
                if le == "+Inf":
                    continue
                count = int(value) - prev
                prev = int(value)
                if count:
                    buckets[str(int(float(le)))] = count
            out[name] = {
                "type": "histogram",
                "count": int(samples[name + "_count"][0][1]),
                "sum": samples[name + "_sum"][0][1],
                "buckets": buckets,
            }
    return out


def prometheus_projection(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Project a registry snapshot onto what the exposition can carry.

    Prometheus names are sanitized and values are floats; min/max/mean
    live outside the histogram proper. Comparing
    ``parse_prometheus(render_prometheus(s)) == prometheus_projection(s)``
    is the round-trip contract.
    """
    out: dict[str, Any] = {}
    for name, d in snapshot.items():
        kind = d.get("type")
        pname = prom_name(name)
        if kind in ("counter", "gauge"):
            out[pname] = {"type": kind, "value": float(d["value"])}
        elif kind == "histogram":
            out[pname] = {
                "type": "histogram",
                "count": int(d["count"]),
                "sum": float(d["sum"]),
                "buckets": {
                    str(int(e)): int(c)
                    for e, c in (d.get("buckets") or {}).items()
                    if int(c)
                },
            }
            # min/max export as companion gauges, so they parse back as such.
            for agg in ("min", "max"):
                if d.get(agg) is not None:
                    out[f"{pname}_{agg}"] = {"type": "gauge", "value": float(d[agg])}
    return out


# ---------------------------------------------------------------------------
# /metrics HTTP server


class MetricsServer:
    """Background ``/metrics`` endpoint for scrape-during-run telemetry.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as :attr:`port` after :meth:`start`. The handler calls
    ``render_fn`` per scrape, so it always reflects the current registry.
    """

    def __init__(
        self,
        render_fn: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._render = render_fn
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.port: int | None = None

    def start(self) -> "MetricsServer":
        render = self._render

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = render().encode("utf-8")
                except Exception:
                    self.send_error(500)
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not pollute the run's stdout/stderr

        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="hfast-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"
