"""Live telemetry streaming: event bus + cross-process trace forwarding.

The deterministic observability pipeline buffers every worker event and
merges it in cell order *after* a cell completes — perfect for
reproducible artifacts, useless for watching a 4K-rank cell grind or a
worker hang. This module adds the missing live path as a strict
side-channel:

- :class:`EventBus` — parent-side fan-out of telemetry events to any
  number of subscribers (the ``--live`` status view, tests, future
  exporters). Subscriber exceptions are swallowed and counted; a broken
  consumer can never perturb the run.
- **Worker channels** — a process-local registration
  (:func:`set_worker_channel`) that cell execution picks up to forward
  events *as they happen*: over the scheduler's existing duplex pipe
  (``("ev", event)`` messages), over a ``multiprocessing.Queue`` for the
  process-pool backend (:func:`pool_worker_init` /
  :class:`QueueDrain`), or synchronously for serial runs.
- :class:`StreamForwardSink` — a trace sink that sends *annotated
  copies* of each event down the channel, stamped with the propagated
  trace context (``run_id``, ``cell``, ``worker``, ``attempt``). The
  buffered originals are never touched, so the merged JSONL trace stays
  byte-identical with and without live streaming.

Nothing here is on the hot path when live mode is off: workers only
forward when the cell payload carries ``live=True``, and the bus simply
does not exist.
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
from typing import Any, Callable

#: Keys a :class:`StreamForwardSink` stamps onto forwarded event copies.
CONTEXT_KEYS = ("run_id", "cell", "worker", "attempt")


class EventBus:
    """Thread-safe publish/subscribe fan-out for live telemetry events.

    Publishers may be the pipeline's main thread, the scheduler's event
    loop, or a :class:`QueueDrain` thread; subscribers must therefore be
    internally thread-safe. A subscriber that raises is skipped for that
    event (``dropped`` counts the failures) — live consumers are
    best-effort by contract.
    """

    def __init__(self) -> None:
        self._subscribers: list[Callable[[dict[str, Any]], None]] = []
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0

    def subscribe(self, fn: Callable[[dict[str, Any]], None]) -> None:
        with self._lock:
            if fn not in self._subscribers:
                self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[dict[str, Any]], None]) -> None:
        with self._lock:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

    def publish(self, event: dict[str, Any]) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
            self.published += 1
        for fn in subscribers:
            try:
                fn(event)
            except Exception:
                self.dropped += 1


class RingLog:
    """Bounded, thread-safe ring of the most recent bus events.

    Subscribed to an :class:`EventBus`, it gives long-running consumers
    (the serve daemon's ``/v1/events`` ops endpoint) a cheap "what just
    happened" window without unbounded growth: the newest ``capacity``
    events win, and :meth:`tail` snapshots them oldest-first.

    Every event gets a monotonically increasing sequence number (``seen``
    after it is recorded), which :meth:`since` exposes for cursor-based
    pagination: a tailing client passes back the last ``seq`` it saw and
    receives only newer events, plus how many fell out of the ring before
    it caught up.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = max(1, int(capacity))
        self._events: list[tuple[int, dict[str, Any]]] = []
        self._lock = threading.Lock()
        self.seen = 0

    def handle(self, event: dict[str, Any]) -> None:
        with self._lock:
            self.seen += 1
            self._events.append((self.seen, event))
            if len(self._events) > self.capacity:
                del self._events[: len(self._events) - self.capacity]

    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        with self._lock:
            events = [ev for _seq, ev in self._events]
        return events if n is None else events[-max(0, int(n)):]

    def since(self, cursor: int) -> tuple[list[dict[str, Any]], int, int]:
        """Events newer than ``cursor``; returns (events, next_cursor, missed).

        Each returned event dict carries its ``seq``. ``next_cursor`` is
        the value to pass back on the next poll (unchanged when nothing
        new arrived); ``missed`` counts events that rotated out of the
        ring before this poll — nonzero means the client fell behind the
        producer and lost that many events.
        """
        cursor = max(0, int(cursor))
        with self._lock:
            newer = [(seq, ev) for seq, ev in self._events if seq > cursor]
            seen = self.seen
        oldest_retained = newer[0][0] if newer else seen + 1
        missed = max(0, min(oldest_retained - cursor - 1, seen - cursor))
        events = [{"seq": seq, **ev} for seq, ev in newer]
        return events, (events[-1]["seq"] if events else max(cursor, seen)), missed


class StreamForwardSink:
    """Trace sink that forwards annotated event copies to a live channel.

    Emitting never raises: a torn pipe or full queue silently drops the
    live copy (the buffered original still reaches the merged trace).
    """

    def __init__(self, send: Callable[[dict[str, Any]], None], context: dict[str, Any]):
        self._send = send
        self.context = {k: v for k, v in context.items() if v is not None}

    def emit(self, event: dict[str, Any]) -> None:
        ev = dict(event)
        ev.update(self.context)
        try:
            self._send(ev)
        except Exception:
            pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Process-local worker channel

_channel: Callable[[dict[str, Any]], None] | None = None
_worker_id: int | str | None = None


def set_worker_channel(
    send: Callable[[dict[str, Any]], None], worker_id: int | str | None = None
) -> None:
    """Install this process's live-event channel (scheduler/pool/serial)."""
    global _channel, _worker_id
    _channel = send
    _worker_id = worker_id


def clear_worker_channel() -> None:
    global _channel, _worker_id
    _channel = None
    _worker_id = None


def worker_channel() -> Callable[[dict[str, Any]], None] | None:
    return _channel


def worker_id() -> int | str | None:
    return _worker_id


def forward_sink_for(payload: dict[str, Any]) -> StreamForwardSink | None:
    """Build the live forwarder for one cell payload, if streaming is on.

    Returns ``None`` unless the payload asked for live streaming *and*
    this process has a registered channel — the common (non-live) case
    costs two dict lookups.
    """
    if not payload.get("live"):
        return None
    send = worker_channel()
    if send is None:
        return None
    ctx = payload.get("ctx") or {}
    return StreamForwardSink(
        send,
        {
            "run_id": ctx.get("run_id"),
            "cell": ctx.get("cell"),
            "worker": worker_id(),
            "attempt": payload.get("attempt", 1),
        },
    )


# ---------------------------------------------------------------------------
# Process-pool side-channel

def pool_worker_init(q: Any) -> None:
    """``ProcessPoolExecutor`` initializer: route live events over ``q``."""
    set_worker_channel(q.put, worker_id=f"pid{os.getpid()}")


class QueueDrain:
    """Parent-side pump from the pool's ``multiprocessing.Queue`` to the bus.

    Runs on a daemon thread for the lifetime of the pool; ``stop()``
    drains whatever is still queued so no event published before the
    pool shut down is lost.
    """

    def __init__(self, q: Any, bus: EventBus, poll_interval: float = 0.05):
        self._queue = q
        self._bus = bus
        self._poll = poll_interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, name="hfast-live-drain", daemon=True)

    def start(self) -> "QueueDrain":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._bus.publish(self._queue.get(timeout=self._poll))
            except (queue_mod.Empty, OSError, EOFError):
                continue

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        while True:  # drain stragglers enqueued before the pool exited
            try:
                self._bus.publish(self._queue.get_nowait())
            except (queue_mod.Empty, OSError, EOFError):
                break
