"""Observability layer: span tracing, metrics, profiling hooks, reports.

Quick start::

    from hfast import obs

    o = obs.Observability.to_jsonl("trace.jsonl")
    obs.configure(o)

    with obs.obs_span("my_stage", app="cactus"):
        ...

    o.metrics.histogram("msg_size_bytes").observe(4096)
    report = obs.build_report(o.events)

Everything is a no-op when the ambient instance is disabled (the default),
so library code can instrument unconditionally.
"""

from hfast.obs.manifest import build_manifest, git_sha
from hfast.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log2_bucket,
)
from hfast.obs.profile import (
    Observability,
    configure,
    get_obs,
    obs_span,
    profiled,
    using,
)
from hfast.obs.report import build_report, render_markdown, write_report
from hfast.obs.trace import (
    JsonlSink,
    ListSink,
    NullSink,
    SpanTracer,
    TeeSink,
    peak_rss_kb,
    read_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NullSink",
    "Observability",
    "SpanTracer",
    "TeeSink",
    "build_manifest",
    "build_report",
    "configure",
    "get_obs",
    "git_sha",
    "log2_bucket",
    "obs_span",
    "peak_rss_kb",
    "profiled",
    "read_events",
    "render_markdown",
    "using",
    "write_report",
]
