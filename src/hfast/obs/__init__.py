"""Observability layer: span tracing, metrics, profiling hooks, reports.

Quick start::

    from hfast import obs

    o = obs.Observability.to_jsonl("trace.jsonl")
    obs.configure(o)

    with obs.obs_span("my_stage", app="cactus"):
        ...

    o.metrics.histogram("msg_size_bytes").observe(4096)
    report = obs.build_report(o.events)

Everything is a no-op when the ambient instance is disabled (the default),
so library code can instrument unconditionally.
"""

from hfast.obs.analytics import (
    SpanNode,
    TraceError,
    TraceTree,
    attribution,
    cell_critical_paths,
    critical_path,
    diff_traces,
    load_events,
    render_gantt,
    stage_rollup,
    summarize,
)
from hfast.obs.anomaly import AnomalyDetector
from hfast.obs.flame import folded_stacks, speedscope_doc
from hfast.obs.live import LiveView
from hfast.obs.manifest import build_manifest, git_sha
from hfast.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log2_bucket,
)
from hfast.obs.profile import (
    Observability,
    configure,
    get_obs,
    obs_span,
    profiled,
    using,
)
from hfast.obs.prom import (
    MetricsServer,
    parse_prometheus,
    prometheus_projection,
    render_prometheus,
    render_registry,
)
from hfast.obs.report import build_report, render_markdown, write_report
from hfast.obs.stream import EventBus, QueueDrain, StreamForwardSink
from hfast.obs.trace import (
    JsonlSink,
    ListSink,
    NullSink,
    SpanTracer,
    TeeSink,
    peak_rss_kb,
    read_events,
)

__all__ = [
    "AnomalyDetector",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "LiveView",
    "MetricsRegistry",
    "MetricsServer",
    "NullSink",
    "Observability",
    "QueueDrain",
    "SpanNode",
    "SpanTracer",
    "StreamForwardSink",
    "TeeSink",
    "TraceError",
    "TraceTree",
    "attribution",
    "build_manifest",
    "build_report",
    "cell_critical_paths",
    "configure",
    "critical_path",
    "diff_traces",
    "folded_stacks",
    "get_obs",
    "git_sha",
    "load_events",
    "log2_bucket",
    "obs_span",
    "parse_prometheus",
    "peak_rss_kb",
    "profiled",
    "prometheus_projection",
    "read_events",
    "render_gantt",
    "render_markdown",
    "render_prometheus",
    "render_registry",
    "speedscope_doc",
    "stage_rollup",
    "summarize",
    "using",
    "write_report",
]
