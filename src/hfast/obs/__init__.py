"""Observability layer: span tracing, metrics, profiling hooks, reports.

Quick start::

    from hfast import obs

    o = obs.Observability.to_jsonl("trace.jsonl")
    obs.configure(o)

    with obs.obs_span("my_stage", app="cactus"):
        ...

    o.metrics.histogram("msg_size_bytes").observe(4096)
    report = obs.build_report(o.events)

Everything is a no-op when the ambient instance is disabled (the default),
so library code can instrument unconditionally.
"""

from hfast.obs.anomaly import AnomalyDetector
from hfast.obs.live import LiveView
from hfast.obs.manifest import build_manifest, git_sha
from hfast.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log2_bucket,
)
from hfast.obs.profile import (
    Observability,
    configure,
    get_obs,
    obs_span,
    profiled,
    using,
)
from hfast.obs.prom import (
    MetricsServer,
    parse_prometheus,
    prometheus_projection,
    render_prometheus,
    render_registry,
)
from hfast.obs.report import build_report, render_markdown, write_report
from hfast.obs.stream import EventBus, QueueDrain, StreamForwardSink
from hfast.obs.trace import (
    JsonlSink,
    ListSink,
    NullSink,
    SpanTracer,
    TeeSink,
    peak_rss_kb,
    read_events,
)

__all__ = [
    "AnomalyDetector",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "LiveView",
    "MetricsRegistry",
    "MetricsServer",
    "NullSink",
    "Observability",
    "QueueDrain",
    "SpanTracer",
    "StreamForwardSink",
    "TeeSink",
    "build_manifest",
    "build_report",
    "configure",
    "get_obs",
    "git_sha",
    "log2_bucket",
    "obs_span",
    "parse_prometheus",
    "peak_rss_kb",
    "profiled",
    "prometheus_projection",
    "read_events",
    "render_markdown",
    "render_prometheus",
    "render_registry",
    "using",
    "write_report",
]
