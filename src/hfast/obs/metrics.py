"""Metrics registry: counters, gauges, and log2-bucketed histograms.

Histograms use power-of-two buckets exactly like IPM's message-size
tables: bucket ``2^k`` holds observations in ``(2^(k-1), 2^k]``, with a
dedicated zero bucket. Exporters render the whole registry as a flat text
block or a JSON document.

A registry created with ``enabled=False`` hands out shared no-op
instruments so instrumented code pays only an attribute lookup.
"""

from __future__ import annotations

import json
import os
from typing import Any


def log2_bucket(value: int | float) -> int:
    """Upper edge of the power-of-two bucket containing value.

    0 -> 0; values in (2^(k-1), 2^k] -> 2^k.
    """
    if value < 0:
        raise ValueError(f"histogram values must be non-negative, got {value!r}")
    if value == 0:
        return 0
    if isinstance(value, int):
        return 1 << (value - 1).bit_length()
    edge = 1
    while edge < value:
        edge <<= 1
    return edge


class Counter:
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: int | float) -> None:
        self.value = v

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Log2-bucketed histogram with count/sum/min/max aggregates."""

    __slots__ = ("name", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: int | float, weight: int = 1) -> None:
        edge = log2_bucket(value)
        self.buckets[edge] = self.buckets.get(edge, 0) + weight
        self.count += weight
        self.sum += value * weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class _NoopInstrument:
    """Stands in for every instrument type when metrics are disabled."""

    __slots__ = ()
    name = "<noop>"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0
    buckets: dict[int, int] = {}

    def inc(self, n: int | float = 1) -> None:
        pass

    def set(self, v: int | float) -> None:
        pass

    def observe(self, value: int | float, weight: int = 1) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {"type": "noop"}


_NOOP = _NoopInstrument()


class MetricsRegistry:
    """Get-or-create registry for named instruments."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        if not self.enabled:
            return _NOOP
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric '{name}' already registered as {type(inst).__name__}, "
                f"requested {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def to_dict(self) -> dict[str, Any]:
        return {name: inst.to_dict() for name, inst in sorted(self._instruments.items())}

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's ``to_dict`` export into this registry.

        The merge rule per instrument type: counters add, gauges take the
        snapshot's value, histograms combine buckets and aggregates. This
        is how per-cell worker metrics collapse into one run registry.
        """
        if not self.enabled:
            return
        for name, d in snapshot.items():
            kind = d.get("type")
            if kind == "counter":
                self.counter(name).inc(d["value"])
            elif kind == "gauge":
                self.gauge(name).set(d["value"])
            elif kind == "histogram":
                h = self.histogram(name)
                for edge, cnt in d.get("buckets", {}).items():
                    edge = int(edge)
                    h.buckets[edge] = h.buckets.get(edge, 0) + cnt
                h.count += d["count"]
                h.sum += d["sum"]
                for attr, pick in (("min", min), ("max", max)):
                    other = d.get(attr)
                    if other is not None:
                        cur = getattr(h, attr)
                        setattr(h, attr, other if cur is None else pick(cur, other))

    def to_text(self) -> str:
        """Flat, grep-friendly text export (one metric datum per line)."""
        lines = []
        for name, inst in sorted(self._instruments.items()):
            d = inst.to_dict()
            if d["type"] == "histogram":
                lines.append(f"{name}_count {d['count']}")
                lines.append(f"{name}_sum {d['sum']}")
                for edge, cnt in d["buckets"].items():
                    lines.append(f'{name}_bucket{{le="{edge}"}} {cnt}')
            else:
                lines.append(f"{name} {d['value']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_json(self, path: str | os.PathLike) -> None:
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
