"""Flamegraph exports from the unified trace tree.

Two standard formats, both derived from per-span *self* time (wall minus
child walls), so stacked widths partition the run wall exactly:

- **Folded stacks** (`Brendan Gregg's flamegraph.pl` input): one line per
  unique root-to-node stack, ``a;b;c <weight>``, weight in integer
  microseconds.
- **speedscope JSON** (https://www.speedscope.app): a ``sampled``-type
  profile whose samples are the same stacks with self-second weights —
  drag the file into the web UI and get an interactive flamegraph.

Stack frames use :attr:`SpanNode.label` (stage name plus ``[app_pN]``
when the span carries cell identity), so the cactus subtree and the
paratec subtree stay distinguishable instead of merging into one
``analyze_app`` frame.
"""

from __future__ import annotations

from typing import Any

from hfast.obs.analytics import SpanNode, TraceTree


def _walk_stacks(tree: TraceTree) -> list[tuple[list[str], float]]:
    """(stack-of-labels, self-seconds) per node, depth-first, spans with
    zero self time skipped (they would render as invisible slivers)."""
    out: list[tuple[list[str], float]] = []

    def visit(node: SpanNode, prefix: list[str]) -> None:
        stack = prefix + [node.label]
        if node.self_s > 0:
            out.append((stack, node.self_s))
        for child in node.children:
            visit(child, stack)

    for root in tree.roots:
        visit(root, [])
    return out


def folded_stacks(tree: TraceTree) -> str:
    """Folded-stack lines (``a;b;c <usec>``), one per unique stack."""
    merged: dict[tuple[str, ...], float] = {}
    for stack, self_s in _walk_stacks(tree):
        key = tuple(stack)
        merged[key] = merged.get(key, 0.0) + self_s
    lines = []
    for stack, self_s in sorted(merged.items()):
        usec = int(round(self_s * 1e6))
        if usec > 0:
            lines.append(f"{';'.join(stack)} {usec}")
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_doc(tree: TraceTree, name: str = "hfast trace") -> dict[str, Any]:
    """A speedscope ``sampled`` profile document for the trace tree."""
    frame_index: dict[str, int] = {}
    frames: list[dict[str, str]] = []

    def frame_for(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    samples: list[list[int]] = []
    weights: list[float] = []
    for stack, self_s in _walk_stacks(tree):
        samples.append([frame_for(label) for label in stack])
        weights.append(round(self_s, 9))
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": round(total, 9),
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "hfast",
        "name": name,
    }
