"""Online straggler and regression detection for pipeline cells.

The paper's methodology depends on spotting the cells that dominate a
sweep; ExaNeSt-style prototype evaluation leans on live per-link
counters to find stragglers while the run is still going. This module
scores each cell's elapsed wall time two ways:

- **Straggler** — against the scheduler's analytic cost model
  (:func:`hfast.sched.cost.estimate_cell_cost`). Analytic costs are
  unitless, so the detector fits the seconds-per-cost-unit scale
  *online*: each completed cell contributes its ``wall / analytic``
  ratio, and a cell is flagged when its wall time exceeds
  ``threshold ×`` the median-ratio prediction. The first
  ``min_prior`` cells are never flagged (cold start), and neither is
  anything faster than ``min_wall`` — millisecond cells are all noise.
- **Regression** — against the newest ``BENCH_*.json`` snapshot: a cell
  measured at ``w`` seconds in a prior run that now takes more than
  ``regress_factor × w`` is flagged, same ``min_wall`` guard. BENCH
  baselines travel across machines, so the factor is deliberately slack.

Scoring happens at merge time in cell-definition order, so the emitted
``anomaly`` trace events are deterministic for a given set of wall
times; the live path additionally calls :meth:`AnomalyDetector.check_running`
against cells still in flight. Anomaly events are wall-clock-derived by
construction and are excluded (like ``wall_s`` itself) from the
byte-identity determinism contract.
"""

from __future__ import annotations

import bisect
from typing import Any

from hfast.sched.cost import estimate_cell_cost, load_bench_measurements

DEFAULT_THRESHOLD = 4.0
DEFAULT_REGRESS_FACTOR = 10.0
DEFAULT_MIN_WALL = 0.25
DEFAULT_MIN_PRIOR = 3


class AnomalyDetector:
    """Scores cell wall times online; returns structured anomaly records."""

    def __init__(
        self,
        measured: dict[tuple[str, int], float] | None = None,
        threshold: float = DEFAULT_THRESHOLD,
        regress_factor: float = DEFAULT_REGRESS_FACTOR,
        min_wall: float = DEFAULT_MIN_WALL,
        min_prior: int = DEFAULT_MIN_PRIOR,
    ):
        self.measured = dict(measured or {})
        self.threshold = threshold
        self.regress_factor = regress_factor
        self.min_wall = min_wall
        self.min_prior = min_prior
        self._ratios: list[float] = []  # kept sorted; wall / analytic per observed cell

    @classmethod
    def from_bench_dir(cls, bench_dir: Any, **kwargs: Any) -> "AnomalyDetector":
        """Detector whose regression baseline is the newest BENCH snapshot."""
        return cls(measured=load_bench_measurements(bench_dir), **kwargs)

    @property
    def observed_cells(self) -> int:
        return len(self._ratios)

    def _median_ratio(self) -> float | None:
        # max(1, min_prior): even with min_prior=0 a median needs at least
        # one sample — indexing an empty list was a crash (regression test
        # in test_anomaly.py).
        if len(self._ratios) < max(1, self.min_prior):
            return None
        n = len(self._ratios)
        mid = n // 2
        if n % 2:
            return self._ratios[mid]
        return 0.5 * (self._ratios[mid - 1] + self._ratios[mid])

    def expected(self, app: str, nranks: int) -> float | None:
        """Predicted wall seconds for a cell, or None before warm-up.

        Also None when the analytic model has no cost for the cell
        (unknown app, or a degenerate zero estimate): with no prediction
        there is nothing meaningful to compare against.
        """
        scale = self._median_ratio()
        if scale is None:
            return None
        analytic = estimate_cell_cost(app, nranks)
        if analytic <= 0:
            return None
        return analytic * scale

    def observe(
        self, app: str, nranks: int, wall_s: float, attempts: int = 1, ok: bool = True
    ) -> list[dict[str, Any]]:
        """Score one completed cell; fold it into the online fit.

        Failed cells are neither scored nor fitted — their wall time
        measures the fault, not the workload. Returns zero, one, or two
        anomaly records (a cell can be both a straggler and a
        regression).
        """
        if not ok:
            return []
        cell = f"{app}_p{nranks}"
        anomalies: list[dict[str, Any]] = []

        expected = self.expected(app, nranks)
        if (
            expected is not None
            and expected > 0
            and wall_s >= self.min_wall
            and wall_s > self.threshold * expected
        ):
            anomalies.append(
                {
                    "kind": "straggler",
                    "cell": cell,
                    "app": app,
                    "nranks": nranks,
                    "wall_s": round(wall_s, 6),
                    "expected_s": round(expected, 6),
                    "ratio": round(wall_s / expected, 3),
                    "attempts": attempts,
                }
            )

        baseline = self.measured.get((app, nranks))
        if (
            baseline is not None
            and baseline > 0
            and wall_s >= self.min_wall
            and wall_s > self.regress_factor * baseline
        ):
            anomalies.append(
                {
                    "kind": "regression",
                    "cell": cell,
                    "app": app,
                    "nranks": nranks,
                    "wall_s": round(wall_s, 6),
                    "expected_s": round(baseline, 6),
                    "ratio": round(wall_s / baseline, 3),
                    "attempts": attempts,
                }
            )

        analytic = estimate_cell_cost(app, nranks)
        if analytic > 0 and wall_s > 0:
            # Clamp the fitted ratio: a pathological wall/cost pair (e.g. a
            # near-zero analytic estimate) must not blow the median out to
            # inf/0 and poison every later expected() prediction.
            ratio = min(max(wall_s / analytic, 1e-9), 1e9)
            bisect.insort(self._ratios, ratio)
        return anomalies

    def check_running(self, app: str, nranks: int, elapsed_s: float) -> dict[str, Any] | None:
        """Live-only advisory: is an in-flight cell already overdue?

        Same rule as the straggler score but against elapsed (not final)
        wall time; does not touch the online fit. Used by the ``--live``
        view to flag stragglers before they finish.
        """
        expected = self.expected(app, nranks)
        if (
            expected is not None
            and expected > 0
            and elapsed_s >= self.min_wall
            and elapsed_s > self.threshold * expected
        ):
            return {
                "kind": "straggler_running",
                "cell": f"{app}_p{nranks}",
                "app": app,
                "nranks": nranks,
                "wall_s": round(elapsed_s, 6),
                "expected_s": round(expected, 6),
                "ratio": round(elapsed_s / expected, 3),
            }
        return None
