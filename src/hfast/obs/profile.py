"""Ambient observability context and stage-profiling hooks.

An :class:`Observability` object bundles a span tracer and a metrics
registry. A process-wide ambient instance (disabled by default) lets hot
paths be instrumented unconditionally — ``@profiled("stage")`` and
``obs_span(...)`` resolve the ambient instance at call time and collapse
to near-zero work when observability is off.

The ambient lookup is two-level: :func:`configure` installs a
process-wide default (the CLI's single-run instance), while
:func:`using` installs a *thread-local* override. Concurrent pipelines
in one process — the ``hfast serve`` daemon runs one per in-flight job —
therefore never see each other's tracer or metrics: each job thread's
``using(obs)`` scope is invisible to its neighbours.
"""

from __future__ import annotations

import functools
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from hfast.obs.metrics import MetricsRegistry
from hfast.obs.trace import JsonlSink, ListSink, NullSink, SpanTracer, TeeSink


class Observability:
    """Tracer + metrics bundle handed through the pipeline."""

    def __init__(
        self,
        enabled: bool = True,
        trace_sink: Any = None,
        keep_events: bool = True,
    ):
        self.enabled = enabled
        if not enabled:
            self.tracer = SpanTracer(sink=NullSink(), enabled=False)
            self.metrics = MetricsRegistry(enabled=False)
            self.event_buffer: ListSink | None = None
            return
        self.event_buffer = ListSink() if keep_events else None
        if trace_sink is None:
            sink: Any = self.event_buffer or NullSink()
        elif self.event_buffer is not None:
            sink = TeeSink(trace_sink, self.event_buffer)
        else:
            sink = trace_sink
        self.tracer = SpanTracer(sink=sink, enabled=True)
        self.metrics = MetricsRegistry(enabled=True)

    @property
    def events(self) -> list[dict[str, Any]]:
        return self.event_buffer.events if self.event_buffer else []

    def close(self) -> None:
        self.tracer.close()

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    @classmethod
    def to_jsonl(cls, path: str, keep_events: bool = True) -> "Observability":
        return cls(enabled=True, trace_sink=JsonlSink(path), keep_events=keep_events)


_ambient = Observability.disabled()
_local = threading.local()


def configure(obs: Observability) -> Observability:
    """Install obs as the process-wide ambient default; returns it."""
    global _ambient
    _ambient = obs
    return obs


def get_obs() -> Observability:
    """Resolve the ambient instance: thread-local override, else default."""
    override = getattr(_local, "obs", None)
    return override if override is not None else _ambient


@contextmanager
def using(obs: Observability) -> Iterator[Observability]:
    """Temporarily install obs as this thread's ambient instance.

    The override is thread-local, so concurrent jobs (the serve daemon
    runs one pipeline per in-flight job, on executor threads) scope
    their observability independently; nested ``using`` blocks restore
    the enclosing override on exit.
    """
    prev = getattr(_local, "obs", None)
    _local.obs = obs
    try:
        yield obs
    finally:
        _local.obs = prev


@contextmanager
def obs_span(name: str, **attrs: Any) -> Iterator[Any]:
    """Span against the ambient observability instance."""
    with get_obs().tracer.span(name, **attrs) as sp:
        yield sp


def profiled(stage: str, **attrs: Any) -> Callable:
    """Decorator: trace a pipeline stage and count its invocations.

    Resolves the ambient instance per call, so enabling observability after
    import works and disabled mode costs one attribute check.
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            obs = get_obs()
            if not obs.enabled:
                return fn(*args, **kwargs)
            obs.metrics.counter(f"stage.{stage}.calls").inc()
            with obs.tracer.span(stage, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco
