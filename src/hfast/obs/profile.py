"""Ambient observability context and stage-profiling hooks.

An :class:`Observability` object bundles a span tracer and a metrics
registry. A process-wide ambient instance (disabled by default) lets hot
paths be instrumented unconditionally — ``@profiled("stage")`` and
``obs_span(...)`` resolve the ambient instance at call time and collapse
to near-zero work when observability is off.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from hfast.obs.metrics import MetricsRegistry
from hfast.obs.trace import JsonlSink, ListSink, NullSink, SpanTracer, TeeSink


class Observability:
    """Tracer + metrics bundle handed through the pipeline."""

    def __init__(
        self,
        enabled: bool = True,
        trace_sink: Any = None,
        keep_events: bool = True,
    ):
        self.enabled = enabled
        if not enabled:
            self.tracer = SpanTracer(sink=NullSink(), enabled=False)
            self.metrics = MetricsRegistry(enabled=False)
            self.event_buffer: ListSink | None = None
            return
        self.event_buffer = ListSink() if keep_events else None
        if trace_sink is None:
            sink: Any = self.event_buffer or NullSink()
        elif self.event_buffer is not None:
            sink = TeeSink(trace_sink, self.event_buffer)
        else:
            sink = trace_sink
        self.tracer = SpanTracer(sink=sink, enabled=True)
        self.metrics = MetricsRegistry(enabled=True)

    @property
    def events(self) -> list[dict[str, Any]]:
        return self.event_buffer.events if self.event_buffer else []

    def close(self) -> None:
        self.tracer.close()

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    @classmethod
    def to_jsonl(cls, path: str, keep_events: bool = True) -> "Observability":
        return cls(enabled=True, trace_sink=JsonlSink(path), keep_events=keep_events)


_ambient = Observability.disabled()


def configure(obs: Observability) -> Observability:
    """Install obs as the process-wide ambient instance; returns it."""
    global _ambient
    _ambient = obs
    return obs


def get_obs() -> Observability:
    return _ambient


@contextmanager
def using(obs: Observability) -> Iterator[Observability]:
    """Temporarily install obs as the ambient instance."""
    global _ambient
    prev = _ambient
    _ambient = obs
    try:
        yield obs
    finally:
        _ambient = prev


@contextmanager
def obs_span(name: str, **attrs: Any) -> Iterator[Any]:
    """Span against the ambient observability instance."""
    with _ambient.tracer.span(name, **attrs) as sp:
        yield sp


def profiled(stage: str, **attrs: Any) -> Callable:
    """Decorator: trace a pipeline stage and count its invocations.

    Resolves the ambient instance per call, so enabling observability after
    import works and disabled mode costs one attribute check.
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            obs = _ambient
            if not obs.enabled:
                return fn(*args, **kwargs)
            obs.metrics.counter(f"stage.{stage}.calls").inc()
            with obs.tracer.span(stage, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco
