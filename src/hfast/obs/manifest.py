"""Run manifest: provenance stamped at the start of every pipeline run.

Captures git SHA, timestamp, host/python info, the requested app/scale
matrix, and (once the run finishes) cache hit/miss counts. The manifest
is the first event in the JSONL trace and is embedded in the run report,
so every ``BENCH_*.json`` entry is traceable to an exact tree state.
"""

from __future__ import annotations

import datetime
import platform
import subprocess
import sys
from typing import Any


def git_sha(cwd: str | None = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.TimeoutExpired):
        pass
    return "unknown"


def build_manifest(
    apps: list[str],
    scales: dict[str, list[int]],
    argv: list[str] | None = None,
    cwd: str | None = None,
    workers: int = 1,
    shard: tuple[int, int] | None = None,
    scheduler: dict[str, Any] | None = None,
    matcher: str | None = None,
    service: dict[str, Any] | None = None,
    dse: dict[str, Any] | None = None,
) -> dict[str, Any]:
    return {
        "git_sha": git_sha(cwd),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "argv": list(argv) if argv is not None else list(sys.argv),
        "apps": list(apps),
        "scales": {app: list(ns) for app, ns in scales.items()},
        "workers": workers,
        "shard": {"index": shard[0], "count": shard[1]} if shard else None,
        # Interconnect matching backend in effect for the run (scalar /
        # vector / incremental) — all three are byte-identical, so this is
        # provenance, not a determinism input.
        "matcher": matcher,
        # Scheduler section: backend (+ run id) up front; the work-stealing
        # backend folds its steal/retry/re-dispatch counters in at the end.
        "scheduler": dict(scheduler) if scheduler else {"backend": "static"},
        # Set when the run was submitted through `hfast serve`: the job id
        # and content-addressed result key, so a served artifact is
        # traceable back to the exact HTTP submission that produced it.
        "service": dict(service) if service else None,
        # Set for design-space searches: the search/space content keys,
        # strategy, and seed, so a frontier artifact is traceable to the
        # exact spec that produced it.
        "dse": dict(dse) if dse else None,
        # Filled in when the run completes:
        "cache": None,
        "cells": None,
        "failed_cells": [],
    }
