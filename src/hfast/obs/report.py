"""IPM-style run report.

Builds a per-app, per-scale summary (call totals, communication volume,
message-size distribution, top peers, topology degree, hybrid-interconnect
evaluation) plus a per-stage wall-time profile, entirely from the
structured event stream emitted during a run. Rendered as markdown for
humans and JSON for machines; the JSON is also written as a
``BENCH_<shortsha>.json`` file for cross-PR perf-trajectory tracking.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from pathlib import Path
from typing import Any

from hfast.obs.analytics import TraceTree, attribution, critical_path, stage_rollup

REPORT_VERSION = 1


def bench_run_rows(runs: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Project per-app summaries onto the BENCH/perf-trajectory row shape.

    Shared by the ``BENCH_*.json`` writer and the telemetry history
    (:mod:`hfast.obs.history`): a history snapshot's ``data.results``
    mirrors this exact projection, so trend queries read BENCH snapshots
    and history segments through one row shape. Every field here is
    deterministic (no wall clocks), which is what lets history keys be
    content-addressed.
    """
    return [
        {
            "app": r.get("app"),
            "nranks": r.get("nranks"),
            "total_bytes": r.get("total_bytes"),
            "total_messages": r.get("total_messages"),
            "max_degree": (r.get("topology") or {}).get("max_degree"),
            "coverage": (r.get("interconnect") or {}).get("coverage"),
            "speedup": (r.get("interconnect") or {}).get("speedup"),
            "pct_comm": (r.get("timing") or {}).get("pct_comm"),
            "temporal_coverage": (r.get("interconnect_temporal") or {}).get("coverage"),
            "temporal_speedup": (r.get("interconnect_temporal") or {}).get("speedup"),
        }
        for r in runs
    ]


def build_report(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a JSONL event stream into the run-report document."""
    manifest: dict[str, Any] | None = None
    runs: list[dict[str, Any]] = []
    anomalies: list[dict[str, Any]] = []
    frontiers: list[dict[str, Any]] = []
    slo_statuses: list[dict[str, Any]] = []
    stage_wall: dict[str, float] = defaultdict(float)
    stage_calls: dict[str, int] = defaultdict(int)
    peak_rss = 0

    # Trace-tree bookkeeping (span_id/parent_id/depth) rides along on
    # merged non-span events; it identifies positions in one specific
    # trace, not analysis content, so the report drops it.
    structural = {"event", "span_id", "parent_id", "depth"}
    for ev in events:
        kind = ev.get("event")
        if kind == "manifest":
            manifest = {k: v for k, v in ev.items() if k != "event"}
        elif kind == "app_summary":
            runs.append({k: v for k, v in ev.items() if k not in structural})
        elif kind == "anomaly":
            anomalies.append({k: v for k, v in ev.items() if k not in structural})
        elif kind == "dse_frontier":
            frontiers.append({k: v for k, v in ev.items() if k not in structural})
        elif kind == "slo_status":
            slo_statuses.append({k: v for k, v in ev.items() if k not in structural})
        elif kind == "span":
            stage_wall[ev["name"]] += ev.get("wall_s", 0.0)
            stage_calls[ev["name"]] += 1
            peak_rss = max(peak_rss, ev.get("peak_rss_kb", 0))

    total_wall = sum(w for name, w in stage_wall.items() if name == "pipeline") or sum(
        stage_wall.values()
    )
    stages = [
        {
            "stage": name,
            "calls": stage_calls[name],
            "wall_s": round(wall, 6),
            "pct": round(100.0 * wall / total_wall, 2) if total_wall else 0.0,
        }
        for name, wall in sorted(stage_wall.items(), key=lambda kv: -kv[1])
    ]
    cells = list((manifest or {}).get("cells") or [])
    return {
        "report_version": REPORT_VERSION,
        "manifest": manifest,
        "runs": runs,
        "anomalies": anomalies,
        # Design-space search results (one entry per dse_frontier event):
        # the full frontier artifact document, byte-identical across
        # scheduler backends by the DSE determinism contract.
        "frontiers": frontiers,
        # SLO engine statuses (one slo_status event per declared SLO).
        # Burn rates follow the anomaly detector's wall-derived verdicts,
        # so like "anomalies" they sit outside the byte-identity contract
        # under fault injection (clean runs always score burn 0).
        "slo": slo_statuses,
        "profile": {
            "total_wall_s": round(total_wall, 6),
            "peak_rss_kb": peak_rss,
            "stages": stages,
            "cells": cells,
        },
        # Wall-clock-derived by construction (like wall_s/pct), so excluded
        # from the byte-identity determinism contract alongside them.
        "time_breakdown": _time_breakdown(events),
    }


def _time_breakdown(events: list[dict[str, Any]]) -> dict[str, Any] | None:
    """'Where the time went': critical path, self-time, scheduler share."""
    tree = TraceTree(events, warn=lambda _msg: None)
    if tree.empty:
        return None
    attr = attribution(tree)
    return {
        "critical_path": [
            {"label": e["label"], "wall_s": e["wall_s"], "self_s": e["self_s"]}
            for e in critical_path(tree)[:8]
        ],
        "top_self_stages": stage_rollup(tree)[:8],
        "queue_wait_share": attr["queue_wait_share"] if attr else None,
        "utilization": attr["utilization"] if attr else None,
        "lanes": len(attr["lanes"]) if attr else None,
    }


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TiB"


def render_markdown(report: dict[str, Any]) -> str:
    lines: list[str] = ["# hfast run report", ""]
    man = report.get("manifest")
    if man:
        lines += [
            f"- **git SHA:** `{man.get('git_sha', 'unknown')}`",
            f"- **timestamp:** {man.get('timestamp', '?')}",
            f"- **python:** {man.get('python', '?')} on {man.get('platform', '?')}",
            f"- **apps:** {', '.join(man.get('apps', []))}",
        ]
        cache = man.get("cache")
        if cache:
            lines.append(
                f"- **cache:** {cache.get('hits', 0)} hits / "
                f"{cache.get('misses', 0)} misses / {cache.get('stores', 0)} stores"
            )
        if man.get("workers", 1) and man.get("workers", 1) > 1:
            lines.append(f"- **workers:** {man['workers']}")
        shard = man.get("shard")
        if shard:
            lines.append(f"- **shard:** {shard['index']}/{shard['count']}")
        failed = man.get("failed_cells") or []
        if failed:
            lines.append(f"- **failed cells:** {', '.join(failed)}")
        sched = man.get("scheduler") or {}
        if sched.get("backend") and sched["backend"] != "static":
            lines.append(f"- **scheduler:** {sched['backend']} (run `{sched.get('run_id', '?')}`)")
        lines.append("")

    for run in report.get("runs", []):
        app, nranks = run.get("app", "?"), run.get("nranks", "?")
        lines.append(f"## {app} @ {nranks} ranks")
        lines.append("")
        lines.append(
            f"- point-to-point volume: {_fmt_bytes(run.get('total_bytes', 0))} "
            f"in {run.get('total_messages', 0)} messages "
            f"over {run.get('nonzero_links', 0)} links"
        )
        topo = run.get("topology", {})
        lines.append(
            f"- topology degree: max {topo.get('max_degree', '?')}, "
            f"avg {topo.get('avg_degree', '?')}"
        )
        conc = topo.get("concentration", {})
        if conc:
            parts = [f"top-{k}: {100 * float(v):.0f}%" for k, v in sorted(conc.items(), key=lambda kv: int(kv[0]))]
            lines.append(f"- traffic concentration: {', '.join(parts)}")
        ic = run.get("interconnect", {})
        if ic:
            lines.append(
                f"- hybrid interconnect: {100 * ic.get('coverage', 0):.1f}% of bytes on "
                f"{ic.get('n_circuits', 0)} circuits "
                f"({'fully' if ic.get('fully_provisionable') else 'partially'} provisionable), "
                f"{ic.get('speedup', 1.0)}x vs packet-only"
            )
        tmp = run.get("interconnect_temporal", {})
        if tmp:
            lines.append(
                f"- temporal assignment ({tmp.get('timesteps', 1)} steps): "
                f"{100 * tmp.get('coverage', 0):.1f}% coverage "
                f"(static {100 * tmp.get('static_coverage', 0):.1f}%), "
                f"{tmp.get('n_reconfigs', 0)} reconfigs, "
                f"{tmp.get('speedup', 1.0)}x vs packet-only"
            )
        tim = run.get("timing", {})
        if tim:
            lines.append(
                f"- timing (seed {tim.get('seed', 0)}): "
                f"{tim.get('pct_comm', 0.0):.1f}% communication "
                f"({tim.get('comm_time_s', 0.0):.4f} s comm vs "
                f"{tim.get('compute_time_s', 0.0):.4f} s compute per rank)"
            )
        lines.append("")

        totals = run.get("call_totals", {})
        if totals:
            lines.append("| MPI call | count | % of calls |")
            lines.append("|---|---:|---:|")
            call_sum = sum(totals.values())
            for call, cnt in sorted(totals.items(), key=lambda kv: -kv[1]):
                lines.append(f"| {call} | {cnt} | {100 * cnt / call_sum:.1f}% |")
            lines.append("")

        buckets = run.get("size_buckets", {})
        if buckets:
            lines.append("| msg size bucket | messages |")
            lines.append("|---|---:|")
            for edge, cnt in sorted(buckets.items(), key=lambda kv: int(kv[0])):
                lines.append(f"| <= {_fmt_bytes(int(edge))} | {cnt} |")
            lines.append("")

        lat_buckets = (run.get("timing") or {}).get("latency_buckets", {})
        if lat_buckets:
            lines.append("| call latency bucket | calls |")
            lines.append("|---|---:|")
            for edge, cnt in sorted(lat_buckets.items(), key=lambda kv: int(kv[0])):
                lines.append(f"| <= {int(edge)} µs | {cnt} |")
            lines.append("")

        peers = run.get("top_peers", [])
        if peers:
            lines.append("| rank | heaviest peer | volume |")
            lines.append("|---:|---:|---:|")
            for entry in peers:
                lines.append(
                    f"| {entry['rank']} | {entry['peer']} | {_fmt_bytes(entry['bytes'])} |"
                )
            lines.append("")

    for fr in report.get("frontiers") or []:
        wl = fr.get("workload") or {}
        lines.append("## Design-space frontier")
        lines.append("")
        lines += [
            f"- **workload:** {wl.get('app', '?')} @ {wl.get('nranks', '?')} ranks",
            f"- **strategy:** {fr.get('strategy', '?')} (seed {fr.get('seed', 0)})",
            f"- **search key:** `{fr.get('search_key', '?')}` "
            f"(space `{fr.get('space_key', '?')}`)",
            f"- **candidates:** {fr.get('evaluated', 0)} evaluated, "
            f"{len(fr.get('frontier') or [])} on the frontier, "
            f"{fr.get('dominated', 0)} dominated, "
            f"{len(fr.get('failed') or [])} failed",
            "",
        ]
        points = fr.get("frontier") or []
        if points:
            lines.append(
                "| id | circuits | reconfig cost (s) | matcher | steps "
                "| coverage | packet bytes | reconfig (s) | eval cost |"
            )
            lines.append("|---:|---:|---:|---|---:|---:|---:|---:|---:|")
            for p in points:
                cand = p.get("candidate") or {}
                objs = p.get("objectives") or {}
                lines.append(
                    f"| {p.get('id', '?')} | {cand.get('circuits_per_node', '?')} "
                    f"| {cand.get('reconfig_cost', 0):g} "
                    f"| {cand.get('matcher', '?')} | {cand.get('timesteps', '?')} "
                    f"| {100 * objs.get('coverage', 0):.1f}% "
                    f"| {_fmt_bytes(objs.get('packet_bytes', 0))} "
                    f"| {objs.get('reconfig_s', 0):g} "
                    f"| {objs.get('eval_cost', 0):.1f} |"
                )
            lines.append("")

    slo_statuses = report.get("slo") or []
    if slo_statuses:
        lines.append("## SLO compliance")
        lines.append("")
        breached = [s for s in slo_statuses if s.get("breached")]
        lines.append(
            f"{len(slo_statuses)} SLO(s) evaluated, {len(breached)} breached."
            if breached
            else f"{len(slo_statuses)} SLO(s) evaluated, all within budget."
        )
        lines.append("")
        lines.append("| SLO | kind | objective | burn | budget left | windows | status |")
        lines.append("|---|---|---:|---:|---:|---|---|")
        for s in slo_statuses:
            windows = "; ".join(
                f"{w.get('name', 'run')}[{w.get('last') or 'all'}] "
                f"{w.get('burn', 0):g}/{w.get('max_burn', 0):g}"
                for w in s.get("windows") or []
            )
            lines.append(
                f"| {s.get('slo', '?')} | {s.get('kind', '?')} "
                f"| {s.get('objective', 0):g} | {s.get('burn', 0):g} "
                f"| {s.get('budget_remaining', 0):g} | {windows} "
                f"| {'**BREACHED**' if s.get('breached') else 'ok'} |"
            )
        lines.append("")

    anomalies = report.get("anomalies") or []
    if anomalies:
        lines.append("## Anomalies")
        lines.append("")
        lines.append("| cell | kind | wall (s) | expected (s) | ratio | attempts |")
        lines.append("|---|---|---:|---:|---:|---:|")
        for a in anomalies:
            lines.append(
                f"| {a.get('cell', '?')} | {a.get('kind', '?')} "
                f"| {a.get('wall_s', 0):.4f} | {a.get('expected_s', 0):.4f} "
                f"| {a.get('ratio', 0):.2f}x | {a.get('attempts', 1)} |"
            )
        lines.append("")

    tb = report.get("time_breakdown")
    if tb:
        lines.append("## Where the time went")
        lines.append("")
        share = tb.get("queue_wait_share")
        util = tb.get("utilization")
        if share is not None or util is not None:
            parts = []
            if util is not None:
                parts.append(f"worker utilization {100 * util:.0f}%")
            if share is not None:
                parts.append(f"queue-wait share {100 * share:.0f}%")
            if tb.get("lanes"):
                parts.append(f"{tb['lanes']} execution lane(s)")
            lines.append("Scheduler attribution: " + ", ".join(parts) + ".")
            lines.append("")
        cp = tb.get("critical_path") or []
        if cp:
            lines.append("Critical path (heaviest span chain):")
            lines.append("")
            lines.append("| span | wall (s) | self (s) |")
            lines.append("|---|---:|---:|")
            for e in cp:
                lines.append(f"| {e['label']} | {e['wall_s']:.4f} | {e['self_s']:.4f} |")
            lines.append("")
        top = tb.get("top_self_stages") or []
        if top:
            lines.append("Top stages by self time:")
            lines.append("")
            lines.append("| stage | calls | self (s) | % of run |")
            lines.append("|---|---:|---:|---:|")
            for st in top:
                lines.append(
                    f"| {st['stage']} | {st['calls']} | {st['self_s']:.4f} "
                    f"| {st['pct_self']:.1f} |"
                )
            lines.append("")

    prof = report.get("profile", {})
    stages = prof.get("stages", [])
    if stages:
        lines.append("## Stage profile")
        lines.append("")
        lines.append(
            f"Total wall: {prof.get('total_wall_s', 0):.4f} s · "
            f"peak RSS: {prof.get('peak_rss_kb', 0)} KiB"
        )
        lines.append("")
        lines.append("| stage | calls | wall (s) | % |")
        lines.append("|---|---:|---:|---:|")
        for st in stages:
            lines.append(
                f"| {st['stage']} | {st['calls']} | {st['wall_s']:.4f} | {st['pct']:.1f} |"
            )
        lines.append("")
    cells = prof.get("cells", [])
    if cells:
        lines.append("## Cell timings")
        lines.append("")
        lines.append("| cell | status | attempts | wall (s) |")
        lines.append("|---|---|---:|---:|")
        for c in cells:
            status = "ok" if c.get("ok") else f"FAILED: {c.get('error', '?')}"
            lines.append(
                f"| {c['app']}_p{c['nranks']} | {status} | {c.get('attempts', 1)} "
                f"| {c.get('wall_s', 0):.4f} |"
            )
        lines.append("")

    sched = (report.get("manifest") or {}).get("scheduler") or {}
    if sched.get("backend") == "stealing":
        lines.append("## Scheduler")
        lines.append("")
        lines += [
            f"- **backend:** work-stealing, run `{sched.get('run_id', '?')}`"
            + (" (resumed)" if sched.get("resumed") else ""),
            f"- **workers:** {sched.get('workers', '?')} requested, "
            f"{sched.get('workers_spawned', '?')} spawned, "
            f"{sched.get('workers_lost', 0)} lost",
            f"- **queue:** {sched.get('tasks_dispatched', 0)} dispatches, "
            f"{sched.get('steals', 0)} steals, max depth {sched.get('max_queue_depth', 0)}",
            f"- **recovery:** {sched.get('retries', 0)} retries, "
            f"{sched.get('redispatches', 0)} re-dispatches, "
            f"{sched.get('cells_from_journal', 0)} cells replayed from journal",
        ]
        if sched.get("journal"):
            lines.append(f"- **journal:** `{sched['journal']}`")
        lines.append("")
    return "\n".join(lines)


def write_report(
    report: dict[str, Any],
    out_dir: str | os.PathLike,
    bench_dir: str | os.PathLike | None = None,
) -> dict[str, Path]:
    """Write report.md + report.json (and a BENCH_*.json when bench_dir set)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}

    json_path = out / "report.json"
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    paths["json"] = json_path

    md_path = out / "report.md"
    md_path.write_text(render_markdown(report), encoding="utf-8")
    paths["markdown"] = md_path

    if bench_dir is not None:
        man = report.get("manifest") or {}
        sha = (man.get("git_sha") or "unknown")[:12]
        bench = Path(bench_dir)
        bench.mkdir(parents=True, exist_ok=True)
        bench_path = bench / f"BENCH_{sha}.json"
        bench_doc = {
            "report_version": report["report_version"],
            "git_sha": man.get("git_sha"),
            "timestamp": man.get("timestamp"),
            "workers": man.get("workers", 1),
            "profile": report.get("profile"),
            "runs": bench_run_rows(report.get("runs", [])),
        }
        with open(bench_path, "w", encoding="utf-8") as fh:
            json.dump(bench_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths["bench"] = bench_path
    return paths
