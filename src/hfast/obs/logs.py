"""Structured JSON logging with run/span/job correlation IDs.

The run-time surfaces (the work-stealing scheduler, the serve daemon,
the ``--live`` status view) historically narrated themselves with ad-hoc
``print(..., file=sys.stderr)`` lines — readable, but impossible to
correlate with the JSONL trace after the fact. This module gives them a
shared structured channel:

- :class:`StructuredLogger` — emits one sorted-key JSON object per line
  (``ts``, ``level``, ``event``, plus whatever fields are bound).
  Loggers are cheap immutable views: :meth:`StructuredLogger.bind`
  returns a child sharing the writer with extra correlation fields
  (``run_id``, ``job_id``, ``cell``, ``span_id`` ...), so every record a
  subsystem emits carries the ids needed to join it against the trace.
- :class:`RotatingJsonlWriter` — the size-capped on-disk sink. Rollover
  happens *between* records (a record is never split across files):
  when the next line would push the file past ``max_bytes`` the file is
  shifted to ``<path>.1`` (existing ``<path>.k`` shift to ``.k+1``, the
  oldest beyond ``max_files`` is dropped) and a fresh file is opened.
- An **ambient logger**: :func:`configure_logging` installs a
  process-wide root; :func:`get_logger` hands out bound children. When
  nothing configured logging, :func:`get_logger` returns a shared
  disabled logger whose methods are no-ops — instrumented call sites in
  the scheduler and live view cost one attribute check in the common
  (unconfigured) case, and existing stderr output is untouched.
- :func:`read_log_records` — the tolerant reader: walks rotated
  siblings oldest-first, skips blank/malformed lines (a crash can
  truncate the final line mid-record), and returns plain dicts.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from typing import Any

LEVELS = ("debug", "info", "warning", "error")

DEFAULT_MAX_BYTES = 8 * 1024 * 1024
DEFAULT_MAX_FILES = 5


class RotatingJsonlWriter:
    """Append-only JSONL file with size-based rollover between records."""

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
    ):
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.max_files = max(1, int(max_files))
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._fh: io.TextIOBase | None = open(self.path, "a", encoding="utf-8")
        self._size = os.path.getsize(self.path)

    def write_line(self, line: str) -> None:
        """Write one complete line (no trailing newline expected)."""
        data = line + "\n"
        nbytes = len(data.encode("utf-8"))
        with self._lock:
            if self._fh is None:
                return
            if self.max_bytes is not None and self._size > 0 and self._size + nbytes > self.max_bytes:
                self._rotate_locked()
            self._fh.write(data)
            self._fh.flush()
            self._size += nbytes

    def _rotate_locked(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        self._fh.close()
        rotate_siblings(self.path, self.max_files)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None


def rotate_siblings(path: str | os.PathLike, max_files: int) -> None:
    """Shift ``path`` -> ``path.1`` -> ``path.2`` ... keeping ``max_files`` siblings.

    The sibling at ``path.max_files`` (the oldest) is overwritten by the
    shift; callers re-open ``path`` fresh afterwards. Shared by the log
    writer and the trace :class:`~hfast.obs.trace.JsonlSink`.
    """
    path = os.fspath(path)
    for k in range(max(1, int(max_files)) - 1, 0, -1):
        src = f"{path}.{k}"
        if os.path.exists(src):
            os.replace(src, f"{path}.{k + 1}")
    if os.path.exists(path):
        os.replace(path, f"{path}.1")


def rotated_paths(path: str | os.PathLike) -> list[str]:
    """All files holding one logical stream, oldest first (``path`` last)."""
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    base = os.path.basename(path)
    numbered: list[tuple[int, str]] = []
    if os.path.isdir(parent):
        for name in os.listdir(parent):
            if name.startswith(base + "."):
                suffix = name[len(base) + 1:]
                if suffix.isdigit():
                    numbered.append((int(suffix), os.path.join(parent, name)))
    ordered = [p for _, p in sorted(numbered, reverse=True)]  # highest N = oldest
    if os.path.exists(path):
        ordered.append(path)
    return ordered


class StructuredLogger:
    """Immutable bound logger emitting sorted-key JSON records."""

    __slots__ = ("_writer", "_fields")

    def __init__(self, writer: RotatingJsonlWriter | None, fields: dict[str, Any] | None = None):
        self._writer = writer
        self._fields = dict(fields or {})

    @property
    def enabled(self) -> bool:
        return self._writer is not None

    @property
    def fields(self) -> dict[str, Any]:
        return dict(self._fields)

    def bind(self, **fields: Any) -> "StructuredLogger":
        """Child logger with extra correlation fields (None values dropped)."""
        if self._writer is None:
            return self
        merged = dict(self._fields)
        merged.update({k: v for k, v in fields.items() if v is not None})
        return StructuredLogger(self._writer, merged)

    def log(self, level: str, event: str, **fields: Any) -> None:
        if self._writer is None:
            return
        record: dict[str, Any] = {"ts": round(time.time(), 6), "level": level, "event": event}
        record.update(self._fields)
        record.update({k: v for k, v in fields.items() if v is not None})
        self._writer.write_line(json.dumps(record, sort_keys=True, default=str))

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()


#: Shared no-op logger handed out when logging is unconfigured.
DISABLED_LOGGER = StructuredLogger(None)

_root: StructuredLogger | None = None


def configure_logging(
    target: str | os.PathLike | RotatingJsonlWriter,
    max_bytes: int | None = DEFAULT_MAX_BYTES,
    max_files: int = DEFAULT_MAX_FILES,
    **bound: Any,
) -> StructuredLogger:
    """Install the process-wide root logger; returns it."""
    global _root
    writer = (
        target
        if isinstance(target, RotatingJsonlWriter)
        else RotatingJsonlWriter(target, max_bytes=max_bytes, max_files=max_files)
    )
    _root = StructuredLogger(writer, {k: v for k, v in bound.items() if v is not None})
    return _root


def get_logger(**bound: Any) -> StructuredLogger:
    """The ambient logger (bound with extras), or the shared no-op."""
    if _root is None:
        return DISABLED_LOGGER
    return _root.bind(**bound) if bound else _root


def reset_logging() -> None:
    """Close and uninstall the root logger (tests, end of CLI commands)."""
    global _root
    if _root is not None:
        _root.close()
        _root = None


def read_log_records(
    path: str | os.PathLike, strict: bool = False, level: str | None = None
) -> list[dict[str, Any]]:
    """Read a structured log stream back, rotated siblings included.

    Records come back oldest-first across the whole rotation chain.
    Malformed lines are skipped (a crashed writer can truncate the final
    line) unless ``strict``, which raises ``ValueError``.
    """
    records: list[dict[str, Any]] = []
    for part in rotated_paths(path):
        with open(part, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    if strict:
                        raise ValueError(f"{part}:{lineno}: malformed log line: {exc}") from exc
                    continue
                if isinstance(rec, dict) and (level is None or rec.get("level") == level):
                    records.append(rec)
    return records
