"""Persistent telemetry history: an append-only, content-addressed TSDB-lite.

The paper's methodology is longitudinal — IPM-style profiles compared
across many runs and scales — but every observability artifact so far
dies with its process. This module is the durable layer: pipeline runs,
serve-daemon jobs, and periodic service snapshots append compact
**snapshot documents** to an on-disk history directory that any later
``hfast obs {history,trend,slo}`` invocation can query post-mortem.

Snapshot shape::

    {"kind": ..., "key": sha256(data), "data": {...}, "meta": {...}}

``data`` holds only *deterministic* fields — the BENCH run-row
projection (:func:`hfast.obs.report.bench_run_rows`) plus metrics
filtered to the deterministic instrument families — so the same work on
any backend (serial / pool / stealing / the serve daemon) produces the
same bytes, hence the same content-addressed ``key``. Identical reruns
dedupe instead of accumulating, and the default ``hfast obs trend``
output is a pure function of history *content*: byte-identical no
matter which backend wrote the snapshots. Everything wall-clock- or
host-derived (timestamps, git SHA, cell wall times, SLO burn rates)
lives in ``meta``, outside the key and outside the default trend
output.

Storage is crash-tolerant by construction: each writer appends JSONL to
its own ``wip-<pid>-<nonce>.jsonl`` segment (no cross-process
interleaving), and :meth:`HistoryStore.close` seals the segment by
renaming it to ``seg-<sha12>.jsonl`` — the sha of its content, so
sealed segments are immutable and idempotent to re-seal. A crash leaves
the wip segment behind; the tolerant reader still consumes every
complete line in it. :func:`compact` implements retention: merge +
dedupe every segment into one sealed file and drop the originals.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import uuid
from pathlib import Path
from typing import Any

from hfast.obs.report import bench_run_rows

#: Metric families whose values are pure functions of the analyzed work
#: (message sizes, LogGP latencies, MPI call counts). Everything else is
#: volatile and excluded from the content-addressed snapshot data:
#: wall-time gauges, serve admission counters, slo burn rates — and
#: ``stage.*`` call counts, which depend on the *cache state* (a hit
#: runs ``cache_load``, a miss runs ``trace_synthesis`` + ``cache_store``),
#: not on the work itself.
DETERMINISTIC_METRIC_PREFIXES = (
    "calls.",
    "pipeline.",
    "msg_size_bytes",
    "call_latency_usec",
)

SEGMENT_PREFIX = "seg-"
WIP_PREFIX = "wip-"
DEFAULT_MAX_SEGMENT_BYTES = 4 * 1024 * 1024


def canonical_bytes(doc: Any) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def content_key(data: Any) -> str:
    return hashlib.sha256(canonical_bytes(data)).hexdigest()


def deterministic_metrics(metrics_snapshot: dict[str, Any] | None) -> dict[str, Any]:
    """Filter a registry ``to_dict()`` down to the deterministic families."""
    if not metrics_snapshot:
        return {}
    return {
        name: doc
        for name, doc in sorted(metrics_snapshot.items())
        if name.startswith(DETERMINISTIC_METRIC_PREFIXES)
    }


def snapshot_from_run(
    manifest: dict[str, Any],
    results: list[dict[str, Any]],
    metrics_snapshot: dict[str, Any] | None = None,
    source: str = "analyze",
    anomalies: list[dict[str, Any]] | None = None,
    slo_statuses: list[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """Build one run snapshot from pipeline outputs.

    ``data`` (content-addressed): the BENCH run-row projection of the
    per-app summaries plus deterministic metrics. ``meta`` (volatile):
    provenance and wall-derived observations for time-ordered queries.
    """
    data = {
        "kind": "run",
        "results": bench_run_rows(results),
        "metrics": deterministic_metrics(metrics_snapshot),
    }
    cells = list(manifest.get("cells") or [])
    sched = manifest.get("scheduler") or {}
    stragglers = sorted(
        {a.get("cell") for a in (anomalies or []) if a.get("kind") == "straggler" and a.get("cell")}
    )
    meta = {
        "source": source,
        "timestamp": manifest.get("timestamp"),
        "git_sha": manifest.get("git_sha"),
        "host": manifest.get("host"),
        "workers": manifest.get("workers"),
        "scheduler": sched.get("backend"),
        "run_id": sched.get("run_id"),
        "cells_total": len(cells),
        "cells_failed": sum(1 for c in cells if not c.get("ok", True)),
        "cell_walls": {
            f"{c.get('app')}_p{c.get('nranks')}": c.get("wall_s") for c in cells
        },
        "stragglers": stragglers,
        "anomalies": len(anomalies or []),
        "slo": [
            {"slo": s.get("slo"), "breached": s.get("breached"), "burn": s.get("burn")}
            for s in (slo_statuses or [])
        ],
        "slo_violations": sum(1 for s in (slo_statuses or []) if s.get("breached")),
    }
    return {"kind": "run", "key": content_key(data), "data": data, "meta": meta}


def snapshot_from_service(
    metrics_snapshot: dict[str, Any],
    source: str = "serve",
    timestamp: float | None = None,
    extra_meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Periodic service-counter snapshot (admission/queue/cache series).

    Service counters are cumulative and time-varying by nature, so the
    whole registry snapshot *is* the data; identical consecutive
    snapshots (an idle daemon) still dedupe via the content key. These
    are excluded from the default (deterministic) trend output and
    queried with ``hfast obs trend --service``.
    """
    data = {"kind": "service", "metrics": dict(sorted(metrics_snapshot.items()))}
    meta = {"source": source, "timestamp": timestamp}
    if extra_meta:
        meta.update(extra_meta)
    return {"kind": "service", "key": content_key(data), "data": data, "meta": meta}


class HistoryStore:
    """Per-writer append-only segment of a history directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self._lock = threading.Lock()
        self._wip: Path | None = None
        self._size = 0
        self.appended = 0

    def _open_segment(self) -> Path:
        wip = self.root / f"{WIP_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        wip.touch()
        return wip

    def append(self, snapshot: dict[str, Any]) -> str:
        """Append one snapshot; returns its content key."""
        key = snapshot.get("key") or content_key(snapshot.get("data"))
        line = json.dumps(snapshot, sort_keys=True) + "\n"
        payload = line.encode("utf-8")
        with self._lock:
            if self._wip is None:
                self._wip = self._open_segment()
                self._size = 0
            with open(self._wip, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
            self._size += len(payload)
            self.appended += 1
            if self._size >= self.max_segment_bytes:
                self._seal_locked()
        return key

    def _seal_locked(self) -> None:
        if self._wip is None or self._size == 0:
            if self._wip is not None and self._wip.exists() and self._size == 0:
                self._wip.unlink()
            self._wip = None
            return
        digest = hashlib.sha256(self._wip.read_bytes()).hexdigest()[:12]
        sealed = self.root / f"{SEGMENT_PREFIX}{digest}.jsonl"
        os.replace(self._wip, sealed)
        self._wip = None
        self._size = 0

    def seal(self) -> None:
        """Seal the open wip segment into its content-addressed name."""
        with self._lock:
            self._seal_locked()

    def close(self) -> None:
        self.seal()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _segment_files(root: Path) -> list[Path]:
    if not root.is_dir():
        return []
    return sorted(p for p in root.glob("*.jsonl") if p.is_file())


def read_history(
    root: str | os.PathLike, strict: bool = False, kinds: tuple[str, ...] | None = None
) -> list[dict[str, Any]]:
    """Load every snapshot in a history dir, deduped by content key.

    Sealed segments and in-progress/crashed ``wip-*`` segments are both
    read; malformed or truncated lines are skipped unless ``strict``.
    When several occurrences share a key (reruns, compaction overlap)
    the one with the smallest ``(meta.timestamp, meta)`` wins — a
    deterministic choice that keeps the earliest observation. The result
    is sorted by key, so downstream consumers see a canonical order
    independent of segment layout.
    """
    root = Path(root)
    best: dict[str, tuple[Any, dict[str, Any]]] = {}
    for seg in _segment_files(root):
        with open(seg, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line:
                    continue
                try:
                    snap = json.loads(line)
                    if not isinstance(snap, dict) or "data" not in snap:
                        raise ValueError("not a snapshot object")
                except (json.JSONDecodeError, ValueError) as exc:
                    if strict:
                        raise ValueError(f"{seg}:{lineno}: malformed snapshot: {exc}") from exc
                    continue
                if kinds is not None and snap.get("kind") not in kinds:
                    continue
                key = snap.get("key") or content_key(snap["data"])
                snap["key"] = key
                meta = snap.get("meta") or {}
                rank = (
                    meta.get("timestamp") if isinstance(meta.get("timestamp"), (int, float)) else math.inf,
                    json.dumps(meta, sort_keys=True, default=str),
                )
                cur = best.get(key)
                if cur is None or rank < cur[0]:
                    best[key] = (rank, snap)
    return [snap for _key, (_rank, snap) in sorted(best.items())]


def compact(
    root: str | os.PathLike,
    retain: int | None = None,
    strict: bool = False,
) -> dict[str, Any]:
    """Merge + dedupe all segments into one sealed segment; drop originals.

    ``retain`` keeps only the newest N snapshots by ``meta.timestamp``
    (snapshots without a timestamp are treated as oldest). The merged
    replacement is fully written and sealed *before* the old segment
    files are removed, so a crash mid-compaction loses nothing — the
    next read just dedupes the overlap away.
    """
    root = Path(root)
    old_segments = _segment_files(root)
    snapshots = read_history(root, strict=strict)
    dropped = 0
    if retain is not None and len(snapshots) > retain:
        def ts(snap: dict[str, Any]) -> float:
            t = (snap.get("meta") or {}).get("timestamp")
            return float(t) if isinstance(t, (int, float)) else -math.inf

        keep = sorted(snapshots, key=lambda s: (ts(s), s["key"]))[-retain:]
        dropped = len(snapshots) - len(keep)
        snapshots = sorted(keep, key=lambda s: s["key"])

    body = "".join(json.dumps(s, sort_keys=True) + "\n" for s in snapshots)
    sealed: Path | None = None
    if body:
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]
        sealed = root / f"{SEGMENT_PREFIX}{digest}.jsonl"
        tmp = root / f"{WIP_PREFIX}compact-{uuid.uuid4().hex[:8]}.tmp"
        tmp.write_text(body, encoding="utf-8")
        os.replace(tmp, sealed)
    for seg in old_segments:
        if sealed is None or seg != sealed:
            try:
                seg.unlink()
            except OSError:
                pass
    return {
        "segments_before": len(old_segments),
        "segments_after": 1 if sealed is not None else 0,
        "snapshots": len(snapshots),
        "dropped": dropped,
    }


# ---------------------------------------------------------------------------
# BENCH snapshot ingestion (the benchmarks/ perf trajectory)


def load_bench_snapshots(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Read ``BENCH_*.json`` perf-trajectory docs as history snapshots.

    Accepts a directory (scanned for ``BENCH_*.json``) or a single file.
    Unusable files (missing, invalid JSON, not a BENCH doc) are skipped,
    mirroring ``scripts/bench_compare.py``'s tolerance.
    """
    p = Path(path)
    candidates = sorted(p.glob("BENCH_*.json")) if p.is_dir() else [p]
    out: list[dict[str, Any]] = []
    for cand in candidates:
        try:
            doc = json.loads(cand.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
            continue
        rows = [r for r in doc["runs"] if isinstance(r, dict) and r.get("app")]
        if not rows:
            continue
        data = {"kind": "bench", "results": rows, "metrics": {}}
        meta = {
            "source": "bench",
            "path": str(cand),
            "timestamp": _parse_bench_timestamp(doc.get("timestamp")),
            "git_sha": doc.get("git_sha"),
            "workers": doc.get("workers"),
            "backend": (doc.get("record") or {}).get("backend") if isinstance(doc.get("record"), dict) else None,
        }
        out.append({"kind": "bench", "key": content_key(data), "data": data, "meta": meta})
    return out


def _parse_bench_timestamp(ts: Any) -> float | None:
    if isinstance(ts, (int, float)):
        return float(ts)
    if isinstance(ts, str):
        import datetime as _dt

        try:
            return _dt.datetime.fromisoformat(ts.replace("Z", "+00:00")).timestamp()
        except ValueError:
            return None
    return None


# ---------------------------------------------------------------------------
# Trend queries


def histogram_quantile(hist: dict[str, Any], q: float) -> float | None:
    """Approximate quantile from a log2-bucket histogram ``to_dict``.

    Returns the smallest bucket upper edge whose cumulative count covers
    ``ceil(q * count)`` observations — deterministic, conservative (the
    true value is <= the returned edge), and exactly how IPM reads its
    message-size tables.
    """
    buckets = hist.get("buckets") or {}
    total = int(hist.get("count") or 0)
    if not buckets or total <= 0:
        return None
    target = max(1, math.ceil(min(max(q, 0.0), 1.0) * total))
    cumulative = 0
    for edge, cnt in sorted(((int(e), c) for e, c in buckets.items())):
        cumulative += cnt
        if cumulative >= target:
            return float(edge)
    return float(max(int(e) for e in buckets))


_TREND_COLUMNS = (
    "total_bytes",
    "total_messages",
    "max_degree",
    "coverage",
    "speedup",
    "pct_comm",
    "temporal_coverage",
    "temporal_speedup",
)


def trend_rows(
    snapshots: list[dict[str, Any]],
    app: str | None = None,
    nranks: int | None = None,
) -> list[dict[str, Any]]:
    """Cross-run trend: per (app, nranks), the deterministic column ranges.

    A pure function of snapshot *data* — no timestamps, sources, or
    segment layout involved — so its output is byte-identical no matter
    which backend or daemon wrote the history. Each column reports
    ``{"min", "max", "values"}`` over the distinct values observed;
    ``min == max`` means the metric has been stable across the recorded
    history, a widening range means a revision changed it.
    """
    grouped: dict[tuple[str, int], dict[str, set]] = {}
    observations: dict[tuple[str, int], int] = {}
    for snap in snapshots:
        for row in (snap.get("data") or {}).get("results") or []:
            a, n = row.get("app"), row.get("nranks")
            if a is None or n is None:
                continue
            if app is not None and a != app:
                continue
            if nranks is not None and int(n) != int(nranks):
                continue
            cell = (str(a), int(n))
            cols = grouped.setdefault(cell, {c: set() for c in _TREND_COLUMNS})
            observations[cell] = observations.get(cell, 0) + 1
            for c in _TREND_COLUMNS:
                v = row.get(c)
                if v is not None:
                    cols[c].add(v)
    rows = []
    for (a, n), cols in sorted(grouped.items()):
        row: dict[str, Any] = {"app": a, "nranks": n, "observations": observations[(a, n)]}
        for c in _TREND_COLUMNS:
            vals = sorted(cols[c])
            row[c] = (
                None
                if not vals
                else {"min": vals[0], "max": vals[-1], "values": len(vals)}
            )
        rows.append(row)
    return rows


def trend_quantiles(
    snapshots: list[dict[str, Any]], metric: str, quantiles: tuple[float, ...] = (0.5, 0.99)
) -> list[dict[str, Any]]:
    """Per-snapshot quantiles of a deterministic metrics histogram.

    Covers queries like "p99 call latency over the recorded history":
    each run snapshot carrying the named histogram contributes one row,
    ordered by content key (deterministic).
    """
    rows = []
    for snap in snapshots:
        hist = ((snap.get("data") or {}).get("metrics") or {}).get(metric)
        if not isinstance(hist, dict) or hist.get("type") != "histogram":
            continue
        row: dict[str, Any] = {"key": snap["key"][:12], "count": hist.get("count", 0)}
        for q in quantiles:
            row[f"p{int(q * 100)}"] = histogram_quantile(hist, q)
        rows.append(row)
    return sorted(rows, key=lambda r: r["key"])


def _fmt_cell(v: Any) -> str:
    if v is None:
        return "-"
    if isinstance(v, dict):
        lo, hi = v.get("min"), v.get("max")
        if lo == hi:
            return _fmt_cell(lo)
        return f"{_fmt_cell(lo)}..{_fmt_cell(hi)}"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def render_trend(rows: list[dict[str, Any]]) -> str:
    """Fixed-width trend table; line-for-line deterministic."""
    headers = ["app", "nranks", "n", "bytes", "msgs", "maxdeg", "coverage",
               "speedup", "pct_comm", "tcov", "tspeedup"]
    cols = ["app", "nranks", "observations", "total_bytes", "total_messages",
            "max_degree", "coverage", "speedup", "pct_comm",
            "temporal_coverage", "temporal_speedup"]
    table = [headers] + [
        [_fmt_cell(r.get(c)) for c in cols] for r in rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(widths))).rstrip())
    return "\n".join(lines) + "\n"
