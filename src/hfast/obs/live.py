"""``--live`` status view: render the event bus as a terminal dashboard.

Subscribes to the pipeline's :class:`~hfast.obs.stream.EventBus` and
keeps a per-cell state machine (queued → running → retry* → done/failed)
plus run-level counters (steals, retries, workers lost) and a
cost-model ETA. On a TTY the view repaints in place with ANSI escapes;
when the output stream is not a TTY (CI, piped logs) it degrades to
periodic single-line summaries so the run stays observable without
terminal control. Either way, consuming events never perturbs the run:
the bus swallows subscriber exceptions, and the view only reads event
payloads.

The view is wall-clock UI, deliberately outside the determinism
contract — nothing it computes feeds back into artifacts.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, TextIO

from hfast.obs.logs import get_logger

_STATE_ORDER = ("queued", "running", "retry", "done", "failed")
_GLYPH = {"queued": ".", "running": ">", "retry": "~", "done": "+", "failed": "!"}


class LiveView:
    """Event-bus subscriber rendering live run status.

    Call :meth:`start` after subscribing (``bus.subscribe(view.handle)``),
    :meth:`stop` in a ``finally`` — stop always emits a final summary
    line in non-TTY mode so logs record how the run ended.
    """

    def __init__(
        self,
        out: TextIO | None = None,
        refresh: float = 0.5,
        log_interval: float = 5.0,
        detector: Any = None,
        force_tty: bool | None = None,
    ):
        self.out = out if out is not None else sys.stderr
        self.refresh = refresh
        self.log_interval = log_interval
        self.detector = detector
        self.is_tty = force_tty if force_tty is not None else bool(
            getattr(self.out, "isatty", lambda: False)()
        )

        self._lock = threading.Lock()
        self._cells: dict[str, dict[str, Any]] = {}
        self._order: list[str] = []
        self.run_id: str | None = None
        self.scheduler: str | None = None
        self.workers: int | None = None
        self.counters = {"steals": 0, "retries": 0, "workers_lost": 0, "events": 0}
        self.stragglers: dict[str, dict[str, Any]] = {}
        self.anomalies: list[dict[str, Any]] = []
        self._started = time.monotonic()
        self._last_paint = 0.0
        self._painted_lines = 0
        self._stop = threading.Event()
        self._ticker: threading.Thread | None = None
        self._done = False

    # -- event intake -------------------------------------------------------

    def handle(self, event: dict[str, Any]) -> None:
        """Bus subscriber entry point; safe from any thread."""
        kind = event.get("event")
        with self._lock:
            self.counters["events"] += 1
            if kind == "run_start":
                self.run_id = event.get("run_id")
                self.scheduler = event.get("scheduler")
                self.workers = event.get("workers")
                for c in event.get("cells", []):
                    key = c.get("cell")
                    if key and key not in self._cells:
                        self._order.append(key)
                        self._cells[key] = {
                            "state": "queued",
                            "app": c.get("app"),
                            "nranks": c.get("nranks"),
                            "est": c.get("est"),
                            "worker": None,
                            "attempts": 0,
                            "started": None,
                            "wall_s": None,
                        }
            elif kind == "cell_state":
                self._on_cell_state(event)
            elif kind == "anomaly":
                self.anomalies.append(event)
                if event.get("kind") == "straggler":
                    self.stragglers[event.get("cell", "?")] = event
            elif kind == "worker_lost":
                self.counters["workers_lost"] += 1
            elif kind == "cell_start":
                key = event.get("cell")
                st = self._cells.get(key)
                if st is not None and st["state"] in ("queued", "retry"):
                    st["state"] = "running"
                    st["worker"] = event.get("worker")
                    st["started"] = time.monotonic()
            elif kind == "run_end":
                self._done = True
        self._maybe_paint()

    def _on_cell_state(self, event: dict[str, Any]) -> None:
        key = event.get("cell")
        if key is None:
            return
        st = self._cells.get(key)
        if st is None:
            self._order.append(key)
            st = self._cells[key] = {
                "state": "queued", "app": None, "nranks": None, "est": None,
                "worker": None, "attempts": 0, "started": None, "wall_s": None,
            }
        state = event.get("state")
        if state == "running":
            st["state"] = "running"
            st["worker"] = event.get("worker")
            st["attempts"] = max(st["attempts"], event.get("attempt", 1))
            st["started"] = time.monotonic()
            if event.get("stolen"):
                self.counters["steals"] += 1
        elif state == "retry":
            st["state"] = "retry"
            st["attempts"] = max(st["attempts"], event.get("attempt", 1))
            self.counters["retries"] += 1
        elif state in ("done", "failed"):
            st["state"] = state
            st["wall_s"] = event.get("wall_s")
            if event.get("attempt"):
                st["attempts"] = max(st["attempts"], event["attempt"])

    # -- derived state ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of the view state (for tests and renderers)."""
        with self._lock:
            counts = {s: 0 for s in _STATE_ORDER}
            for st in self._cells.values():
                counts[st["state"]] += 1
            return {
                "run_id": self.run_id,
                "scheduler": self.scheduler,
                "workers": self.workers,
                "cells": {k: dict(v) for k, v in self._cells.items()},
                "order": list(self._order),
                "counts": counts,
                "counters": dict(self.counters),
                "stragglers": dict(self.stragglers),
                "done": self._done,
                "eta_s": self._eta(),
            }

    def _eta(self) -> float | None:
        """Remaining-seconds estimate from cost-model weights + observed rate."""
        done_est = rem_est = 0.0
        have_est = False
        for st in self._cells.values():
            est = st.get("est")
            if est is None:
                continue
            have_est = True
            if st["state"] in ("done", "failed"):
                done_est += est
            else:
                rem_est += est
        if not have_est or done_est <= 0:
            return None
        elapsed = time.monotonic() - self._started
        return elapsed * rem_est / done_est

    def _check_stragglers_locked(self) -> None:
        if self.detector is None:
            return
        now = time.monotonic()
        for key, st in self._cells.items():
            if st["state"] != "running" or st["started"] is None or key in self.stragglers:
                continue
            if st.get("app") is None or st.get("nranks") is None:
                continue
            flag = self.detector.check_running(st["app"], st["nranks"], now - st["started"])
            if flag is not None:
                self.stragglers[key] = flag

    # -- rendering ----------------------------------------------------------

    def render_lines(self, snap: dict[str, Any] | None = None) -> list[str]:
        """Full multi-line dashboard (the TTY repaint body)."""
        s = snap or self.snapshot()
        counts = s["counts"]
        head = (
            f"hfast live · run {s['run_id'] or '-'} · {s['scheduler'] or 'serial'}"
            + (f" x{s['workers']}" if s["workers"] else "")
        )
        bar = " ".join(f"{_GLYPH[k]}{counts[k]}" for k in _STATE_ORDER)
        ctr = s["counters"]
        tail = f"steals={ctr['steals']} retries={ctr['retries']} lost={ctr['workers_lost']}"
        eta = s["eta_s"]
        if eta is not None:
            tail += f" eta={eta:.0f}s"
        lines = [head, f"  {bar}   {tail}"]
        for key in s["order"]:
            st = s["cells"][key]
            mark = _GLYPH[st["state"]]
            extra = ""
            if st["state"] == "running" and st["worker"] is not None:
                extra = f" w{st['worker']}"
            if st["attempts"] > 1:
                extra += f" a{st['attempts']}"
            if st["wall_s"] is not None:
                extra += f" {st['wall_s']:.2f}s"
            if key in s["stragglers"]:
                extra += " STRAGGLER"
            lines.append(f"  {mark} {key}{extra}")
        return lines

    def summary_line(self, snap: dict[str, Any] | None = None) -> str:
        """One-line digest (the non-TTY log format)."""
        s = snap or self.snapshot()
        c = s["counts"]
        ctr = s["counters"]
        parts = [
            f"live: {c['done']}+{c['failed']}/{len(s['order'])} done",
            f"running={c['running']}",
            f"retries={ctr['retries']}",
            f"steals={ctr['steals']}",
        ]
        if s["eta_s"] is not None:
            parts.append(f"eta={s['eta_s']:.0f}s")
        if s["stragglers"]:
            parts.append("stragglers=" + ",".join(sorted(s["stragglers"])))
        return " ".join(parts)

    def _maybe_paint(self) -> None:
        now = time.monotonic()
        interval = self.refresh if self.is_tty else self.log_interval
        if now - self._last_paint < interval and not self._done:
            return
        self._paint(now)

    def _paint(self, now: float) -> None:
        self._last_paint = now
        with self._lock:
            self._check_stragglers_locked()
        # Mirror the digest into the ambient structured log (no-op unless
        # configured) so live progress is joinable against the trace.
        log = get_logger(component="live")
        if log.enabled:
            snap = self.snapshot()
            log.debug(
                "live_summary",
                run_id=snap["run_id"],
                counts=snap["counts"],
                counters=snap["counters"],
                stragglers=sorted(snap["stragglers"]),
                done=snap["done"],
            )
        try:
            if self.is_tty:
                lines = self.render_lines()
                if self._painted_lines:
                    self.out.write(f"\x1b[{self._painted_lines}A")
                for line in lines:
                    self.out.write("\x1b[2K" + line + "\n")
                self._painted_lines = len(lines)
            else:
                self.out.write(self.summary_line() + "\n")
            self.out.flush()
        except (OSError, ValueError):
            pass  # a closed/broken output stream must never kill the run

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "LiveView":
        """Begin periodic repainting on a daemon thread."""
        self._ticker = threading.Thread(
            target=self._tick, name="hfast-live-view", daemon=True
        )
        self._ticker.start()
        return self

    def _tick(self) -> None:
        interval = self.refresh if self.is_tty else self.log_interval
        while not self._stop.wait(interval):
            self._paint(time.monotonic())

    def stop(self) -> None:
        """Stop the ticker and emit the final state unconditionally."""
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=2.0)
            self._ticker = None
        self._paint(time.monotonic())
