"""Structured span tracing.

A :class:`SpanTracer` hands out nested spans via a context manager or
decorator. Each finished span is emitted as one structured JSONL event
(stage name, wall time, peak RSS, nesting ids, custom attributes) to a
pluggable sink. When the tracer is disabled, ``span()`` returns a shared
no-op context manager, so instrumented hot paths cost almost nothing.
"""

from __future__ import annotations

import functools
import io
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

try:
    import resource

    def peak_rss_kb() -> int:
        """Peak resident set size of this process, in KiB."""
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return peak // 1024 if sys.platform == "darwin" else peak

except ImportError:  # pragma: no cover - non-POSIX fallback

    def peak_rss_kb() -> int:
        return 0


class NullSink:
    """Discards events; the disabled-mode sink."""

    def emit(self, event: dict[str, Any]) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Collects events in memory; handy for tests and report generation."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON object per line to a file or stream.

    Writes are buffered: emitting leaves the bytes in the stream's
    buffer, and ``flush()``/``close()`` push them out. A per-event flush
    costs a syscall per span — measurable on traces with thousands of
    events — and the only consumer that needs bytes promptly (the live
    streaming path) calls ``flush()`` itself.

    ``max_bytes`` turns on size-based rollover for owned file targets:
    when the next event would push the file past the cap, the file
    shifts to ``<path>.1`` (older siblings to ``.2``, ``.3``, ... up to
    ``max_files``) and a fresh file is opened. Rollover happens between
    whole lines, so every file in the chain is independently valid JSONL
    and the analytics loader can stitch the chain back together.
    """

    def __init__(
        self,
        target: str | os.PathLike | io.TextIOBase,
        max_bytes: int | None = None,
        max_files: int = 5,
    ):
        self._max_bytes = max_bytes
        self._max_files = max(1, int(max_files))
        if isinstance(target, (str, os.PathLike)):
            self._path: str | None = os.fspath(target)
            parent = os.path.dirname(self._path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh: io.TextIOBase = open(self._path, "a", encoding="utf-8")
            self._owns = True
            self._size = os.path.getsize(self._path)
        else:
            self._path = None
            self._fh = target
            self._owns = False
            self._size = 0

    def emit(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        if self._max_bytes is not None and self._path is not None:
            nbytes = len(line.encode("utf-8"))
            if self._size > 0 and self._size + nbytes > self._max_bytes:
                self._rotate()
            self._size += nbytes
        self._fh.write(line)

    def _rotate(self) -> None:
        # Local import: logs.py does not import trace, so no cycle.
        from hfast.obs.logs import rotate_siblings

        self._fh.flush()
        self._fh.close()
        assert self._path is not None
        rotate_siblings(self._path, self._max_files)
        self._fh = open(self._path, "a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        # Flush even for streams we don't own: close() ends the sink's
        # lifetime, and no buffered event may be lost either way.
        try:
            self._fh.flush()
        except ValueError:  # already-closed underlying stream
            pass
        if self._owns:
            self._fh.close()


class TeeSink:
    """Fans one event out to several sinks."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = list(sinks)

    def emit(self, event: dict[str, Any]) -> None:
        for s in self.sinks:
            s.emit(event)

    def flush(self) -> None:
        for s in self.sinks:
            s.flush()

    def close(self) -> None:
        for s in self.sinks:
            s.close()


class _NullSpan:
    """Shared no-op span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "depth", "_t0", "wall_s")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        attrs: dict[str, Any],
        span_id: int,
        parent_id: int | None,
        depth: int,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self._t0 = 0.0
        self.wall_s = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class SpanTracer:
    """Emits structured span events to a sink, tracking nesting."""

    def __init__(self, sink: Any = None, enabled: bool = True, clock: Callable[[], float] = time.perf_counter):
        self.sink = sink if sink is not None else (ListSink() if enabled else NullSink())
        self.enabled = enabled
        self.clock = clock
        self._stack: list[Span] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Any]:
        if not self.enabled:
            yield _NULL_SPAN
            return
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            tracer=self,
            name=name,
            attrs=dict(attrs),
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
        )
        self._next_id += 1
        self._stack.append(sp)
        sp._t0 = self.clock()
        error: str | None = None
        try:
            yield sp
        except BaseException as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            sp.wall_s = self.clock() - sp._t0
            self._stack.pop()
            event: dict[str, Any] = {
                "event": "span",
                "name": sp.name,
                "span_id": sp.span_id,
                "parent_id": sp.parent_id,
                "depth": sp.depth,
                "wall_s": sp.wall_s,
                "peak_rss_kb": peak_rss_kb(),
                "attrs": sp.attrs,
            }
            if error is not None:
                event["error"] = error
            self.sink.emit(event)

    def traced(self, name: str | None = None, **attrs: Any) -> Callable:
        """Decorator form of :meth:`span`."""

        def deco(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def reserve_ids(self, n: int) -> int:
        """Claim a block of n span ids; returns the offset to remap onto.

        Used when merging span events produced by worker processes (whose
        tracers all number from 1) into this tracer's id space.
        """
        base = self._next_id
        self._next_id += n
        return base

    def emit_event(self, kind: str, payload: dict[str, Any]) -> None:
        """Emit a non-span structured event (e.g. the run manifest)."""
        if not self.enabled:
            return
        event = {"event": kind}
        event.update(payload)
        self.sink.emit(event)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


def read_events(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
