"""Degree-constrained max-weight matching over columnar edge arrays.

The circuit matcher used to live inside :mod:`hfast.interconnect` as a
dict/set algorithm over a dense weight matrix — fine at 8–256 ranks,
but the temporal evaluator re-matches every timestep, which made the
pure-Python pass structure the wall-clock bottleneck long before the
paper's ultra-scale rank counts. This module is the matcher extracted
onto a structure-of-arrays edge list (``src``/``dst``/``w`` columns) with
three interchangeable backends:

- ``scalar`` — the pure-Python reference. Sequential greedy seed, then
  improvement passes driven by Python loops. Slow, obviously correct,
  and the identity baseline every other backend is pinned against.
- ``vector`` — the numpy backend. The greedy seed runs as b-Suitor-style
  rounds (accept every edge that is within the remaining capacity at
  *both* endpoints among surviving edges, drop edges touching saturated
  nodes, repeat), which produces exactly the sequential greedy result
  under the canonical total order; improvement candidates are computed
  with vectorized lower-bound filters so the sequential apply loop only
  touches edges that can actually improve the matching.
- ``incremental`` — :class:`IncrementalMatcher`: a persistent edge
  universe for re-matching evolving weights (the temporal evaluator's
  per-timestep traffic). Only edges whose weight changed are re-seeded:
  an unchanged step returns the cached assignment outright, an
  order-preserving change skips the canonical re-sort, and everything
  else falls back to a full vector match — so the result is *always*
  byte-identical to matching from scratch.

All backends share one improvement-pass implementation and one canonical
edge order — descending weight, ties in *stripe* order
``((dst - src) mod n, src, dst)`` — so their outputs are identical by
construction wherever they are not identical by proof;
``tests/test_matcher_properties.py`` and
``tests/test_matcher_differential.py`` pin both claims. The stripe
tie-break is a Latin-square round-robin: on tie-heavy traffic (a uniform
all-to-all) each stripe is a perfect permutation, so greedy saturates
every endpoint evenly instead of stranding capacity the way
pair-lexicographic order does.

Self-loops are never matched (a circuit from a node to itself is
physically meaningless — loopback traffic stays on the packet fabric),
zero- and negative-weight edges are never matched, and a degree bound of
zero yields an empty matching.
"""

from __future__ import annotations

import numpy as np

MATCHERS = ("scalar", "vector", "incremental")
DEFAULT_MATCHER = "vector"
DEFAULT_MAX_PASSES = 8


def canon_key(src: np.ndarray, dst: np.ndarray, nranks: int) -> np.ndarray:
    """Scalar tie-break key encoding ``((dst - src) mod n, src, dst)``.

    Fits int64 up to ~2M ranks (n**3 < 2**63); self-loops are excluded
    before this is ever computed, so the stripe component is in [1, n-1].
    """
    n = np.int64(max(1, nranks))
    stripe = (dst - src) % n
    return stripe * n * n + src * n + dst


def canonical_edges(
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract matchable edges from a dense matrix in canonical order.

    Keeps strictly-positive off-diagonal entries and sorts them by
    weight descending, ties by stripe order — the total order every
    backend processes edges in. Returns ``(src, dst, w)`` columns
    (int64, int64, float64).
    """
    src, dst = np.nonzero(weights > 0)
    keep = src != dst
    src, dst = src[keep].astype(np.int64), dst[keep].astype(np.int64)
    w = np.asarray(weights, dtype=np.float64)[src, dst]
    order = np.lexsort((canon_key(src, dst, weights.shape[0]), -w))
    return src[order], dst[order], w[order]


def sort_edges(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray, nranks: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonically order raw edge columns, dropping unmatchable edges."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    keep = (w > 0) & (src != dst)
    src, dst, w = src[keep], dst[keep], w[keep]
    order = np.lexsort((canon_key(src, dst, nranks), -w))
    return src[order], dst[order], w[order]


# -- greedy seed --------------------------------------------------------------


def greedy_seed_scalar(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray, nranks: int, bound: int
) -> list[int]:
    """Sequential greedy over canonical-ordered edges: the seed reference.

    Accepts each edge in order whenever both endpoints still have
    capacity. Returns accepted edge indexes in canonical order.
    """
    cap_out = [bound] * nranks
    cap_in = [bound] * nranks
    chosen: list[int] = []
    for ei in range(len(w)):
        s, d = int(src[ei]), int(dst[ei])
        if cap_out[s] > 0 and cap_in[d] > 0:
            cap_out[s] -= 1
            cap_in[d] -= 1
            chosen.append(ei)
    return chosen


def _group_rank(values: np.ndarray) -> np.ndarray:
    """0-based occurrence rank of each element within its value group.

    ``values`` is visited in array order; the i-th occurrence of a value
    gets rank i. Vectorized via a stable sort and run-length offsets.
    """
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    run_start = np.empty(len(values), dtype=bool)
    if len(values):
        run_start[0] = True
        run_start[1:] = sorted_vals[1:] != sorted_vals[:-1]
    idx = np.arange(len(values), dtype=np.int64)
    start_of_run = np.maximum.accumulate(np.where(run_start, idx, 0))
    ranks_sorted = idx - start_of_run
    ranks = np.empty(len(values), dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def greedy_seed_vector(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray, nranks: int, bound: int
) -> list[int]:
    """b-Suitor-style rounds; identical output to :func:`greedy_seed_scalar`.

    Each round accepts every surviving edge whose rank among surviving
    edges at *both* endpoints fits the remaining capacity there — a
    superset-free subset of what the sequential scan accepts — then
    discards edges touching saturated endpoints. Under a strict total
    order this converges to exactly the sequential greedy matching
    (Khan et al., the b-Suitor equivalence); the property suite pins the
    equality against :func:`greedy_seed_scalar` anyway.
    """
    if bound <= 0 or len(w) == 0:
        return []
    cap_out = np.full(nranks, bound, dtype=np.int64)
    cap_in = np.full(nranks, bound, dtype=np.int64)
    alive = np.arange(len(w), dtype=np.int64)
    chosen: list[np.ndarray] = []
    while alive.size:
        s, d = src[alive], dst[alive]
        acc = (_group_rank(s) < cap_out[s]) & (_group_rank(d) < cap_in[d])
        took = alive[acc]
        if not took.size:  # cannot happen (first edge always accepted)
            break
        chosen.append(took)
        cap_out -= np.bincount(src[took], minlength=nranks)
        cap_in -= np.bincount(dst[took], minlength=nranks)
        rest = alive[~acc]
        rest = rest[(cap_out[src[rest]] > 0) & (cap_in[dst[rest]] > 0)]
        alive = rest
    if not chosen:
        return []
    return np.sort(np.concatenate(chosen)).tolist()


# -- shared match state + improvement passes ----------------------------------


class _MatchState:
    """Edge-index-keyed selection state shared by every backend.

    Edges are referenced by their canonical index, so the per-node
    bookkeeping is sets of ints and weight lookups are array reads — the
    same state drives the scalar and vector backends, which is what makes
    their improvement passes identical by construction.
    """

    __slots__ = ("src", "dst", "w", "bound", "sel", "out_sel", "in_sel", "versions")

    def __init__(
        self, src: np.ndarray, dst: np.ndarray, w: np.ndarray, bound: int, nranks: int = 0
    ):
        self.src, self.dst, self.w = src, dst, w
        self.bound = bound
        self.sel: set[int] = set()
        self.out_sel: dict[int, set[int]] = {}
        self.in_sel: dict[int, set[int]] = {}
        # Monotonic per-node change counters: bumped on every add/remove
        # touching the node, so a stamp over a neighbourhood detects "any
        # selection change here since I last looked" with one sum.
        self.versions: list[int] = [0] * nranks

    def add(self, ei: int) -> None:
        self.sel.add(ei)
        s, d = int(self.src[ei]), int(self.dst[ei])
        self.out_sel.setdefault(s, set()).add(ei)
        self.in_sel.setdefault(d, set()).add(ei)
        self.versions[s] += 1
        self.versions[d] += 1

    def remove(self, ei: int) -> None:
        self.sel.discard(ei)
        s, d = int(self.src[ei]), int(self.dst[ei])
        self.out_sel[s].discard(ei)
        self.in_sel[d].discard(ei)
        self.versions[s] += 1
        self.versions[d] += 1

    def out_degree(self, node: int) -> int:
        return len(self.out_sel.get(node, ()))

    def in_degree(self, node: int) -> int:
        return len(self.in_sel.get(node, ()))

    def min_out(self, node: int) -> int:
        """Lightest selected egress edge at ``node`` (ties: lowest dst)."""
        return min(self.out_sel[node], key=lambda ei: (self.w[ei], self.dst[ei]))

    def min_in(self, node: int) -> int:
        """Lightest selected ingress edge at ``node`` (ties: lowest src)."""
        return min(self.in_sel[node], key=lambda ei: (self.w[ei], self.src[ei]))


def _swap_bounds(
    state: _MatchState, nranks: int, vector: bool
) -> tuple[np.ndarray, np.ndarray] | tuple[dict[int, float], dict[int, float]]:
    """Per-node lower bounds a would-be swap-in edge must beat.

    A saturated endpoint charges its lightest selected edge's weight;
    an unsaturated endpoint charges nothing. Snapshot semantics: both
    backends evaluate the bound against the state at pass start, so the
    candidate lists they iterate are identical.
    """
    if vector:
        lb_out = np.zeros(nranks, dtype=np.float64)
        lb_in = np.zeros(nranks, dtype=np.float64)
        for node, edges in state.out_sel.items():
            if len(edges) >= state.bound:
                lb_out[node] = state.w[state.min_out(node)]
        for node, edges in state.in_sel.items():
            if len(edges) >= state.bound:
                lb_in[node] = state.w[state.min_in(node)]
        return lb_out, lb_in
    lb_out_d: dict[int, float] = {}
    lb_in_d: dict[int, float] = {}
    for node, edges in state.out_sel.items():
        if len(edges) >= state.bound:
            lb_out_d[node] = float(state.w[state.min_out(node)])
    for node, edges in state.in_sel.items():
        if len(edges) >= state.bound:
            lb_in_d[node] = float(state.w[state.min_in(node)])
    return lb_out_d, lb_in_d


def _swap_candidates(state: _MatchState, nranks: int, vector: bool) -> list[int]:
    """Canonically-ordered edges worth visiting in a 1-for-k swap pass.

    An unselected edge can only displace blockers if its weight beats the
    sum of the lightest selected edge at each saturated endpoint. The
    vector backend evaluates that filter with one array expression; the
    scalar backend applies the same snapshot filter edge by edge. The
    filter is exact at pass start, so skipped edges cannot improve the
    matching unless an earlier swap in the same pass changes the state —
    and any such late-blooming candidate is picked up by the next pass
    (``improved`` stays True), identically in both backends.
    """
    if vector:
        lb_out, lb_in = _swap_bounds(state, nranks, vector=True)
        mask = state.w > lb_out[state.src] + lb_in[state.dst]
        if state.sel:
            mask[list(state.sel)] = False
        return np.flatnonzero(mask).tolist()
    lb_out_d, lb_in_d = _swap_bounds(state, nranks, vector=False)
    cands: list[int] = []
    for ei in range(len(state.w)):
        if ei in state.sel:
            continue
        bound = lb_out_d.get(int(state.src[ei]), 0.0) + lb_in_d.get(
            int(state.dst[ei]), 0.0
        )
        if float(state.w[ei]) > bound:
            cands.append(ei)
    return cands


def _swap_pass(state: _MatchState, candidates: list[int]) -> bool:
    """1-for-k swaps: evict the lightest blockers when one edge pays for them.

    Shared sequential apply loop — eligibility is re-checked against the
    live state, so both backends make the same sequence of moves given
    the same candidate list.
    """
    improved = False
    bound = state.bound
    for ei in candidates:
        if ei in state.sel:
            continue
        s, d = int(state.src[ei]), int(state.dst[ei])
        victims: list[int] = []
        if state.out_degree(s) >= bound:
            victims.append(state.min_out(s))
        if state.in_degree(d) >= bound:
            victims.append(state.min_in(d))
        if float(state.w[ei]) > sum(float(state.w[v]) for v in victims):
            for v in victims:
                state.remove(v)
            state.add(ei)
            improved = True
    return improved


class _AugmentMemo:
    """Per-match cache for the augment pass.

    ``cands``/``nbrs`` are static for a given edge universe (adjacency
    never changes within one match), so they are built lazily on an
    edge's first attempt and reused for every later pass. ``stamps``
    records, per edge, the neighbourhood version-sum at its last *failed*
    attempt: an attempt's outcome depends only on the selection state of
    edges incident to its endpoints and the degrees of their far nodes,
    all of which bump a version in ``nbrs`` when they change — so an
    unchanged sum proves the retry would fail identically and is skipped.
    """

    __slots__ = ("cands", "nbrs", "stamps", "order_key")

    def __init__(self, order_key: list[int] | None = None):
        self.cands: dict[int, list[int]] = {}
        self.nbrs: dict[int, list[int]] = {}
        self.stamps: dict[int, int] = {}
        #: (src, dst)-pair key per edge: the augment visit order.
        self.order_key = order_key or []


def _augment_pass(
    state: _MatchState,
    out_adj,
    in_adj,
    memo: _AugmentMemo,
) -> bool:
    """2-for-1 augments: drop one circuit when the freed endpoints can host
    a heavier *set* of replacements.

    Candidates are the edges incident to the dropped circuit's endpoints,
    visited in ascending canonical order — heaviest-first with the
    canonical tie-break for free. The scan simulates the replacement set
    against local degree deltas and commits only on improvement, so a
    failed attempt (the overwhelmingly common case) mutates nothing; the
    version stamps in ``memo`` then let later passes skip attempts whose
    neighbourhood has not changed since the failure.
    """
    improved = False
    bound = state.bound
    src, dst, w = state.src, state.dst, state.w
    versions = state.versions
    for ei in sorted(state.sel, key=memo.order_key.__getitem__):
        s, d = int(src[ei]), int(dst[ei])
        cands = memo.cands.get(ei)
        if cands is None:
            out_list = out_adj[s] if s < len(out_adj) else ()
            in_list = in_adj[d] if d < len(in_adj) else ()
            merged = set(map(int, out_list))
            merged.update(map(int, in_list))
            merged.discard(ei)
            memo.cands[ei] = cands = sorted(merged)
            nbr = {s, d}
            nbr.update(int(dst[c]) for c in out_list)
            nbr.update(int(src[c]) for c in in_list)
            memo.nbrs[ei] = sorted(nbr)
        vsum = 0
        for node in memo.nbrs[ei]:
            vsum += versions[node]
        if memo.stamps.get(ei) == vsum:
            continue
        wt = float(w[ei])
        sel = state.sel
        # Degrees as if ei were removed; candidate picks accumulate in
        # local deltas so nothing touches the real state until commit.
        s_out = state.out_degree(s) - 1
        d_in = state.in_degree(d) - 1
        out_delta: dict[int, int] = {}
        in_delta: dict[int, int] = {}
        picked: list[int] = []
        gained = 0.0
        for cand in cands:
            if cand in sel or cand in picked:
                continue
            if s_out >= bound and d_in >= bound:
                break
            cs, cd = int(src[cand]), int(dst[cand])
            out_ok = (
                s_out < bound
                if cs == s
                else state.out_degree(cs) + out_delta.get(cs, 0) < bound
            )
            in_ok = (
                d_in < bound
                if cd == d
                else state.in_degree(cd) + in_delta.get(cd, 0) < bound
            )
            if out_ok and in_ok:
                if cs == s:
                    s_out += 1
                else:
                    out_delta[cs] = out_delta.get(cs, 0) + 1
                if cd == d:
                    d_in += 1
                else:
                    in_delta[cd] = in_delta.get(cd, 0) + 1
                picked.append(cand)
                gained += float(w[cand])
        if gained > wt:
            state.remove(ei)
            for cand in picked:
                state.add(cand)
            improved = True
        else:
            memo.stamps[ei] = vsum
    return improved


def _adjacency_vector(
    src: np.ndarray, dst: np.ndarray, nranks: int
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """CSR-style per-node incident edge-index lists, built with two sorts."""
    out_adj: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * nranks
    in_adj: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * nranks
    idx = np.arange(len(src), dtype=np.int64)
    for values, target in ((src, out_adj), (dst, in_adj)):
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        bounds = np.flatnonzero(
            np.concatenate(([True], sorted_vals[1:] != sorted_vals[:-1]))
        )
        ends = np.append(bounds[1:], len(values))
        for b0, b1 in zip(bounds.tolist(), ends.tolist()):
            target[int(sorted_vals[b0])] = idx[order[b0:b1]]
    return out_adj, in_adj


def _adjacency_scalar(
    src: np.ndarray, dst: np.ndarray, nranks: int
) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """Pure-Python adjacency; same content as :func:`_adjacency_vector`."""
    out_adj: dict[int, list[int]] = {n: [] for n in range(nranks)}
    in_adj: dict[int, list[int]] = {n: [] for n in range(nranks)}
    for ei in range(len(src)):
        out_adj[int(src[ei])].append(ei)
        in_adj[int(dst[ei])].append(ei)
    return out_adj, in_adj


def _match_sorted(
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    nranks: int,
    bound: int,
    vector: bool,
    max_passes: int,
) -> list[tuple[int, int]]:
    """Match canonically-sorted edge columns; shared by every backend."""
    if bound <= 0 or len(w) == 0:
        return []
    state = _MatchState(src, dst, w, bound, nranks)
    seed = (greedy_seed_vector if vector else greedy_seed_scalar)(
        src, dst, w, nranks, bound
    )
    for ei in seed:
        state.add(ei)
    if vector:
        out_adj, in_adj = _adjacency_vector(src, dst, nranks)
    else:
        out_adj, in_adj = _adjacency_scalar(src, dst, nranks)

    class _DictAdj:
        """dict adjacency behind the list[int]-indexing the passes use."""

        def __init__(self, table):
            self.table = table

        def __getitem__(self, node):
            return self.table.get(node, ())

        def __len__(self):
            return nranks

    if not vector:
        out_adj, in_adj = _DictAdj(out_adj), _DictAdj(in_adj)

    memo = _AugmentMemo((src * np.int64(max(1, nranks)) + dst).tolist())
    for _ in range(max_passes):
        improved = _swap_pass(state, _swap_candidates(state, nranks, vector))
        improved |= _augment_pass(state, out_adj, in_adj, memo)
        if not improved:
            break
    return sorted((int(src[ei]), int(dst[ei])) for ei in state.sel)


def match_edges(
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    nranks: int,
    bound: int,
    backend: str = DEFAULT_MATCHER,
    max_passes: int = DEFAULT_MAX_PASSES,
    presorted: bool = False,
) -> list[tuple[int, int]]:
    """Degree-constrained max-weight matching over edge columns.

    Returns the selected circuits as a ``(src, dst)``-sorted list of
    tuples — the exact shape the interconnect evaluators consume. The
    ``incremental`` backend is stateless here and matches like
    ``vector``; use :class:`IncrementalMatcher` to exploit step-to-step
    deltas.
    """
    if backend not in MATCHERS:
        raise ValueError(f"unknown matcher backend {backend!r} (expected one of {MATCHERS})")
    if not presorted:
        src, dst, w = sort_edges(src, dst, w, nranks)
    return _match_sorted(
        src, dst, w, nranks, bound, vector=(backend != "scalar"), max_passes=max_passes
    )


def greedy_circuits(
    weights: np.ndarray, nranks: int, bound: int, vector: bool = True
) -> list[tuple[int, int]]:
    """Canonical-order greedy assignment over a dense matrix.

    The baseline the matching backends are measured against — and,
    because every backend seeds with exactly this solution, the floor
    they can never fall below.
    """
    if bound <= 0:
        return []
    src, dst, w = canonical_edges(weights)
    seed = (greedy_seed_vector if vector else greedy_seed_scalar)(
        src, dst, w, nranks, bound
    )
    return sorted((int(src[ei]), int(dst[ei])) for ei in seed)


# -- incremental re-matching --------------------------------------------------


class IncrementalMatcher:
    """Re-match evolving weights over a persistent edge universe.

    Construct once with the fixed link structure (``src``/``dst``
    columns, e.g. the nonzero links of an aggregate communication
    matrix), then call :meth:`rematch` with a full weight vector per
    timestep. Only edges whose weight changed since the previous step
    are re-seeded:

    - no changes → the cached assignment is returned outright;
    - changes that preserve the canonical order → the cached sort is
      reused and only the match itself re-runs;
    - anything else → full canonical re-sort + vector match.

    Every path produces a result byte-identical to matching the same
    weights from scratch; the delta bookkeeping is observable through
    :attr:`stats` for benchmarks and reports.
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nranks: int,
        bound: int,
        max_passes: int = DEFAULT_MAX_PASSES,
    ):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        order = np.lexsort((dst, src))  # storage order: (src, dst) ascending
        self.src, self.dst = src[order], dst[order]
        #: Permutation from constructor edge order to storage order:
        #: a caller holding weights aligned with its own (src, dst) inputs
        #: passes ``w[matcher.input_order]`` to :meth:`rematch`.
        self.input_order = order
        self.nranks = int(nranks)
        self.bound = int(bound)
        self.max_passes = int(max_passes)
        self._pair = self.src * np.int64(max(1, self.nranks)) + self.dst
        self._ckey = canon_key(self.src, self.dst, self.nranks)
        self._prev_w: np.ndarray | None = None
        self._active: np.ndarray | None = None  # active edge ids, canonical order
        self._result: list[tuple[int, int]] | None = None
        self.stats = {
            "steps": 0,
            "unchanged_hits": 0,
            "order_reuses": 0,
            "full_resorts": 0,
            "edges_reseeded": 0,
        }

    @classmethod
    def from_dense(
        cls, weights: np.ndarray, bound: int, max_passes: int = DEFAULT_MAX_PASSES
    ) -> "IncrementalMatcher":
        """Build the edge universe from a dense matrix's off-diagonal support."""
        src, dst = np.nonzero(weights)
        keep = src != dst
        return cls(src[keep], dst[keep], weights.shape[0], bound, max_passes=max_passes)

    def _canonical_active(self, w: np.ndarray) -> np.ndarray:
        """Active (w>0) edge ids in canonical order, reusing the cached
        order when the weight deltas did not disturb it."""
        active_mask = w > 0
        if self._active is not None and self._prev_w is not None:
            prev_active = self._prev_w > 0
            if bool(np.array_equal(active_mask, prev_active)):
                ao = self._active
                ow = w[ao]
                if self._order_holds(ow, ao):
                    self.stats["order_reuses"] += 1
                    return ao
        self.stats["full_resorts"] += 1
        ids = np.flatnonzero(active_mask)
        order = np.lexsort((self._ckey[ids], -w[ids]))
        return ids[order]

    def _order_holds(self, ow: np.ndarray, ao: np.ndarray) -> bool:
        """Is the cached canonical order still canonical under new weights?

        Weights must be non-increasing, and equal-weight runs must appear
        in ascending stripe-key order — exactly the canonical tie-break —
        which makes the check one vectorized scan.
        """
        if len(ow) < 2:
            return True
        a, b = ow[:-1], ow[1:]
        tie = a == b
        if not bool(np.all((a > b) | tie)):
            return False
        return bool(np.all(self._ckey[ao[:-1][tie]] < self._ckey[ao[1:][tie]]))

    def rematch(self, w: np.ndarray) -> list[tuple[int, int]]:
        """Circuits for one step's weights; byte-identical to from-scratch."""
        w = np.asarray(w, dtype=np.float64)
        if w.shape != self.src.shape:
            raise ValueError(
                f"weight vector has shape {w.shape}, edge universe has {self.src.shape}"
            )
        self.stats["steps"] += 1
        if self._prev_w is not None and self._result is not None:
            if bool(np.array_equal(w, self._prev_w)):
                self.stats["unchanged_hits"] += 1
                return list(self._result)
            self.stats["edges_reseeded"] += int(np.count_nonzero(w != self._prev_w))
        else:
            self.stats["edges_reseeded"] += int(np.count_nonzero(w > 0))
        active = self._canonical_active(w)
        result = _match_sorted(
            self.src[active],
            self.dst[active],
            w[active],
            self.nranks,
            self.bound,
            vector=True,
            max_passes=self.max_passes,
        )
        self._prev_w = w.copy()
        self._active = active
        self._result = result
        return list(result)

    def rematch_dense(self, weights: np.ndarray) -> list[tuple[int, int]]:
        """Convenience: gather this universe's weights from a dense matrix."""
        w = np.asarray(weights, dtype=np.float64)[self.src, self.dst]
        return self.rematch(w)
