"""Hybrid-interconnect evaluation (HFAST model).

Models the paper's proposal: a Hybrid Flexibly Assignable Switch Topology
where an optical circuit-switch layer provisions a bounded number of
dedicated circuits per node for the heaviest links, and the residue rides
a conventional packet network.

Two evaluators coexist:

- :func:`evaluate_hybrid` — one static circuit assignment over the whole
  trace, either the original greedy heaviest-first pass or a
  degree-constrained max-weight matching (greedy + augmenting swaps, no
  scipy) that never covers less traffic than greedy.
- :func:`evaluate_temporal` — slices the communication matrix into
  timesteps, re-matches circuits per step, and charges a reconfiguration
  cost for every circuit established after the initial configuration.
  With one timestep and zero reconfiguration cost it reduces exactly to
  the static matching evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from hfast.matrix import CommMatrix
from hfast.obs.profile import profiled
from hfast.timing import mix64, mix64_vec


@dataclass
class InterconnectConfig:
    circuits_per_node: int = 4
    circuit_bandwidth: float = 10e9  # bytes/s per provisioned circuit
    packet_bandwidth: float = 1e9  # bytes/s shared packet fabric per node
    circuit_latency: float = 1e-6  # s, source-routed circuit
    packet_latency: float = 10e-6  # s, store-and-forward packet path
    timesteps: int = 4  # temporal evaluator: number of traffic slices
    reconfig_cost: float = 1e-3  # s per circuit established after t=0 (MEMS-scale)
    slice_seed: int = 0  # seed for the deterministic traffic slicer

    def to_dict(self) -> dict:
        return {
            "circuits_per_node": self.circuits_per_node,
            "circuit_bandwidth": self.circuit_bandwidth,
            "packet_bandwidth": self.packet_bandwidth,
            "circuit_latency": self.circuit_latency,
            "packet_latency": self.packet_latency,
            "timesteps": self.timesteps,
            "reconfig_cost": self.reconfig_cost,
            "slice_seed": self.slice_seed,
        }


@dataclass
class HybridEvaluation:
    config: InterconnectConfig
    circuits: list[tuple[int, int]] = field(default_factory=list)
    circuit_bytes: int = 0
    packet_bytes: int = 0
    coverage: float = 0.0  # fraction of ptp bytes carried on circuits
    fully_provisionable: bool = False  # every active link got a circuit
    hybrid_time: float = 0.0
    packet_only_time: float = 0.0
    speedup: float = 1.0
    strategy: str = "greedy"

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "strategy": self.strategy,
            "n_circuits": len(self.circuits),
            "circuit_bytes": self.circuit_bytes,
            "packet_bytes": self.packet_bytes,
            "coverage": round(self.coverage, 4),
            "fully_provisionable": self.fully_provisionable,
            "hybrid_time": self.hybrid_time,
            "packet_only_time": self.packet_only_time,
            "speedup": round(self.speedup, 3),
        }


@dataclass
class TemporalEvaluation:
    """Per-timestep circuit assignment with reconfiguration cost."""

    config: InterconnectConfig
    timesteps: int = 1
    circuit_bytes: int = 0
    packet_bytes: int = 0
    coverage: float = 0.0
    n_reconfigs: int = 0  # circuits established after the initial configuration
    hybrid_time: float = 0.0
    packet_only_time: float = 0.0
    speedup: float = 1.0
    static_coverage: float = 0.0  # static-greedy baseline on the same matrix
    static_speedup: float = 1.0
    per_step: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "timesteps": self.timesteps,
            "reconfig_cost": self.config.reconfig_cost,
            "circuit_bytes": self.circuit_bytes,
            "packet_bytes": self.packet_bytes,
            "coverage": round(self.coverage, 4),
            "n_reconfigs": self.n_reconfigs,
            "hybrid_time": self.hybrid_time,
            "packet_only_time": self.packet_only_time,
            "speedup": round(self.speedup, 3),
            "static_coverage": round(self.static_coverage, 4),
            "static_speedup": round(self.static_speedup, 3),
            "per_step": list(self.per_step),
        }


def assign_circuits(cm: CommMatrix, circuits_per_node: int) -> list[tuple[int, int]]:
    """Greedy heaviest-first circuit assignment under a per-node budget.

    Circuits are unidirectional (src -> dst); each endpoint spends one
    circuit from its budget (egress at src, ingress at dst). Kept as the
    baseline the matching assignment is measured against.
    """
    n = cm.nranks
    egress = np.zeros(n, dtype=np.int64)
    ingress = np.zeros(n, dtype=np.int64)
    flat = cm.bytes_matrix.ravel()
    order = np.argsort(flat)[::-1]
    assigned: list[tuple[int, int]] = []
    for idx in order:
        if flat[idx] <= 0:
            break
        src, dst = int(idx // n), int(idx % n)
        if egress[src] < circuits_per_node and ingress[dst] < circuits_per_node:
            egress[src] += 1
            ingress[dst] += 1
            assigned.append((src, dst))
    return assigned


def assign_circuits_matching(
    weights: np.ndarray, circuits_per_node: int, max_passes: int = 8
) -> list[tuple[int, int]]:
    """Degree-constrained max-weight matching via greedy + augmenting swaps.

    A b-matching on the bipartite egress/ingress graph: each node may
    source and sink at most ``circuits_per_node`` circuits. Seeds with the
    greedy heaviest-first solution, then repeatedly swaps in an unselected
    edge whenever its weight exceeds the lightest selected edges blocking
    it (one per saturated endpoint). Every accepted swap strictly
    increases total matched weight, so the result never covers less than
    greedy — without scipy's linear_sum_assignment and in
    O(passes * E * b) time.

    Deterministic: the seed visits edges in exactly the order
    :func:`assign_circuits` uses (so on tie-heavy matrices, where greedy's
    outcome depends on tie-breaking, the seed IS the greedy baseline and
    swaps can only improve on it); the swap passes visit edges in
    (-weight, src, dst) order and pick victims by (weight, node) order.
    """
    if circuits_per_node <= 0:
        return []
    n = weights.shape[0]
    src_idx, dst_idx = np.nonzero(weights > 0)
    w = weights[src_idx, dst_idx].astype(np.float64)
    order = np.lexsort((dst_idx, src_idx, -w))
    edges = [(int(src_idx[i]), int(dst_idx[i]), float(w[i])) for i in order]

    sel: dict[tuple[int, int], float] = {}
    by_src: dict[int, set[int]] = {}
    by_dst: dict[int, set[int]] = {}

    def add(s: int, d: int, wt: float) -> None:
        sel[(s, d)] = wt
        by_src.setdefault(s, set()).add(d)
        by_dst.setdefault(d, set()).add(s)

    def remove(s: int, d: int) -> None:
        del sel[(s, d)]
        by_src[s].discard(d)
        by_dst[d].discard(s)

    # Greedy seed, edge order bit-identical to assign_circuits.
    flat = weights.ravel()
    for idx in np.argsort(flat)[::-1]:
        if flat[idx] <= 0:
            break
        s, d = int(idx // n), int(idx % n)
        if len(by_src.get(s, ())) < circuits_per_node and len(
            by_dst.get(d, ())
        ) < circuits_per_node:
            add(s, d, float(flat[idx]))

    # Per-endpoint candidate lists for the 2-for-1 augment, heaviest first.
    edges_by_src: dict[int, list[tuple[int, int, float]]] = {}
    edges_by_dst: dict[int, list[tuple[int, int, float]]] = {}
    for s, d, wt in edges:
        edges_by_src.setdefault(s, []).append((s, d, wt))
        edges_by_dst.setdefault(d, []).append((s, d, wt))

    for _ in range(max_passes):
        improved = False
        # 1-for-k swaps: evict the lightest blockers when one heavier edge
        # pays for them (also restores maximality after prior evictions).
        for s, d, wt in edges:
            if (s, d) in sel:
                continue
            victims: list[tuple[int, int]] = []
            if len(by_src.get(s, ())) >= circuits_per_node:
                d2 = min(by_src[s], key=lambda x: (sel[(s, x)], x))
                victims.append((s, d2))
            if len(by_dst.get(d, ())) >= circuits_per_node:
                s2 = min(by_dst[d], key=lambda x: (sel[(x, d)], x))
                victims.append((s2, d))
            if wt > sum(sel[v] for v in victims):
                for vs, vd in victims:
                    remove(vs, vd)
                add(s, d, wt)
                improved = True
        # 2-for-1 augments: drop one circuit when the freed endpoints can
        # host a heavier *set* of replacements (e.g. greedy grabbed a
        # heavy edge whose two blocked neighbors together carry more).
        for s, d in sorted(sel):
            wt = sel[(s, d)]
            remove(s, d)
            picked: list[tuple[int, int, float]] = []
            for es, ed, ew in sorted(
                edges_by_src.get(s, []) + edges_by_dst.get(d, []),
                key=lambda e: (-e[2], e[0], e[1]),
            ):
                if (es, ed) in sel or (es, ed) == (s, d):
                    continue
                if len(by_src.get(es, ())) < circuits_per_node and len(
                    by_dst.get(ed, ())
                ) < circuits_per_node:
                    add(es, ed, ew)
                    picked.append((es, ed, ew))
            if sum(e[2] for e in picked) > wt:
                improved = True
            else:
                for es, ed, _ in picked:
                    remove(es, ed)
                add(s, d, wt)
        if not improved:
            break
    return sorted(sel)


def _node_finish_times(
    bytes_m: np.ndarray,
    msg_m: np.ndarray,
    circuit_mask: np.ndarray,
    config: InterconnectConfig,
) -> tuple[float, float]:
    """(hybrid, packet-only) fabric finish times for one traffic matrix.

    Per-node serialization: a node's cost is the max over its circuit and
    packet egress streams; the fabric finishes when the slowest node does.
    """
    circ_bytes_out = np.where(circuit_mask, bytes_m, 0).sum(axis=1)
    pkt_bytes_out = np.where(~circuit_mask, bytes_m, 0).sum(axis=1)
    circ_msgs = np.where(circuit_mask, msg_m, 0).sum(axis=1)
    pkt_msgs = np.where(~circuit_mask, msg_m, 0).sum(axis=1)

    circ_time = circ_bytes_out / config.circuit_bandwidth + circ_msgs * config.circuit_latency
    pkt_time = pkt_bytes_out / config.packet_bandwidth + pkt_msgs * config.packet_latency
    hybrid = float(np.maximum(circ_time, pkt_time).max()) if bytes_m.shape[0] else 0.0

    all_time = (
        bytes_m.sum(axis=1) / config.packet_bandwidth
        + msg_m.sum(axis=1) * config.packet_latency
    )
    packet_only = float(all_time.max()) if bytes_m.shape[0] else 0.0
    return hybrid, packet_only


@profiled("interconnect_eval")
def evaluate_hybrid(
    cm: CommMatrix,
    config: InterconnectConfig | None = None,
    strategy: str = "greedy",
) -> HybridEvaluation:
    """Static circuit assignment over the whole-trace matrix."""
    if strategy not in ("greedy", "matching"):
        raise ValueError(f"unknown strategy {strategy!r} (expected 'greedy' or 'matching')")
    config = config or InterconnectConfig()
    ev = HybridEvaluation(config=config, strategy=strategy)
    total = cm.total_bytes
    if total == 0:
        ev.fully_provisionable = True
        return ev

    if strategy == "matching":
        ev.circuits = assign_circuits_matching(cm.bytes_matrix, config.circuits_per_node)
    else:
        ev.circuits = assign_circuits(cm, config.circuits_per_node)
    circuit_mask = np.zeros_like(cm.bytes_matrix, dtype=bool)
    for src, dst in ev.circuits:
        circuit_mask[src, dst] = True

    ev.circuit_bytes = int(cm.bytes_matrix[circuit_mask].sum())
    ev.packet_bytes = total - ev.circuit_bytes
    ev.coverage = ev.circuit_bytes / total
    active_links = cm.nonzero_links()
    ev.fully_provisionable = len(ev.circuits) == active_links

    ev.hybrid_time, ev.packet_only_time = _node_finish_times(
        cm.bytes_matrix, cm.msg_matrix, circuit_mask, config
    )
    if ev.hybrid_time > 0:
        ev.speedup = ev.packet_only_time / ev.hybrid_time
    return ev


_SLICE_STREAM_START = 0x51A5E5EED5EED5E5
_SLICE_STREAM_WIDTH = 0x1DEA7EA51DEA7EA5


def slice_traffic(
    cm: CommMatrix, timesteps: int, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Deterministically slice a matrix into per-timestep (bytes, msgs).

    Each active link gets a hash-derived activity window (start phase and
    width in steps); its volume spreads evenly across the window with the
    integer remainder going to the earliest steps. Summing the slices
    reproduces the input matrices exactly, and ``timesteps=1`` returns
    the input unchanged — the paper's time-varying (AMR-style) traffic
    stand-in for traces that only carry aggregate counts.
    """
    if timesteps <= 1:
        return [(cm.bytes_matrix.copy(), cm.msg_matrix.copy())]
    T = int(timesteps)
    n = cm.nranks
    src, dst = np.nonzero(cm.bytes_matrix)
    if src.size == 0:
        zero_b = np.zeros((n, n), dtype=cm.bytes_matrix.dtype)
        zero_m = np.zeros((n, n), dtype=cm.msg_matrix.dtype)
        return [(zero_b.copy(), zero_m.copy()) for _ in range(T)]
    link_bytes = cm.bytes_matrix[src, dst].astype(np.int64)
    link_msgs = cm.msg_matrix[src, dst].astype(np.int64)

    key = (src.astype(np.uint64) << np.uint64(32)) ^ dst.astype(np.uint64)
    h = mix64_vec(np.uint64(mix64(seed & ((1 << 64) - 1))) ^ key)
    start = (h % np.uint64(T)).astype(np.int64)
    width = (
        mix64_vec(h ^ np.uint64(_SLICE_STREAM_WIDTH)) % np.uint64(T)
    ).astype(np.int64) + 1  # in [1, T]

    out: list[tuple[np.ndarray, np.ndarray]] = []
    for t in range(T):
        rel = (t - start) % T
        active = rel < width
        slices = []
        for vol in (link_bytes, link_msgs):
            base, rem = vol // width, vol % width
            share = np.where(active, base + (rel < rem), 0)
            mat = np.zeros((n, n), dtype=np.int64)
            mat[src, dst] = share
            slices.append(mat)
        out.append((slices[0], slices[1]))
    return out


@profiled("interconnect_temporal")
def evaluate_temporal(
    cm: CommMatrix, config: InterconnectConfig | None = None
) -> TemporalEvaluation:
    """Per-timestep max-weight circuit assignment with reconfiguration cost.

    Circuits are re-matched on every traffic slice. Keeping a circuit is
    free; establishing one after the initial configuration costs
    ``config.reconfig_cost`` seconds, and the matcher sees an equivalent
    keep-bonus (``reconfig_cost * circuit_bandwidth`` bytes) on carried
    links so it only reconfigures when the traffic gain pays for the
    switch-over. With ``timesteps=1`` and zero cost this is exactly the
    static matching evaluation.
    """
    config = config or InterconnectConfig()
    T = max(1, int(config.timesteps))
    ev = TemporalEvaluation(config=config, timesteps=T)
    total = cm.total_bytes
    if total == 0:
        return ev

    static = evaluate_hybrid(cm, config, strategy="greedy")
    ev.static_coverage = static.coverage
    ev.static_speedup = static.speedup

    keep_bonus = config.reconfig_cost * config.circuit_bandwidth
    prev: set[tuple[int, int]] = set()
    circuit_bytes = 0
    hybrid_time = 0.0
    packet_time = 0.0
    for t, (bytes_t, msgs_t) in enumerate(slice_traffic(cm, T, config.slice_seed)):
        weights = bytes_t.astype(np.float64)
        if t > 0 and keep_bonus > 0.0 and prev:
            for s, d in prev:
                if bytes_t[s, d] > 0:
                    weights[s, d] += keep_bonus
        circuits = assign_circuits_matching(weights, config.circuits_per_node)
        changes = 0 if t == 0 else sum(1 for e in circuits if e not in prev)

        circuit_mask = np.zeros_like(bytes_t, dtype=bool)
        for s, d in circuits:
            circuit_mask[s, d] = True
        step_circuit_bytes = int(bytes_t[circuit_mask].sum())
        circuit_bytes += step_circuit_bytes

        step_hybrid, step_packet = _node_finish_times(bytes_t, msgs_t, circuit_mask, config)
        hybrid_time += step_hybrid + changes * config.reconfig_cost
        packet_time += step_packet
        ev.n_reconfigs += changes
        step_total = int(bytes_t.sum())
        ev.per_step.append(
            {
                "t": t,
                "n_circuits": len(circuits),
                "changes": changes,
                "coverage": round(step_circuit_bytes / step_total, 4) if step_total else 0.0,
            }
        )
        prev = set(circuits)

    ev.circuit_bytes = circuit_bytes
    ev.packet_bytes = total - circuit_bytes
    ev.coverage = circuit_bytes / total
    ev.hybrid_time = hybrid_time
    ev.packet_only_time = packet_time
    if hybrid_time > 0:
        ev.speedup = packet_time / hybrid_time
    return ev
