"""Hybrid-interconnect evaluation (HFAST model).

Models the paper's proposal: a Hybrid Flexibly Assignable Switch Topology
where an optical circuit-switch layer provisions a bounded number of
dedicated circuits per node for the heaviest links, and the residue rides
a conventional packet network. The evaluator greedily assigns circuits,
reports traffic coverage, and estimates transfer time for the hybrid vs. a
packet-only fabric with a simple latency/bandwidth model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from hfast.matrix import CommMatrix
from hfast.obs.profile import profiled


@dataclass
class InterconnectConfig:
    circuits_per_node: int = 4
    circuit_bandwidth: float = 10e9  # bytes/s per provisioned circuit
    packet_bandwidth: float = 1e9  # bytes/s shared packet fabric per node
    circuit_latency: float = 1e-6  # s, source-routed circuit
    packet_latency: float = 10e-6  # s, store-and-forward packet path

    def to_dict(self) -> dict:
        return {
            "circuits_per_node": self.circuits_per_node,
            "circuit_bandwidth": self.circuit_bandwidth,
            "packet_bandwidth": self.packet_bandwidth,
            "circuit_latency": self.circuit_latency,
            "packet_latency": self.packet_latency,
        }


@dataclass
class HybridEvaluation:
    config: InterconnectConfig
    circuits: list[tuple[int, int]] = field(default_factory=list)
    circuit_bytes: int = 0
    packet_bytes: int = 0
    coverage: float = 0.0  # fraction of ptp bytes carried on circuits
    fully_provisionable: bool = False  # every active link got a circuit
    hybrid_time: float = 0.0
    packet_only_time: float = 0.0
    speedup: float = 1.0

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "n_circuits": len(self.circuits),
            "circuit_bytes": self.circuit_bytes,
            "packet_bytes": self.packet_bytes,
            "coverage": round(self.coverage, 4),
            "fully_provisionable": self.fully_provisionable,
            "hybrid_time": self.hybrid_time,
            "packet_only_time": self.packet_only_time,
            "speedup": round(self.speedup, 3),
        }


def assign_circuits(cm: CommMatrix, circuits_per_node: int) -> list[tuple[int, int]]:
    """Greedy heaviest-first circuit assignment under a per-node budget.

    Circuits are unidirectional (src -> dst); each endpoint spends one
    circuit from its budget (egress at src, ingress at dst).
    """
    n = cm.nranks
    egress = np.zeros(n, dtype=np.int64)
    ingress = np.zeros(n, dtype=np.int64)
    flat = cm.bytes_matrix.ravel()
    order = np.argsort(flat)[::-1]
    assigned: list[tuple[int, int]] = []
    for idx in order:
        if flat[idx] <= 0:
            break
        src, dst = int(idx // n), int(idx % n)
        if egress[src] < circuits_per_node and ingress[dst] < circuits_per_node:
            egress[src] += 1
            ingress[dst] += 1
            assigned.append((src, dst))
    return assigned


@profiled("interconnect_eval")
def evaluate_hybrid(cm: CommMatrix, config: InterconnectConfig | None = None) -> HybridEvaluation:
    config = config or InterconnectConfig()
    ev = HybridEvaluation(config=config)
    total = cm.total_bytes
    if total == 0:
        ev.fully_provisionable = True
        return ev

    ev.circuits = assign_circuits(cm, config.circuits_per_node)
    circuit_mask = np.zeros_like(cm.bytes_matrix, dtype=bool)
    for src, dst in ev.circuits:
        circuit_mask[src, dst] = True

    ev.circuit_bytes = int(cm.bytes_matrix[circuit_mask].sum())
    ev.packet_bytes = total - ev.circuit_bytes
    ev.coverage = ev.circuit_bytes / total
    active_links = cm.nonzero_links()
    ev.fully_provisionable = len(ev.circuits) == active_links

    # Per-node serialization: a node's cost is the max over its circuit and
    # packet egress streams; the fabric finishes when the slowest node does.
    n = cm.nranks
    circ_bytes_out = np.where(circuit_mask, cm.bytes_matrix, 0).sum(axis=1)
    pkt_bytes_out = np.where(~circuit_mask, cm.bytes_matrix, 0).sum(axis=1)
    circ_msgs = np.where(circuit_mask, cm.msg_matrix, 0).sum(axis=1)
    pkt_msgs = np.where(~circuit_mask, cm.msg_matrix, 0).sum(axis=1)

    circ_time = circ_bytes_out / config.circuit_bandwidth + circ_msgs * config.circuit_latency
    pkt_time = pkt_bytes_out / config.packet_bandwidth + pkt_msgs * config.packet_latency
    ev.hybrid_time = float(np.maximum(circ_time, pkt_time).max()) if n else 0.0

    all_bytes_out = cm.bytes_matrix.sum(axis=1)
    all_msgs = cm.msg_matrix.sum(axis=1)
    ev.packet_only_time = float(
        (all_bytes_out / config.packet_bandwidth + all_msgs * config.packet_latency).max()
    )
    if ev.hybrid_time > 0:
        ev.speedup = ev.packet_only_time / ev.hybrid_time
    return ev
