"""Hybrid-interconnect evaluation (HFAST model).

Models the paper's proposal: a Hybrid Flexibly Assignable Switch Topology
where an optical circuit-switch layer provisions a bounded number of
dedicated circuits per node for the heaviest links, and the residue rides
a conventional packet network.

Two evaluators coexist:

- :func:`evaluate_hybrid` — one static circuit assignment over the whole
  trace, either the original greedy heaviest-first pass or a
  degree-constrained max-weight matching (greedy + augmenting swaps, no
  scipy) that never covers less traffic than greedy.
- :func:`evaluate_temporal` — slices the communication matrix into
  timesteps, re-matches circuits per step, and charges a reconfiguration
  cost for every circuit established after the initial configuration.
  With one timestep and zero reconfiguration cost it reduces exactly to
  the static matching evaluation.

The matching itself lives in :mod:`hfast.matcher` as three backends
selected by ``InterconnectConfig.matcher``: the pure-Python ``scalar``
reference, the vectorized ``vector`` default, and ``incremental``
(step-to-step delta re-matching in the temporal evaluator). All three are
byte-identical on every input — pinned by the differential suite — so the
choice only moves wall time. The temporal evaluator works entirely on
columnar edge arrays: traffic is sliced for all timesteps in one batched
``(T, E)`` computation and per-node finish times come from edge
``bincount`` sums (exact for integer traffic, hence float-identical to
the dense row sums).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from hfast.matcher import (
    DEFAULT_MATCHER,
    MATCHERS,
    IncrementalMatcher,
    greedy_circuits,
    match_edges,
)
from hfast.matrix import CommMatrix
from hfast.obs.profile import profiled
from hfast.timing import mix64, mix64_vec


@dataclass
class InterconnectConfig:
    circuits_per_node: int = 4
    circuit_bandwidth: float = 10e9  # bytes/s per provisioned circuit
    packet_bandwidth: float = 1e9  # bytes/s shared packet fabric per node
    circuit_latency: float = 1e-6  # s, source-routed circuit
    packet_latency: float = 10e-6  # s, store-and-forward packet path
    timesteps: int = 4  # temporal evaluator: number of traffic slices
    reconfig_cost: float = 1e-3  # s per circuit established after t=0 (MEMS-scale)
    slice_seed: int = 0  # seed for the deterministic traffic slicer
    matcher: str = DEFAULT_MATCHER  # matching backend: scalar | vector | incremental

    def to_dict(self) -> dict:
        return {
            "circuits_per_node": self.circuits_per_node,
            "circuit_bandwidth": self.circuit_bandwidth,
            "packet_bandwidth": self.packet_bandwidth,
            "circuit_latency": self.circuit_latency,
            "packet_latency": self.packet_latency,
            "timesteps": self.timesteps,
            "reconfig_cost": self.reconfig_cost,
            "slice_seed": self.slice_seed,
            "matcher": self.matcher,
        }


def _check_matcher(config: InterconnectConfig) -> None:
    if config.matcher not in MATCHERS:
        raise ValueError(
            f"unknown matcher {config.matcher!r} (expected one of {MATCHERS})"
        )


@dataclass
class HybridEvaluation:
    config: InterconnectConfig
    circuits: list[tuple[int, int]] = field(default_factory=list)
    circuit_bytes: int = 0
    packet_bytes: int = 0
    coverage: float = 0.0  # fraction of ptp bytes carried on circuits
    fully_provisionable: bool = False  # every active link got a circuit
    hybrid_time: float = 0.0
    packet_only_time: float = 0.0
    speedup: float = 1.0
    strategy: str = "greedy"

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "strategy": self.strategy,
            "n_circuits": len(self.circuits),
            "circuit_bytes": self.circuit_bytes,
            "packet_bytes": self.packet_bytes,
            "coverage": round(self.coverage, 4),
            "fully_provisionable": self.fully_provisionable,
            "hybrid_time": self.hybrid_time,
            "packet_only_time": self.packet_only_time,
            "speedup": round(self.speedup, 3),
        }


@dataclass
class TemporalEvaluation:
    """Per-timestep circuit assignment with reconfiguration cost."""

    config: InterconnectConfig
    timesteps: int = 1
    circuit_bytes: int = 0
    packet_bytes: int = 0
    coverage: float = 0.0
    n_reconfigs: int = 0  # circuits established after the initial configuration
    hybrid_time: float = 0.0
    packet_only_time: float = 0.0
    speedup: float = 1.0
    static_coverage: float = 0.0  # static-greedy baseline on the same matrix
    static_speedup: float = 1.0
    per_step: list[dict] = field(default_factory=list)
    # Incremental-backend delta counters (steps, unchanged_hits,
    # order_reuses, full_resorts, edges_reseeded); wall-clock-free, but
    # kept out of to_dict so every backend serializes identically.
    matcher_stats: dict | None = None

    def to_dict(self) -> dict:
        return {
            "timesteps": self.timesteps,
            "reconfig_cost": self.config.reconfig_cost,
            "circuit_bytes": self.circuit_bytes,
            "packet_bytes": self.packet_bytes,
            "coverage": round(self.coverage, 4),
            "n_reconfigs": self.n_reconfigs,
            "hybrid_time": self.hybrid_time,
            "packet_only_time": self.packet_only_time,
            "speedup": round(self.speedup, 3),
            "static_coverage": round(self.static_coverage, 4),
            "static_speedup": round(self.static_speedup, 3),
            "per_step": list(self.per_step),
        }


def assign_circuits(cm: CommMatrix, circuits_per_node: int) -> list[tuple[int, int]]:
    """Greedy heaviest-first circuit assignment under a per-node budget.

    Circuits are unidirectional (src -> dst); each endpoint spends one
    circuit from its budget (egress at src, ingress at dst). Edges are
    visited in the canonical ``(-weight, src, dst)`` order shared with
    the matching backends, so the greedy baseline is reproducible from
    sparse edge lists at any scale. Kept as the baseline the matching
    assignment is measured against; self-loops never get circuits.
    """
    return greedy_circuits(cm.bytes_matrix, cm.nranks, circuits_per_node)


def assign_circuits_matching(
    weights: np.ndarray,
    circuits_per_node: int,
    max_passes: int = 8,
    backend: str = DEFAULT_MATCHER,
) -> list[tuple[int, int]]:
    """Degree-constrained max-weight matching via greedy + augmenting swaps.

    A b-matching on the bipartite egress/ingress graph: each node may
    source and sink at most ``circuits_per_node`` circuits. Seeds with
    the canonical-order greedy solution, then alternates 1-for-k swap and
    2-for-1 augment passes; every accepted move strictly increases total
    matched weight, so the result never covers less than greedy — without
    scipy's linear_sum_assignment and in O(passes * E * b) time.

    Deterministic: edges are visited in ``(-weight, src, dst)`` order and
    victims picked by ``(weight, node)`` order, identically in every
    backend (the implementation is :func:`hfast.matcher.match_edges`).
    Zero-weight edges, self-loops, and a zero budget never contribute.
    """
    if circuits_per_node <= 0:
        return []
    n = weights.shape[0]
    src, dst = np.nonzero(np.asarray(weights) > 0)
    keep = src != dst
    src, dst = src[keep].astype(np.int64), dst[keep].astype(np.int64)
    w = np.asarray(weights, dtype=np.float64)[src, dst]
    return match_edges(
        src, dst, w, n, circuits_per_node, backend=backend, max_passes=max_passes
    )


def _node_finish_times(
    bytes_m: np.ndarray,
    msg_m: np.ndarray,
    circuit_mask: np.ndarray,
    config: InterconnectConfig,
) -> tuple[float, float]:
    """(hybrid, packet-only) fabric finish times for one traffic matrix.

    Per-node serialization: a node's cost is the max over its circuit and
    packet egress streams; the fabric finishes when the slowest node does.
    """
    circ_bytes_out = np.where(circuit_mask, bytes_m, 0).sum(axis=1)
    pkt_bytes_out = np.where(~circuit_mask, bytes_m, 0).sum(axis=1)
    circ_msgs = np.where(circuit_mask, msg_m, 0).sum(axis=1)
    pkt_msgs = np.where(~circuit_mask, msg_m, 0).sum(axis=1)

    circ_time = circ_bytes_out / config.circuit_bandwidth + circ_msgs * config.circuit_latency
    pkt_time = pkt_bytes_out / config.packet_bandwidth + pkt_msgs * config.packet_latency
    hybrid = float(np.maximum(circ_time, pkt_time).max()) if bytes_m.shape[0] else 0.0

    all_time = (
        bytes_m.sum(axis=1) / config.packet_bandwidth
        + msg_m.sum(axis=1) * config.packet_latency
    )
    packet_only = float(all_time.max()) if bytes_m.shape[0] else 0.0
    return hybrid, packet_only


def _edge_finish_times(
    src: np.ndarray,
    dst: np.ndarray,
    edge_bytes: np.ndarray,
    edge_msgs: np.ndarray,
    circuit_edges: np.ndarray,
    nranks: int,
    config: InterconnectConfig,
) -> tuple[float, float]:
    """:func:`_node_finish_times` over edge columns instead of a dense matrix.

    Per-node sums come from ``bincount`` with float64 weights; integer
    traffic sums below 2**53 are exact in float64 regardless of order, so
    the result is float-identical to the dense row sums — which is what
    lets the temporal evaluator stay columnar while still reducing
    exactly to the dense static evaluation at ``timesteps=1``.
    """
    if nranks <= 0:
        return 0.0, 0.0
    circ = np.zeros(len(edge_bytes), dtype=bool)
    circ[circuit_edges] = True
    eb = edge_bytes.astype(np.float64)
    em = edge_msgs.astype(np.float64)

    def node_sum(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return np.bincount(src[mask], weights=values[mask], minlength=nranks)

    circ_time = (
        node_sum(eb, circ) / config.circuit_bandwidth
        + node_sum(em, circ) * config.circuit_latency
    )
    pkt_time = (
        node_sum(eb, ~circ) / config.packet_bandwidth
        + node_sum(em, ~circ) * config.packet_latency
    )
    hybrid = float(np.maximum(circ_time, pkt_time).max())

    all_bytes = np.bincount(src, weights=eb, minlength=nranks)
    all_msgs = np.bincount(src, weights=em, minlength=nranks)
    packet_only = float(
        (all_bytes / config.packet_bandwidth + all_msgs * config.packet_latency).max()
    )
    return hybrid, packet_only


@profiled("interconnect_eval")
def evaluate_hybrid(
    cm: CommMatrix,
    config: InterconnectConfig | None = None,
    strategy: str = "greedy",
) -> HybridEvaluation:
    """Static circuit assignment over the whole-trace matrix."""
    if strategy not in ("greedy", "matching"):
        raise ValueError(f"unknown strategy {strategy!r} (expected 'greedy' or 'matching')")
    config = config or InterconnectConfig()
    _check_matcher(config)
    ev = HybridEvaluation(config=config, strategy=strategy)
    total = cm.total_bytes
    if total == 0:
        ev.fully_provisionable = True
        return ev

    if strategy == "matching":
        ev.circuits = assign_circuits_matching(
            cm.bytes_matrix, config.circuits_per_node, backend=config.matcher
        )
    else:
        ev.circuits = assign_circuits(cm, config.circuits_per_node)
    circuit_mask = np.zeros_like(cm.bytes_matrix, dtype=bool)
    for src, dst in ev.circuits:
        circuit_mask[src, dst] = True

    ev.circuit_bytes = int(cm.bytes_matrix[circuit_mask].sum())
    ev.packet_bytes = total - ev.circuit_bytes
    ev.coverage = ev.circuit_bytes / total
    active_links = cm.nonzero_links()
    ev.fully_provisionable = len(ev.circuits) == active_links

    ev.hybrid_time, ev.packet_only_time = _node_finish_times(
        cm.bytes_matrix, cm.msg_matrix, circuit_mask, config
    )
    if ev.hybrid_time > 0:
        ev.speedup = ev.packet_only_time / ev.hybrid_time
    return ev


_SLICE_STREAM_START = 0x51A5E5EED5EED5E5
_SLICE_STREAM_WIDTH = 0x1DEA7EA51DEA7EA5


def slice_edge_volumes(
    src: np.ndarray,
    dst: np.ndarray,
    link_bytes: np.ndarray,
    link_msgs: np.ndarray,
    timesteps: int,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched per-timestep traffic shares for a link list: two (T, E) planes.

    Each link gets a hash-derived activity window (start phase and width
    in steps) from its ``(src, dst)`` pair alone; its volume spreads
    evenly across the window with the integer remainder going to the
    earliest steps. Column sums reproduce the input volumes exactly. All
    timesteps are computed in one vectorized pass — this is the batched
    core both :func:`slice_traffic` and the temporal evaluator consume.
    """
    link_bytes = np.asarray(link_bytes, dtype=np.int64)
    link_msgs = np.asarray(link_msgs, dtype=np.int64)
    if timesteps <= 1:
        return link_bytes[None, :].copy(), link_msgs[None, :].copy()
    T = int(timesteps)
    key = (np.asarray(src).astype(np.uint64) << np.uint64(32)) ^ np.asarray(dst).astype(
        np.uint64
    )
    h = mix64_vec(np.uint64(mix64(seed & ((1 << 64) - 1))) ^ key)
    start = (h % np.uint64(T)).astype(np.int64)
    width = (
        mix64_vec(h ^ np.uint64(_SLICE_STREAM_WIDTH)) % np.uint64(T)
    ).astype(np.int64) + 1  # in [1, T]

    rel = (np.arange(T, dtype=np.int64)[:, None] - start[None, :]) % T  # (T, E)
    active = rel < width[None, :]
    planes = []
    for vol in (link_bytes, link_msgs):
        base, rem = vol // width, vol % width
        planes.append(np.where(active, base[None, :] + (rel < rem[None, :]), 0))
    return planes[0], planes[1]


def _link_support(cm: CommMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Links carrying any traffic: bytes *or* messages nonzero.

    The union matters: a link with messages but zero bytes (e.g. pure
    synchronization) still owes packet latency, and slicing over the
    bytes support alone would silently drop its message volume.
    """
    src, dst = np.nonzero((cm.bytes_matrix > 0) | (cm.msg_matrix > 0))
    return src.astype(np.int64), dst.astype(np.int64)


def slice_traffic(
    cm: CommMatrix, timesteps: int, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Deterministically slice a matrix into per-timestep (bytes, msgs).

    Dense view over :func:`slice_edge_volumes`. Summing the slices
    reproduces the input matrices exactly (message-only links included),
    and ``timesteps=1`` returns the input unchanged — the paper's
    time-varying (AMR-style) traffic stand-in for traces that only carry
    aggregate counts.
    """
    if timesteps <= 1:
        return [(cm.bytes_matrix.copy(), cm.msg_matrix.copy())]
    T = int(timesteps)
    n = cm.nranks
    src, dst = _link_support(cm)
    if src.size == 0:
        zero_b = np.zeros((n, n), dtype=cm.bytes_matrix.dtype)
        zero_m = np.zeros((n, n), dtype=cm.msg_matrix.dtype)
        return [(zero_b.copy(), zero_m.copy()) for _ in range(T)]
    eb, em = slice_edge_volumes(
        src, dst, cm.bytes_matrix[src, dst], cm.msg_matrix[src, dst], T, seed
    )
    out: list[tuple[np.ndarray, np.ndarray]] = []
    for t in range(T):
        mats = []
        for plane in (eb, em):
            mat = np.zeros((n, n), dtype=np.int64)
            mat[src, dst] = plane[t]
            mats.append(mat)
        out.append((mats[0], mats[1]))
    return out


@profiled("interconnect_temporal")
def evaluate_temporal(
    cm: CommMatrix, config: InterconnectConfig | None = None
) -> TemporalEvaluation:
    """Per-timestep max-weight circuit assignment with reconfiguration cost.

    Circuits are re-matched on every traffic slice. Keeping a circuit is
    free; establishing one after the initial configuration costs
    ``config.reconfig_cost`` seconds, and the matcher sees an equivalent
    keep-bonus (``reconfig_cost * circuit_bandwidth`` bytes) on carried
    links so it only reconfigures when the traffic gain pays for the
    switch-over. With ``timesteps=1`` and zero cost this is exactly the
    static matching evaluation.

    The whole evaluator is columnar: one batched ``(T, E)`` slicing pass,
    per-step weights gathered from the step's row, and finish times from
    edge ``bincount`` sums. ``config.matcher`` picks the backend; the
    ``incremental`` backend re-matches through one persistent
    :class:`hfast.matcher.IncrementalMatcher`, whose delta counters land
    in ``matcher_stats``. An empty traffic slice keeps the previous
    configuration standing (circuits idle, they don't tear down), so
    traffic resuming after a gap is not charged for circuits it already
    held — and the first slice that establishes any circuits is the free
    initial configuration, whether or not it is literally step 0.
    """
    config = config or InterconnectConfig()
    _check_matcher(config)
    T = max(1, int(config.timesteps))
    ev = TemporalEvaluation(config=config, timesteps=T)
    total = cm.total_bytes
    if total == 0:
        return ev

    static = evaluate_hybrid(cm, config, strategy="greedy")
    ev.static_coverage = static.coverage
    ev.static_speedup = static.speedup

    n = cm.nranks
    src, dst = _link_support(cm)
    eb, em = slice_edge_volumes(
        src, dst, cm.bytes_matrix[src, dst], cm.msg_matrix[src, dst], T, config.slice_seed
    )

    # Matchable universe: off-diagonal links (self-loop traffic stays on
    # the packet fabric). np.nonzero is row-major, so this is already in
    # (src, dst) ascending order — the IncrementalMatcher's storage order.
    match_ids = np.flatnonzero(src != dst)
    pair_m = src[match_ids] * np.int64(max(1, n)) + dst[match_ids]
    bound = config.circuits_per_node
    inc: IncrementalMatcher | None = None
    if config.matcher == "incremental" and match_ids.size and bound > 0:
        inc = IncrementalMatcher(src[match_ids], dst[match_ids], n, bound)

    keep_bonus = config.reconfig_cost * config.circuit_bandwidth
    prev_mask = np.zeros(match_ids.size, dtype=bool)
    have_prev = False
    circuit_bytes = 0
    hybrid_time = 0.0
    packet_time = 0.0
    for t in range(T):
        w = eb[t, match_ids].astype(np.float64)
        if have_prev and keep_bonus > 0.0:
            w[prev_mask & (w > 0)] += keep_bonus
        if inc is not None:
            circuits = inc.rematch(w)
        else:
            circuits = match_edges(
                src[match_ids], dst[match_ids], w, n, bound, backend=config.matcher
            )
        if circuits:
            qp = np.fromiter(
                (s * n + d for s, d in circuits), dtype=np.int64, count=len(circuits)
            )
            sel_pos = np.searchsorted(pair_m, qp)
        else:
            sel_pos = np.empty(0, dtype=np.int64)
        sel_mask = np.zeros(match_ids.size, dtype=bool)
        sel_mask[sel_pos] = True
        changes = int(np.count_nonzero(sel_mask & ~prev_mask)) if have_prev else 0

        sel_edges = match_ids[sel_pos]
        step_circuit_bytes = int(eb[t, sel_edges].sum())
        circuit_bytes += step_circuit_bytes

        step_hybrid, step_packet = _edge_finish_times(
            src, dst, eb[t], em[t], sel_edges, n, config
        )
        hybrid_time += step_hybrid + changes * config.reconfig_cost
        packet_time += step_packet
        ev.n_reconfigs += changes
        step_total = int(eb[t].sum())
        ev.per_step.append(
            {
                "t": t,
                "n_circuits": len(circuits),
                "changes": changes,
                "coverage": round(step_circuit_bytes / step_total, 4) if step_total else 0.0,
            }
        )
        if circuits:
            prev_mask = sel_mask
            have_prev = True

    ev.circuit_bytes = circuit_bytes
    ev.packet_bytes = total - circuit_bytes
    ev.coverage = circuit_bytes / total
    ev.hybrid_time = hybrid_time
    ev.packet_only_time = packet_time
    if hybrid_time > 0:
        ev.speedup = packet_time / hybrid_time
    if inc is not None:
        ev.matcher_stats = dict(inc.stats)
    return ev
