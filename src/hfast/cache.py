"""Repro-cache: content-addressed storage of synthesized traces.

Cache files live in ``.repro_cache/`` and are named
``{app}_p{nranks}_{key}.json`` where ``key`` is the first 12 hex chars of
the sha256 of the canonical JSON of ``{app, nranks, overrides}``.

The on-disk schema is format 3: format 2 plus a ``metadata.timing``
descriptor and real per-record ``total_time``/``min_time``/``max_time``
values. Legacy format-2 documents (the seed corpus) still load through a
read shim — the deterministic LogGP model re-synthesizes their timing at
load time, so downstream analysis sees the same trace either way.

Every load runs the schema validator; a malformed file raises
:class:`CacheValidationError` naming the offending path and field.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from hfast.obs.profile import profiled
from hfast.records import Trace
from hfast.timing import DEFAULT_TIMING_SEED, apply_timing

CACHE_FORMAT = 3
SUPPORTED_FORMATS = (2, 3)
DEFAULT_CACHE_DIR = ".repro_cache"

_REQUIRED_TOP_KEYS = ("format", "metadata", "call_totals", "records")
_REQUIRED_META_KEYS = ("app", "nranks", "overrides")
_REQUIRED_RECORD_KEYS = (
    "rank",
    "call",
    "size",
    "peer",
    "region",
    "count",
    "total_time",
    "min_time",
    "max_time",
)
_NON_NEGATIVE_RECORD_KEYS = ("rank", "size", "peer", "count", "total_time", "min_time", "max_time")


class CacheValidationError(ValueError):
    """A cache document failed schema validation."""

    def __init__(self, path: str | os.PathLike | None, message: str):
        self.path = str(path) if path is not None else "<memory>"
        super().__init__(f"{self.path}: {message}")


def cache_key(app: str, nranks: int, overrides: dict[str, Any] | None = None) -> str:
    """Stable 12-hex-char key for an (app, nranks, overrides) request."""
    payload = json.dumps(
        {"app": app, "nranks": nranks, "overrides": overrides or {}},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def cache_path(
    cache_dir: str | os.PathLike,
    app: str,
    nranks: int,
    overrides: dict[str, Any] | None = None,
) -> Path:
    return Path(cache_dir) / f"{app}_p{nranks}_{cache_key(app, nranks, overrides)}.json"


def validate_document(doc: Any, path: str | os.PathLike | None = None) -> None:
    """Validate a format-3 (or legacy format-2) cache document."""
    if not isinstance(doc, dict):
        raise CacheValidationError(path, f"document must be an object, got {type(doc).__name__}")
    for key in _REQUIRED_TOP_KEYS:
        if key not in doc:
            raise CacheValidationError(path, f"missing required top-level key '{key}'")
    if doc["format"] not in SUPPORTED_FORMATS:
        raise CacheValidationError(
            path,
            f"unsupported format version {doc['format']!r} "
            f"(expected one of {SUPPORTED_FORMATS})",
        )
    meta = doc["metadata"]
    if not isinstance(meta, dict):
        raise CacheValidationError(path, "'metadata' must be an object")
    for key in _REQUIRED_META_KEYS:
        if key not in meta:
            raise CacheValidationError(path, f"metadata missing required key '{key}'")
    if doc["format"] >= 3:
        if "timing" not in meta:
            raise CacheValidationError(path, "format-3 metadata missing required key 'timing'")
        timing = meta["timing"]
        if timing is not None:
            if not isinstance(timing, dict):
                raise CacheValidationError(path, "metadata.timing must be an object or null")
            for key in ("model", "seed"):
                if key not in timing:
                    raise CacheValidationError(
                        path, f"metadata.timing missing required key '{key}'"
                    )
    nranks = meta["nranks"]
    if not isinstance(nranks, int) or nranks <= 0:
        raise CacheValidationError(path, f"metadata.nranks must be a positive int, got {nranks!r}")
    if not isinstance(doc["call_totals"], dict):
        raise CacheValidationError(path, "'call_totals' must be an object")
    records = doc["records"]
    if not isinstance(records, list):
        raise CacheValidationError(path, "'records' must be a list")
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            raise CacheValidationError(path, f"records[{i}] must be an object")
        for key in _REQUIRED_RECORD_KEYS:
            if key not in rec:
                raise CacheValidationError(path, f"records[{i}] missing required field '{key}'")
        for key in _NON_NEGATIVE_RECORD_KEYS:
            value = rec[key]
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise CacheValidationError(
                    path, f"records[{i}].{key} must be non-negative, got {value!r}"
                )
        for key in ("rank", "peer"):
            if rec[key] >= nranks:
                raise CacheValidationError(
                    path,
                    f"records[{i}].{key}={rec[key]} out of range for nranks={nranks}",
                )
        if rec["min_time"] > rec["max_time"]:
            raise CacheValidationError(
                path,
                f"records[{i}].min_time={rec['min_time']!r} exceeds "
                f"max_time={rec['max_time']!r}",
            )
    totals: dict[str, int] = {}
    for rec in records:
        totals[rec["call"]] = totals.get(rec["call"], 0) + rec["count"]
    if totals != doc["call_totals"]:
        raise CacheValidationError(
            path, "call_totals does not match the sum of record counts"
        )


@dataclass
class CacheStats:
    """Hit/miss bookkeeping surfaced in the run manifest."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    validation_failures: int = 0
    entries: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "validation_failures": self.validation_failures,
            "entries": list(self.entries),
        }


def _read_json_mmap(path: Path) -> Any:
    """Parse a JSON file through a read-only memory map.

    Large corpus documents (a 32K-rank trace is hundreds of MB) are read
    straight out of the page cache in one mapped extent — no buffered
    read loop, no intermediate text decode (``json.loads`` takes the raw
    bytes). Empty files and filesystems that refuse to map (procfs, some
    network mounts) fall back to a plain read; JSON errors propagate
    unchanged so callers keep one error path.
    """
    with open(path, "rb") as fh:
        try:
            with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as mm:
                return json.loads(mm[:])
        except (ValueError, OSError) as exc:
            if isinstance(exc, json.JSONDecodeError):
                raise
            # mmap of an empty file raises ValueError; unmappable
            # filesystems raise OSError. Both degrade to a normal read.
            fh.seek(0)
            return json.loads(fh.read().decode("utf-8"))


class ReproCache:
    """Load/store traces keyed by (app, nranks, overrides)."""

    def __init__(self, cache_dir: str | os.PathLike = DEFAULT_CACHE_DIR, readonly: bool = False):
        self.cache_dir = Path(cache_dir)
        self.readonly = readonly
        self.stats = CacheStats()

    def path_for(self, app: str, nranks: int, overrides: dict[str, Any] | None = None) -> Path:
        return cache_path(self.cache_dir, app, nranks, overrides)

    @profiled("cache_load")
    def load(
        self,
        app: str,
        nranks: int,
        overrides: dict[str, Any] | None = None,
        timing_seed: int | None = DEFAULT_TIMING_SEED,
    ) -> Trace | None:
        """Return the cached trace, or None on a miss.

        Unless ``timing_seed`` is None, the loaded trace is guaranteed to
        carry timing at that seed: legacy format-2 documents (and format-3
        documents timed at a different seed) are deterministically
        re-timed in memory — the read shim that keeps the seed corpus
        useful after the format bump.
        """
        path = self.path_for(app, nranks, overrides)
        if not path.exists():
            self.stats.misses += 1
            self.stats.entries.append(
                {"app": app, "nranks": nranks, "outcome": "miss", "path": str(path)}
            )
            return None
        try:
            doc = _read_json_mmap(path)
        except json.JSONDecodeError as exc:
            self.stats.validation_failures += 1
            raise CacheValidationError(path, f"invalid JSON: {exc}") from exc
        try:
            validate_document(doc, path)
        except CacheValidationError:
            self.stats.validation_failures += 1
            raise
        self.stats.hits += 1
        self.stats.entries.append(
            {"app": app, "nranks": nranks, "outcome": "hit", "path": str(path)}
        )
        trace = Trace.from_document(doc)
        if timing_seed is not None and (
            trace.timing is None or trace.timing.get("seed") != timing_seed
        ):
            apply_timing(trace, seed=timing_seed)
        return trace

    @profiled("cache_store")
    def store(self, trace: Trace) -> Path:
        path = self.path_for(trace.app, trace.nranks, trace.overrides)
        if self.readonly:
            return path
        doc = trace.to_document()
        validate_document(doc, path)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)
        self.stats.stores += 1
        self.stats.entries.append(
            {
                "app": trace.app,
                "nranks": trace.nranks,
                "outcome": "store",
                "path": str(path),
            }
        )
        return path

    def list_entries(self) -> list[Path]:
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*.json"))
