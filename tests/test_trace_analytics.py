"""Post-mortem trace analytics: loader tolerance, tree building,
critical paths, rollups, and scheduler attribution.

The acceptance bar: all three backends (serial / pool / stealing) emit
the same tree shape with the same span ids, so the cost-weighted
critical path and the stage structure must be *identical* across them —
and stay identical when the journal, not the live trace, is the source.
"""

import json
import os

import pytest

from hfast.obs.analytics import (
    TraceError,
    TraceTree,
    attribution,
    cell_critical_paths,
    critical_path,
    diff_traces,
    load_events,
    render_gantt,
    stage_rollup,
    summarize,
)
from hfast.obs.profile import Observability
from hfast.pipeline import run_pipeline
from hfast.sched.cost import estimate_cell_cost

APPS = ["cactus", "gtc", "lbmhd", "paratec"]
SCALES = {app: [8] for app in APPS}


def span(span_id, name, parent_id, depth, wall_s, **attrs):
    return {
        "event": "span", "span_id": span_id, "name": name,
        "parent_id": parent_id, "depth": depth, "wall_s": wall_s,
        "attrs": attrs,
    }


def make_events():
    """Two-cell synthetic trace: gtc_p8 is the wall hog, cactus_p8 the
    analytic-cost hog (at p8 cactus has the largest estimated cost)."""
    return [
        span(1, "pipeline", None, 0, 1.0),
        span(2, "cell", 1, 1, 0.6, app="gtc", nranks=8),
        span(3, "analyze_app", 2, 2, 0.55, app="gtc", nranks=8),
        span(4, "cache_load", 3, 3, 0.1),
        span(5, "synthesize", 3, 3, 0.4),
        span(6, "cell", 1, 1, 0.3, app="cactus", nranks=8),
        span(7, "analyze_app", 6, 2, 0.25, app="cactus", nranks=8),
    ]


# ---------------------------------------------------------------------------
# Tolerant loading


def test_truncated_final_line_is_skipped_with_warning(tmp_path):
    path = tmp_path / "t.jsonl"
    good = [json.dumps(ev) for ev in make_events()[:2]]
    path.write_text("\n".join(good) + "\n" + '{"event": "span", "span_id": 99, "na')
    warns = []
    events = load_events(path, warn=warns.append)
    assert len(events) == 2
    assert any("truncated final line" in w for w in warns)
    # A crash artifact must never be fatal, even under --strict.
    assert len(load_events(path, strict=True, warn=warns.append)) == 2


def test_malformed_interior_line_skipped_unless_strict(tmp_path):
    path = tmp_path / "t.jsonl"
    lines = [json.dumps(make_events()[0]), "definitely not json",
             json.dumps(make_events()[1])]
    path.write_text("\n".join(lines) + "\n")
    warns = []
    assert len(load_events(path, warn=warns.append)) == 2
    assert any("malformed" in w for w in warns)
    with pytest.raises(TraceError, match="malformed"):
        load_events(path, strict=True, warn=warns.append)


def test_blank_lines_and_non_object_records(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(json.dumps(make_events()[0]) + "\n\n[1, 2]\n" +
                    json.dumps(make_events()[1]) + "\n")
    warns = []
    assert len(load_events(path, warn=warns.append)) == 2  # [1,2] is not an event


def test_missing_file_and_empty_dir_raise(tmp_path):
    with pytest.raises(TraceError, match="no such trace file"):
        load_events(tmp_path / "nope.jsonl")
    with pytest.raises(TraceError, match="no .jsonl"):
        load_events(tmp_path)


def test_directory_resolves_to_newest_jsonl(tmp_path):
    old, new = tmp_path / "old.jsonl", tmp_path / "new.jsonl"
    old.write_text(json.dumps(span(1, "stale", None, 0, 1.0)) + "\n")
    new.write_text(json.dumps(span(1, "fresh", None, 0, 1.0)) + "\n")
    os.utime(old, (1, 1))
    os.utime(new, (2, 2))
    events = load_events(tmp_path)
    assert events[0]["name"] == "fresh"


# ---------------------------------------------------------------------------
# Tree building


def test_tree_links_children_in_span_id_order():
    tree = TraceTree(make_events())
    assert not tree.empty
    assert tree.root.name == "pipeline"
    assert [c.span_id for c in tree.root.children] == [2, 6]
    assert [n.span_id for n in tree.walk()] == [1, 2, 3, 4, 5, 6, 7]
    assert [c.label for c in tree.cells()] == ["cell[gtc_p8]", "cell[cactus_p8]"]
    # Self time: wall minus child walls, clamped at zero.
    assert tree.root.self_s == pytest.approx(0.1)
    assert tree.nodes[3].self_s == pytest.approx(0.05)


def test_orphaned_span_promoted_to_root_with_warning():
    warns = []
    tree = TraceTree(make_events() + [span(10, "stray", 99, 1, 0.01)], warn=warns.append)
    assert {r.name for r in tree.roots} == {"pipeline", "stray"}
    assert any("dangling parent" in w for w in warns)
    assert tree.root.name == "pipeline"  # the pipeline span still wins


def test_duplicate_span_id_keeps_first():
    warns = []
    dup = span(2, "impostor", 1, 1, 9.9)
    tree = TraceTree(make_events() + [dup], warn=warns.append)
    assert tree.nodes[2].name == "cell"
    assert any("duplicate span id" in w for w in warns)


def test_root_falls_back_to_heaviest_when_no_pipeline_span():
    tree = TraceTree([span(1, "a", None, 0, 0.1), span(2, "b", None, 0, 0.9)])
    assert tree.root.name == "b"


def test_empty_tree_degrades_gracefully():
    tree = TraceTree([])
    assert tree.empty and tree.root is None
    assert critical_path(tree) == []
    assert stage_rollup(tree) == []
    assert attribution(tree) is None
    assert summarize(tree)["spans"] == 0


# ---------------------------------------------------------------------------
# Critical path and rollups


def test_wall_critical_path_follows_heaviest_child():
    path = critical_path(TraceTree(make_events()))
    assert [e["label"] for e in path] == [
        "pipeline", "cell[gtc_p8]", "analyze_app[gtc_p8]", "synthesize",
    ]
    assert [e["weight"] for e in path] == [1.0, 0.6, 0.55, 0.4]


def test_cost_critical_path_is_wall_independent():
    path = critical_path(TraceTree(make_events()), weight="cost")
    # cactus_p8 has the largest analytic cost at p8, despite the smaller wall.
    assert [e["label"] for e in path] == [
        "pipeline", "cell[cactus_p8]", "analyze_app[cactus_p8]",
    ]
    assert path[0]["weight"] == path[1]["weight"] > 0
    assert path[1]["weight"] == pytest.approx(estimate_cell_cost("cactus", 8), rel=1e-6)


def test_unknown_weight_rejected():
    with pytest.raises(ValueError, match="unknown weight"):
        critical_path(TraceTree(make_events()), weight="vibes")


def test_cell_critical_paths_keyed_by_cell():
    paths = cell_critical_paths(TraceTree(make_events()))
    assert set(paths) == {"gtc_p8", "cactus_p8"}
    assert [e["label"] for e in paths["gtc_p8"]] == [
        "cell[gtc_p8]", "analyze_app[gtc_p8]", "synthesize",
    ]


def test_stage_rollup_partitions_run_wall():
    rows = stage_rollup(TraceTree(make_events()))
    by_stage = {r["stage"]: r for r in rows}
    assert by_stage["cell"]["calls"] == 2
    assert by_stage["synthesize"]["self_s"] == pytest.approx(0.4)
    assert by_stage["synthesize"]["pct_self"] == pytest.approx(40.0)
    # Self times sum to the root wall exactly (the flamegraph invariant).
    assert sum(r["self_s"] for r in rows) == pytest.approx(1.0)
    assert rows[0]["stage"] == "synthesize"  # heaviest self time first


# ---------------------------------------------------------------------------
# Scheduler attribution


def timing(app, worker, t_start, t_end, **kw):
    return {"event": "cell_timing", "app": app, "nranks": 8, "worker": worker,
            "t_start": t_start, "t_end": t_end, "ok": True, "attempts": 1, **kw}


def test_attribution_queue_wait_execute_and_lanes():
    events = [span(1, "pipeline", None, 0, 1.0),
              timing("gtc", 0, 100.0, 100.5),
              timing("cactus", 1, 100.1, 100.4)]
    attr = attribution(TraceTree(events))
    assert attr["lanes"] == ["w0", "w1"]
    assert attr["span_s"] == pytest.approx(0.5)
    assert attr["total_execute_s"] == pytest.approx(0.8)
    assert attr["total_queue_wait_s"] == pytest.approx(0.1)
    assert attr["utilization"] == pytest.approx(0.8)
    assert len(attr["busy_timeline"]) == 20
    cells = {c["cell"]: c for c in attr["cells"]}
    assert cells["gtc_p8"]["queue_wait_s"] == 0.0
    assert cells["cactus_p8"]["queue_wait_s"] == pytest.approx(0.1)


def test_attribution_charges_failed_attempts_to_retry_exec():
    events = [span(1, "pipeline", None, 0, 1.0),
              timing("gtc", 0, 100.0, 100.5, attempts=2),
              {"event": "sched_task", "cell": "gtc_p8", "ok": False, "wall_s": 0.2}]
    attr = attribution(TraceTree(events))
    assert attr["total_retry_exec_s"] == pytest.approx(0.2)
    assert attr["cells"][0]["retry_exec_s"] == pytest.approx(0.2)


def test_attribution_none_without_cell_timing():
    assert attribution(TraceTree(make_events())) is None
    assert "no cell_timing" in render_gantt(TraceTree(make_events()))


def test_gantt_renders_one_row_per_cell():
    events = [span(1, "pipeline", None, 0, 1.0),
              timing("gtc", 0, 100.0, 100.5),
              timing("cactus", 1, 100.1, 100.4)]
    text = render_gantt(TraceTree(events), width=40)
    assert "gtc_p8" in text and "cactus_p8" in text
    assert text.count("|") == 4  # two framed bars


def test_diff_traces_self_diff_is_all_zero():
    tree = TraceTree(make_events())
    doc = diff_traces(tree, tree)
    assert doc["wall_delta_pct"] == 0.0
    assert all(s["delta_pct"] == 0.0 for s in doc["stages"])
    assert doc["a_critical_path"] == doc["b_critical_path"]
    cells = {c["cell"]: c for c in doc["cells"]}
    assert cells["gtc_p8"]["delta_pct"] == 0.0


def test_diff_traces_reports_missing_cells_and_deltas():
    b_events = [ev for ev in make_events() if ev["span_id"] not in (6, 7)]
    b_events = [dict(ev, wall_s=ev["wall_s"] * 2) if ev["event"] == "span" else ev
                for ev in b_events]
    doc = diff_traces(TraceTree(make_events()), TraceTree(b_events))
    assert doc["wall_delta_pct"] == pytest.approx(100.0)
    cells = {c["cell"]: c for c in doc["cells"]}
    assert cells["cactus_p8"]["b_wall_s"] is None
    assert cells["gtc_p8"]["delta_pct"] == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# Backend identity: serial / pool / stealing produce the same analytics


@pytest.fixture(scope="module")
def backend_traces(tmp_path_factory):
    base = tmp_path_factory.mktemp("backends")
    journal_dir = base / "journal"
    events = {}
    for name, kwargs in {
        "serial": {},
        "pool": {"workers": 4},
        "stealing": {"scheduler": "stealing", "workers": 4,
                     "journal_dir": str(journal_dir)},
    }.items():
        obs = Observability(enabled=True)
        run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(base / name),
                     obs=obs, argv=["test"], bench_dir=None, **kwargs)
        events[name] = obs.events
    return {"events": events, "journal_dir": journal_dir}


def cost_fingerprint(tree):
    return [(e["label"], e["weight"]) for e in critical_path(tree, weight="cost")]


def test_cost_critical_path_identical_across_backends(backend_traces):
    paths = {name: cost_fingerprint(TraceTree(evs))
             for name, evs in backend_traces["events"].items()}
    assert paths["serial"] == paths["pool"] == paths["stealing"]
    labels = [label for label, _ in paths["serial"]]
    assert labels[0] == "pipeline"
    # The path descends into the analytically heaviest cell of the sweep.
    heaviest = max(APPS, key=lambda a: estimate_cell_cost(a, 8))
    assert f"cell[{heaviest}_p8]" in labels


def test_per_cell_cost_paths_identical_across_backends(backend_traces):
    per_cell = {}
    for name, evs in backend_traces["events"].items():
        paths = cell_critical_paths(TraceTree(evs), weight="cost")
        per_cell[name] = {
            k: [(e["label"], e["weight"]) for e in v] for k, v in paths.items()
        }
    assert set(per_cell["serial"]) == {f"{a}_p8" for a in APPS}
    assert per_cell["serial"] == per_cell["pool"] == per_cell["stealing"]


def test_stage_structure_identical_across_backends(backend_traces):
    shapes = {
        name: sorted((r["stage"], r["calls"]) for r in stage_rollup(TraceTree(evs)))
        for name, evs in backend_traces["events"].items()
    }
    assert shapes["serial"] == shapes["pool"] == shapes["stealing"]


def reweighted(events):
    """Substitute deterministic walls keyed off span ids: the remaining
    variation across backends is exactly the tree shape."""
    return [
        dict(ev, wall_s=((ev["span_id"] * 37) % 101 + 1) / 100.0)
        if ev.get("event") == "span" else ev
        for ev in events
    ]


def test_self_time_analytics_identical_for_identical_walls(backend_traces):
    fingerprints = {}
    for name, evs in backend_traces["events"].items():
        tree = TraceTree(reweighted(evs))
        fingerprints[name] = (critical_path(tree), stage_rollup(tree))
    assert fingerprints["serial"] == fingerprints["pool"] == fingerprints["stealing"]


def test_journal_reconstruction_matches_live_trace(backend_traces):
    live = TraceTree(backend_traces["events"]["stealing"])
    replay = TraceTree.load(backend_traces["journal_dir"])
    assert len(replay.cells()) == len(live.cells()) == len(APPS)
    assert cost_fingerprint(replay) == cost_fingerprint(live)
    # Journaled results carry execution stamps, so attribution works too.
    attr = attribution(replay)
    assert attr is not None and len(attr["cells"]) == len(APPS)


def test_live_traces_carry_attribution_on_every_backend(backend_traces):
    for name, evs in backend_traces["events"].items():
        attr = attribution(TraceTree(evs))
        assert attr is not None, name
        assert len(attr["cells"]) == len(APPS), name
        assert attr["utilization"] is None or 0 < attr["utilization"] <= 1.0


def test_summarize_counts_cells_and_spans(backend_traces):
    tree = TraceTree(backend_traces["events"]["stealing"])
    doc = summarize(tree, top=3)
    assert doc["cells"] == len(APPS)
    assert doc["spans"] == len(tree.nodes)
    assert doc["scheduler"] == "stealing"
    assert doc["failed_cells"] == []
    assert len(doc["critical_path"]) <= 3 and len(doc["stages"]) == 3
