import json

import pytest

from hfast.obs.metrics import MetricsRegistry, log2_bucket


class TestLog2Bucket:
    @pytest.mark.parametrize(
        "value,edge",
        [
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 4),
            (4, 4),
            (5, 8),
            (1023, 1024),
            (1024, 1024),
            (1025, 2048),
            (294912, 524288),
        ],
    )
    def test_edges(self, value, edge):
        assert log2_bucket(value) == edge

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log2_bucket(-1)


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("msgs")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert reg.counter("msgs") is c  # get-or-create

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        assert g.value == 7

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        h.observe(3)
        h.observe(1024, weight=2)
        assert h.count == 3
        assert h.sum == 3 + 2048
        assert h.min == 3
        assert h.max == 1024
        assert h.buckets == {4: 1, 1024: 2}
        assert h.mean == pytest.approx((3 + 2048) / 3)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")


class TestDisabledMode:
    def test_noop_instruments_record_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(123)
        assert reg.to_dict() == {}
        assert reg.to_text() == ""

    def test_noop_instrument_is_shared(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is reg.histogram("b")


class TestExport:
    def test_to_dict_and_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("bytes").inc(100)
        reg.histogram("sizes").observe(5)
        path = tmp_path / "m" / "metrics.json"
        reg.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["bytes"] == {"type": "counter", "value": 100}
        assert loaded["sizes"]["buckets"] == {"8": 1}

    def test_to_text_format(self):
        reg = MetricsRegistry()
        reg.counter("bytes").inc(9)
        reg.histogram("sizes").observe(3)
        text = reg.to_text()
        assert "bytes 9" in text
        assert "sizes_count 1" in text
        assert 'sizes_bucket{le="4"} 1' in text
