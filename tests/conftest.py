import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture
def repo_cache_dir() -> Path:
    return REPO_ROOT / ".repro_cache"


@pytest.fixture(autouse=True)
def reset_ambient_obs():
    """Keep the process-wide ambient observability disabled between tests."""
    from hfast.obs.profile import Observability, configure

    yield
    configure(Observability.disabled())
