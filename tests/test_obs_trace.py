import json
import time

import pytest

from hfast.obs.trace import JsonlSink, ListSink, SpanTracer, read_events


def test_span_emits_structured_event():
    sink = ListSink()
    tracer = SpanTracer(sink=sink)
    with tracer.span("load", app="cactus", nranks=16):
        pass
    (ev,) = sink.events
    assert ev["event"] == "span"
    assert ev["name"] == "load"
    assert ev["attrs"] == {"app": "cactus", "nranks": 16}
    assert ev["wall_s"] >= 0.0
    assert ev["peak_rss_kb"] > 0
    assert ev["parent_id"] is None
    assert ev["depth"] == 0


def test_span_nesting_parent_ids_and_depth():
    sink = ListSink()
    tracer = SpanTracer(sink=sink)
    with tracer.span("outer"):
        with tracer.span("mid"):
            with tracer.span("inner"):
                pass
        with tracer.span("mid2"):
            pass
    by_name = {e["name"]: e for e in sink.events}
    # children finish (and emit) before parents
    assert [e["name"] for e in sink.events] == ["inner", "mid", "mid2", "outer"]
    assert by_name["outer"]["parent_id"] is None
    assert by_name["mid"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["inner"]["parent_id"] == by_name["mid"]["span_id"]
    assert by_name["mid2"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["inner"]["depth"] == 2
    # sibling spans get distinct ids
    assert len({e["span_id"] for e in sink.events}) == 4


def test_span_records_exception_and_reraises():
    sink = ListSink()
    tracer = SpanTracer(sink=sink)
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    (ev,) = sink.events
    assert ev["error"] == "ValueError: no"


def test_set_attr_inside_span():
    sink = ListSink()
    tracer = SpanTracer(sink=sink)
    with tracer.span("s") as sp:
        sp.set_attr("bytes", 42)
    assert sink.events[0]["attrs"]["bytes"] == 42


def test_traced_decorator():
    sink = ListSink()
    tracer = SpanTracer(sink=sink)

    @tracer.traced("work", kind="unit")
    def work(x):
        return x * 2

    assert work(21) == 42
    assert sink.events[0]["name"] == "work"
    assert sink.events[0]["attrs"] == {"kind": "unit"}


def test_disabled_tracer_emits_nothing():
    sink = ListSink()
    tracer = SpanTracer(sink=sink, enabled=False)
    with tracer.span("x") as sp:
        sp.set_attr("ignored", 1)  # null span accepts attrs silently
    tracer.emit_event("manifest", {"a": 1})
    assert sink.events == []


def test_disabled_span_overhead_is_tiny():
    tracer = SpanTracer(enabled=False)
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with tracer.span("hot"):
            pass
    per_call = (time.perf_counter() - t0) / n
    # generous bound: a no-op span must stay well under 10 microseconds
    assert per_call < 10e-6


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    tracer = SpanTracer(sink=JsonlSink(path))
    with tracer.span("a"):
        pass
    tracer.emit_event("manifest", {"git_sha": "abc"})
    tracer.close()
    events = read_events(path)
    assert [e["event"] for e in events] == ["span", "manifest"]
    # file is valid JSONL
    lines = path.read_text().strip().splitlines()
    assert all(json.loads(line) for line in lines)


def test_wall_time_uses_injected_clock():
    ticks = iter([10.0, 13.5])
    tracer = SpanTracer(sink=ListSink(), clock=lambda: next(ticks))
    with tracer.span("timed"):
        pass
    assert tracer.sink.events[0]["wall_s"] == pytest.approx(3.5)


# ---------------------------------------------------------------------------
# JsonlSink write buffering


def test_jsonl_sink_buffers_emits_until_flush(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    for i in range(10):
        sink.emit({"event": "span", "i": i})
    # Small events stay in the stream buffer: no per-event flush syscall.
    assert path.read_text() == ""
    sink.flush()
    assert len(path.read_text().splitlines()) == 10
    sink.close()


def test_jsonl_sink_close_loses_no_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    n = 500
    for i in range(n):
        sink.emit({"event": "span", "i": i})
    sink.close()
    events = read_events(path)
    assert [e["i"] for e in events] == list(range(n))


def test_jsonl_sink_close_flushes_unowned_stream(tmp_path):
    import io

    stream = io.StringIO()
    sink = JsonlSink(stream)
    sink.emit({"event": "manifest"})
    sink.close()
    # close() flushed but did not close a stream it does not own.
    assert not stream.closed
    assert json.loads(stream.getvalue()) == {"event": "manifest"}


def test_tracer_flush_reaches_the_sink(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = SpanTracer(sink=JsonlSink(path))
    with tracer.span("a"):
        pass
    tracer.flush()  # the live path flushes mid-run without closing
    assert [e["name"] for e in read_events(path)] == ["a"]
    with tracer.span("b"):
        pass
    tracer.close()
    assert [e["name"] for e in read_events(path)] == ["a", "b"]
