"""The --live status view, driven by scripted bus events.

No pipeline here: events are fed straight into ``LiveView.handle`` so
the per-cell state machine, counters, ETA, straggler surfacing, and the
TTY / non-TTY rendering paths are all tested deterministically.
"""

import io

from hfast.obs.live import LiveView
from hfast.obs.stream import EventBus


def make_view(**kwargs):
    kwargs.setdefault("out", io.StringIO())
    kwargs.setdefault("force_tty", False)
    return LiveView(**kwargs)


def run_start(cells=("gtc_p8", "cactus_p8"), est=2.0):
    return {
        "event": "run_start",
        "run_id": "r1",
        "scheduler": "stealing",
        "workers": 2,
        "cells": [
            {"cell": c, "app": c.split("_p")[0], "nranks": int(c.split("_p")[1]),
             "index": i, "est": est}
            for i, c in enumerate(cells)
        ],
    }


def test_state_machine_tracks_cell_lifecycle():
    view = make_view()
    view.handle(run_start())
    snap = view.snapshot()
    assert snap["run_id"] == "r1" and snap["workers"] == 2
    assert snap["order"] == ["gtc_p8", "cactus_p8"]
    assert snap["counts"]["queued"] == 2

    view.handle({"event": "cell_state", "state": "running", "cell": "gtc_p8",
                 "worker": 1, "attempt": 1, "stolen": False})
    view.handle({"event": "cell_state", "state": "retry", "cell": "gtc_p8",
                 "worker": 1, "attempt": 1, "error": "boom"})
    view.handle({"event": "cell_state", "state": "running", "cell": "gtc_p8",
                 "worker": 0, "attempt": 2, "stolen": True})
    view.handle({"event": "cell_state", "state": "done", "cell": "gtc_p8",
                 "worker": 0, "attempt": 2, "wall_s": 1.25})
    snap = view.snapshot()
    gtc = snap["cells"]["gtc_p8"]
    assert gtc["state"] == "done" and gtc["attempts"] == 2 and gtc["wall_s"] == 1.25
    assert snap["counters"]["retries"] == 1 and snap["counters"]["steals"] == 1
    assert snap["counts"] == {"queued": 1, "running": 0, "retry": 0, "done": 1, "failed": 0}
    # One cell done out of two equal-cost cells: ETA becomes computable.
    assert snap["eta_s"] is not None and snap["eta_s"] >= 0.0


def test_unknown_cell_and_worker_lost_are_tolerated():
    view = make_view()
    # cell_state before run_start (e.g. subscriber attached late).
    view.handle({"event": "cell_state", "state": "running", "cell": "lbmhd_p8",
                 "worker": 0, "attempt": 1})
    view.handle({"event": "worker_lost", "worker": 0, "cell": "lbmhd_p8", "reason": "died"})
    snap = view.snapshot()
    assert snap["cells"]["lbmhd_p8"]["state"] == "running"
    assert snap["counters"]["workers_lost"] == 1
    assert snap["eta_s"] is None  # no cost estimates, no ETA


def test_render_lines_and_summary_line():
    view = make_view()
    view.handle(run_start())
    view.handle({"event": "cell_state", "state": "running", "cell": "gtc_p8",
                 "worker": 1, "attempt": 1, "stolen": False})
    view.handle({"event": "cell_state", "state": "done", "cell": "gtc_p8",
                 "worker": 1, "attempt": 1, "wall_s": 0.5})
    view.handle({"event": "anomaly", "kind": "straggler", "cell": "cactus_p8",
                 "wall_s": 9.0, "expected_s": 1.0, "ratio": 9.0})
    view.handle({"event": "cell_state", "state": "running", "cell": "cactus_p8",
                 "worker": 0, "attempt": 1, "stolen": False})

    lines = view.render_lines()
    assert lines[0].startswith("hfast live · run r1 · stealing x2")
    assert any("+ gtc_p8" in line and "0.50s" in line for line in lines)
    assert any("> cactus_p8" in line and "STRAGGLER" in line for line in lines)

    summary = view.summary_line()
    assert summary.startswith("live: 1+0/2 done")
    assert "running=1" in summary
    assert "stragglers=cactus_p8" in summary


def test_non_tty_stop_emits_final_summary_line():
    view = make_view()
    view.start()
    view.handle(run_start())
    view.handle({"event": "cell_state", "state": "done", "cell": "gtc_p8",
                 "worker": 0, "attempt": 1, "wall_s": 0.1})
    view.handle({"event": "run_end", "run_id": "r1", "failed_cells": [], "anomalies": 0})
    view.stop()
    logged = view.out.getvalue()
    assert "live: 1+0/2 done" in logged
    assert "\x1b[" not in logged  # no terminal control on a non-TTY


def test_tty_mode_repaints_with_ansi_escapes():
    view = make_view(force_tty=True, refresh=0.0)
    view.handle(run_start())
    view.handle({"event": "cell_state", "state": "running", "cell": "gtc_p8",
                 "worker": 0, "attempt": 1, "stolen": False})
    out = view.out.getvalue()
    assert "\x1b[2K" in out  # line-clear on every painted row
    assert "\x1b[3A" in out or "\x1b[4A" in out  # second paint moved the cursor up


def test_detector_flags_inflight_straggler_on_paint():
    class AlwaysLate:
        def check_running(self, app, nranks, elapsed_s):
            return {"kind": "straggler_running", "cell": f"{app}_p{nranks}",
                    "wall_s": elapsed_s, "expected_s": 0.0, "ratio": 999.0}

    view = make_view(detector=AlwaysLate())
    view.handle(run_start(cells=("paratec_p8",)))
    view.handle({"event": "cell_state", "state": "running", "cell": "paratec_p8",
                 "worker": 0, "attempt": 1, "stolen": False})
    view.stop()  # final paint runs the straggler check
    assert "stragglers=paratec_p8" in view.out.getvalue()


def test_broken_output_stream_never_raises():
    out = io.StringIO()
    view = make_view(out=out)
    view.handle(run_start())
    out.close()
    view.handle({"event": "cell_state", "state": "done", "cell": "gtc_p8",
                 "worker": 0, "attempt": 1, "wall_s": 0.1})
    view.stop()  # paints into a closed stream: swallowed


def test_view_composes_with_bus():
    bus = EventBus()
    view = make_view()
    bus.subscribe(view.handle)
    bus.publish(run_start())
    bus.publish({"event": "run_end", "run_id": "r1", "failed_cells": [], "anomalies": 0})
    snap = view.snapshot()
    assert snap["done"] and snap["counters"]["events"] == 2
    assert bus.dropped == 0
