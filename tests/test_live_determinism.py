"""Live telemetry is a strict side-channel.

The acceptance bar for ``--live`` / the event bus: merged trace events,
metrics, manifest, and report must be byte-identical with and without
live streaming — serial and stealing backends, fault injection included.
Wall-clock-derived material (timing fields, scheduler bookkeeping, and
the ``anomaly``/``sched_*`` event kinds) is outside the contract, exactly
as documented; everything else must not move by a byte.
"""

import hashlib
import io

from hfast import cli
from hfast.obs.live import LiveView
from hfast.obs.profile import Observability
from hfast.obs.report import build_report
from hfast.obs.stream import EventBus
from hfast.pipeline import run_pipeline
from hfast.sched.faults import FAULT_ENV_VAR
from test_fault_injection import SCHED_FIELDS, comparable
from test_parallel_determinism import normalize

APPS = ["cactus", "gtc", "lbmhd", "paratec"]
SCALES = {app: [8] for app in APPS}

# Event kinds that are wall-clock-derived by construction and therefore
# excluded (like wall_s itself) from the byte-identity contract.
CLOCK_EVENTS = {"sched_task", "sched_worker", "anomaly", "cell_timing"}

# Per-span attempt tags are scheduler bookkeeping, like the cell-level
# "attempts" count the fault-injection tests already scrub.
SCRUB_FIELDS = SCHED_FIELDS | {"attempt"}


def scrub(node):
    if isinstance(node, dict):
        return {k: scrub(v) for k, v in node.items() if k not in SCRUB_FIELDS}
    if isinstance(node, list):
        return [scrub(v) for v in node]
    return node


def trace_comparable(events):
    """Trace events minus timing fields, sched bookkeeping, clock kinds."""
    return [
        scrub(normalize(ev, strip_paths=True))
        for ev in events
        if ev.get("event") not in CLOCK_EVENTS
    ]


def metrics_comparable(metrics):
    """Registry snapshot minus the scheduler's own (timing-driven) series."""
    return {k: v for k, v in metrics.items() if not k.startswith("sched.")}


def run_sweep(cache_dir, live=False, **kwargs):
    bus = view = None
    if live:
        bus = EventBus()
        view = LiveView(out=io.StringIO(), force_tty=False, log_interval=0.01)
        bus.subscribe(view.handle)
        view.start()
    obs = Observability(enabled=True)
    try:
        out = run_pipeline(
            apps=APPS, scales=SCALES, cache_dir=str(cache_dir), obs=obs,
            argv=["test"], bench_dir=None, bus=bus, **kwargs,
        )
    finally:
        if view is not None:
            view.stop()
    out["trace"] = trace_comparable(obs.events)
    out["metrics"] = metrics_comparable(obs.metrics.to_dict())
    out["report"] = build_report(obs.events)
    if live:
        assert bus.published > 0
        assert "live:" in view.out.getvalue()  # the view really consumed events
    return out


def cache_digests(cache_dir):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(cache_dir.glob("*.json"))
    }


def assert_identical(a, b, dir_a, dir_b):
    assert a["results"] == b["results"]
    assert a["trace"] == b["trace"]
    assert a["metrics"] == b["metrics"]
    assert comparable(a) == comparable(b)
    assert scrub(normalize(a["manifest"], strip_paths=True)) == scrub(
        normalize(b["manifest"], strip_paths=True)
    )
    assert cache_digests(dir_a) == cache_digests(dir_b)


def test_live_serial_is_byte_identical_to_live_off(tmp_path):
    off = run_sweep(tmp_path / "off")
    on = run_sweep(tmp_path / "on", live=True)
    assert_identical(on, off, tmp_path / "on", tmp_path / "off")


def test_live_stealing_is_byte_identical_to_live_off(tmp_path):
    off = run_sweep(tmp_path / "off", scheduler="stealing", workers=4)
    on = run_sweep(tmp_path / "on", scheduler="stealing", workers=4, live=True)
    assert_identical(on, off, tmp_path / "on", tmp_path / "off")


def test_live_pool_matches_serial_without_live(tmp_path):
    serial = run_sweep(tmp_path / "serial")
    pool = run_sweep(tmp_path / "pool", workers=4, live=True)
    assert_identical(pool, serial, tmp_path / "pool", tmp_path / "serial")


def test_live_chaos_run_still_byte_identical(tmp_path, monkeypatch):
    """Streaming + fault injection together: a retried flaky cell under a
    live bus still reproduces the clean serial artifacts byte-for-byte."""
    serial = run_sweep(tmp_path / "serial")
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:1")
    chaos = run_sweep(
        tmp_path / "chaos", scheduler="stealing", workers=2,
        retry_backoff=0.01, live=True,
    )
    assert chaos["manifest"]["failed_cells"] == []
    by_key = {f"{c['app']}_p{c['nranks']}": c for c in chaos["manifest"]["cells"]}
    assert by_key["gtc_p8"]["attempts"] == 2
    assert_identical(chaos, serial, tmp_path / "chaos", tmp_path / "serial")


def test_non_live_run_registers_no_channel_and_streams_nothing(tmp_path):
    from hfast.obs import stream

    obs = Observability(enabled=True)
    run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "c"),
                 obs=obs, argv=["test"], bench_dir=None)
    assert stream.worker_channel() is None
    # No live-only event kinds may reach the buffered trace.
    kinds = {e["event"] for e in obs.events}
    assert "cell_start" not in kinds and "cell_state" not in kinds
    assert "heartbeat" not in kinds and "run_start" not in kinds


# ---------------------------------------------------------------------------
# CLI smoke: --live + --metrics-port on a non-TTY


def test_cli_live_non_tty_smoke(tmp_path, capsys):
    rc = cli.main([
        "analyze", "--apps", "gtc,cactus", "--scales", "8",
        "--cache-dir", str(tmp_path / "cache"),
        "--report-dir", str(tmp_path / "reports"),
        "--live", "--metrics-port", "0",
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "live:" in captured.err  # non-TTY degradation: summary log lines
    assert "metrics endpoint: http://127.0.0.1:" in captured.err
    assert (tmp_path / "reports" / "report.md").is_file()


def test_cli_live_matches_plain_run_artifacts(tmp_path, capsys):
    common = ["analyze", "--apps", "gtc,cactus", "--scales", "8", "--profile"]
    assert cli.main(common + ["--cache-dir", str(tmp_path / "plain")]) == 0
    assert cli.main(common + ["--cache-dir", str(tmp_path / "live"), "--live"]) == 0
    capsys.readouterr()
    assert cache_digests(tmp_path / "plain") == cache_digests(tmp_path / "live")
