"""The perf-trajectory guard: scripts/bench_compare.py.

The comparer is imported as a module (no subprocess) and driven with
synthetic BENCH documents so its pass/fail policy — the 25% regression
gate and the noise floor for sub-tick stages — is pinned by tests.
"""

import importlib.util
import json
import sys
from pathlib import Path

SCRIPT = Path(__file__).parent.parent / "scripts" / "bench_compare.py"
spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
bench_compare = importlib.util.module_from_spec(spec)
sys.modules["bench_compare"] = bench_compare
spec.loader.exec_module(bench_compare)


def write_bench(path: Path, stages: dict[str, float], sha="abc", stamp=None,
                workers=1) -> Path:
    doc = {
        "git_sha": sha,
        "timestamp": stamp,
        "workers": workers,
        "profile": {
            "stages": [
                {"stage": name, "calls": 1, "wall_s": wall, "pct": 0.0}
                for name, wall in stages.items()
            ]
        },
        "runs": [],
    }
    path.write_text(json.dumps(doc))
    return path


def test_no_regression_passes(tmp_path, capsys):
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0, "matrix_reduce": 0.4})
    cand = write_bench(tmp_path / "BENCH_b.json", {"pipeline": 1.1, "matrix_reduce": 0.38})
    assert bench_compare.main([str(base), str(cand)]) == 0
    assert "no stage regressions" in capsys.readouterr().out


def test_regression_over_threshold_fails(tmp_path, capsys):
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0})
    cand = write_bench(tmp_path / "BENCH_b.json", {"pipeline": 1.3})
    assert bench_compare.main([str(base), str(cand)]) == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "regressed 30.0%" in captured.err


def test_noise_floor_masks_tiny_stages(tmp_path, capsys):
    """A 10x blowup on a sub-tick stage is scheduler noise, not code."""
    base = write_bench(tmp_path / "BENCH_a.json", {"cache_load": 0.003})
    cand = write_bench(tmp_path / "BENCH_b.json", {"cache_load": 0.03})
    assert bench_compare.main([str(base), str(cand), "--min-wall", "0.05"]) == 0
    assert "noise-floor" in capsys.readouterr().out


def test_dir_mode_picks_two_newest_by_timestamp(tmp_path):
    write_bench(tmp_path / "BENCH_1.json", {"pipeline": 1.0}, stamp="2026-01-01T00:00:00")
    base = write_bench(tmp_path / "BENCH_2.json", {"pipeline": 1.0}, stamp="2026-02-01T00:00:00")
    cand = write_bench(tmp_path / "BENCH_3.json", {"pipeline": 2.0}, stamp="2026-03-01T00:00:00")
    picked = bench_compare.pick_newest_two(tmp_path)
    assert picked == [base, cand]
    assert bench_compare.main(["--dir", str(tmp_path)]) == 1


def test_dir_mode_with_single_snapshot_passes(tmp_path, capsys):
    write_bench(tmp_path / "BENCH_only.json", {"pipeline": 1.0})
    assert bench_compare.main(["--dir", str(tmp_path)]) == 0
    assert "fewer than two" in capsys.readouterr().out


def test_empty_string_paths_fall_back_to_dir_scan(tmp_path, capsys):
    """CI's $(ls ...) substitutions expand to "" on a fresh checkout."""
    assert bench_compare.main(["", "", "--dir", str(tmp_path)]) == 0
    assert "fewer than two" in capsys.readouterr().out


def test_single_path_is_no_baseline_not_an_error(tmp_path, capsys):
    cand = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0})
    assert bench_compare.main([str(cand), ""]) == 0
    assert "no baseline" in capsys.readouterr().out


def test_three_paths_still_error(tmp_path):
    import pytest

    p = str(write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0}))
    with pytest.raises(SystemExit):
        bench_compare.main([p, p, p])


def test_differing_worker_counts_skip_comparison(tmp_path, capsys):
    """Parallel stage walls are per-process sums; never diff across counts."""
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0}, workers=1)
    cand = write_bench(tmp_path / "BENCH_b.json", {"pipeline": 4.0}, workers=4)
    assert bench_compare.main([str(base), str(cand)]) == 0
    assert "worker counts differ" in capsys.readouterr().out


def test_stage_present_on_one_side_is_reported_not_fatal(tmp_path, capsys):
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0, "old_stage": 0.5})
    cand = write_bench(tmp_path / "BENCH_b.json", {"pipeline": 1.0, "new_stage": 0.5})
    assert bench_compare.main([str(base), str(cand)]) == 0
    out = capsys.readouterr().out
    assert "only-in-baseline" in out and "only-in-candidate" in out


def test_record_writes_delta_table_without_changing_verdict(tmp_path):
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0, "matrix_reduce": 0.4})
    cand = write_bench(tmp_path / "BENCH_b.json", {"pipeline": 2.0, "matrix_reduce": 0.4})
    for doc_path, total in ((base, 1.0), (cand, 2.0)):
        doc = json.loads(doc_path.read_text())
        doc["profile"]["total_wall_s"] = total
        doc_path.write_text(json.dumps(doc))
    record = tmp_path / "deltas" / "record.json"
    # The regression still fails the run; the record is written regardless.
    assert bench_compare.main([str(base), str(cand), "--record", str(record)]) == 1
    doc = json.loads(record.read_text())
    assert doc["passed"] is False
    assert doc["total_wall_delta_pct"] == 100.0
    stages = {r["stage"]: r for r in doc["stages"]}
    assert stages["pipeline"]["verdict"] == "REGRESSED"
    assert stages["matrix_reduce"]["verdict"] == "ok"
    assert doc["failures"]


def test_missing_candidate_file_skips_with_exit_zero(tmp_path, capsys):
    """CI hands over whatever `ls -t` found; a vanished file is a skip."""
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0})
    assert bench_compare.main([str(base), str(tmp_path / "BENCH_gone.json")]) == 0
    out = capsys.readouterr().out
    assert "cannot read" in out and "nothing to guard" in out


def test_empty_file_skips_with_exit_zero(tmp_path, capsys):
    """A truncated upload (0 bytes) must not fail the trajectory guard."""
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0})
    empty = tmp_path / "BENCH_empty.json"
    empty.write_text("")
    assert bench_compare.main([str(base), str(empty)]) == 0
    assert "cannot read" in capsys.readouterr().out


def test_invalid_json_skips_with_exit_zero(tmp_path, capsys):
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0})
    broken = tmp_path / "BENCH_broken.json"
    broken.write_text('{"git_sha": "abc", "profile": {')
    assert bench_compare.main([str(base), str(broken)]) == 0
    assert "cannot read" in capsys.readouterr().out


def test_non_bench_document_skips_with_exit_zero(tmp_path, capsys):
    """Valid JSON that isn't a BENCH snapshot (e.g. a stray manifest)."""
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0})
    stray = tmp_path / "BENCH_stray.json"
    stray.write_text(json.dumps({"manifest": True}))
    assert bench_compare.main([str(base), str(stray)]) == 0
    assert "not a BENCH document" in capsys.readouterr().out


def test_unusable_snapshot_skip_writes_record(tmp_path):
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0})
    empty = tmp_path / "BENCH_empty.json"
    empty.write_text("")
    record = tmp_path / "record.json"
    assert bench_compare.main([str(base), str(empty), "--record", str(record)]) == 0
    assert json.loads(record.read_text())["skipped"] == "unusable snapshot"


def test_dir_scan_ignores_unusable_snapshots(tmp_path, capsys):
    """Damaged files in the artifact dir neither crash nor get picked."""
    (tmp_path / "BENCH_empty.json").write_text("")
    (tmp_path / "BENCH_scalar.json").write_text("42")
    (tmp_path / "BENCH_noprof.json").write_text(json.dumps({"git_sha": "x"}))
    base = write_bench(tmp_path / "BENCH_1.json", {"pipeline": 1.0},
                       stamp="2026-01-01T00:00:00")
    cand = write_bench(tmp_path / "BENCH_2.json", {"pipeline": 1.0},
                       stamp="2026-02-01T00:00:00")
    assert bench_compare.pick_newest_two(tmp_path) == [base, cand]
    assert bench_compare.main(["--dir", str(tmp_path)]) == 0
    assert "no stage regressions" in capsys.readouterr().out


def test_dir_scan_with_only_unusable_snapshots_skips(tmp_path, capsys):
    (tmp_path / "BENCH_a.json").write_text("")
    (tmp_path / "BENCH_b.json").write_text("{bad")
    assert bench_compare.main(["--dir", str(tmp_path)]) == 0
    assert "fewer than two" in capsys.readouterr().out


def test_record_written_on_skip_paths(tmp_path, capsys):
    record = tmp_path / "record.json"
    assert bench_compare.main(["--dir", str(tmp_path), "--record", str(record)]) == 0
    assert json.loads(record.read_text())["skipped"]
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0}, workers=1)
    cand = write_bench(tmp_path / "BENCH_b.json", {"pipeline": 1.0}, workers=4)
    assert bench_compare.main([str(base), str(cand), "--record", str(record)]) == 0
    assert "worker mismatch" in json.loads(record.read_text())["skipped"]


def test_snapshot_dir_archives_candidate_with_provenance(tmp_path):
    base = write_bench(tmp_path / "BENCH_a.json", {"pipeline": 1.0}, sha="aaa")
    cand = write_bench(tmp_path / "BENCH_b.json", {"pipeline": 1.05}, sha="bbb",
                       stamp="2026-03-01T00:00:00", workers=2)
    snapdir = tmp_path / "trajectory"
    assert bench_compare.main([
        str(base), str(cand), "--snapshot-dir", str(snapdir), "--label", "ci-test",
    ]) == 0
    (archived,) = list(snapdir.glob("BENCH_*.json"))
    assert archived.name == "BENCH_b.json"  # keeps the content-hash name
    doc = json.loads(archived.read_text())
    assert doc["record"] == {
        "label": "ci-test",
        "source": str(cand),
        "git_sha": "bbb",
        "timestamp": "2026-03-01T00:00:00",
        "workers": 2,
    }
    # The archived copy must stay ingestible by the history layer.
    from hfast.obs.history import load_bench_snapshots  # noqa: PLC0415

    write_bench(cand, {"pipeline": 1.05}, sha="bbb", stamp="2026-03-01T00:00:00",
                workers=2)
    doc2 = json.loads(cand.read_text())
    doc2["runs"] = [{"app": "gtc", "nranks": 8, "total_bytes": 1}]
    cand.write_text(json.dumps(doc2))
    assert bench_compare.main([
        str(base), str(cand), "--snapshot-dir", str(snapdir), "--label", "ci-test",
    ]) == 0
    snaps = load_bench_snapshots(snapdir)
    assert len(snaps) == 1 and snaps[0]["data"]["results"][0]["app"] == "gtc"


def test_snapshot_name_collision_gets_content_suffix(tmp_path):
    snapdir = tmp_path / "trajectory"
    for i, wall in enumerate((1.0, 2.0)):
        cand = write_bench(tmp_path / "BENCH_same.json", {"pipeline": wall})
        assert bench_compare.main([
            str(cand), "--snapshot-dir", str(snapdir),
        ]) == 0
    names = sorted(p.name for p in snapdir.glob("*.json"))
    assert len(names) == 2 and "BENCH_same.json" in names
    assert any(n.startswith("BENCH_same-") for n in names), names


def test_single_path_mode_still_archives(tmp_path, capsys):
    cand = write_bench(tmp_path / "BENCH_only.json", {"pipeline": 1.0})
    snapdir = tmp_path / "trajectory"
    assert bench_compare.main([str(cand), "", "--snapshot-dir", str(snapdir)]) == 0
    out = capsys.readouterr().out
    assert "no baseline" in out and "snapshot archived" in out
    assert list(snapdir.glob("BENCH_only.json"))
