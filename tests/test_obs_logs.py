"""Structured logging: rotation, correlation binding, tolerant reading.

Contracts under test:

- :class:`RotatingJsonlWriter` rolls over *between* records — no record
  is ever split across files — and caps the chain at ``max_files``;
- :meth:`StructuredLogger.bind` children carry correlation fields into
  every record; the ambient ``configure_logging``/``get_logger`` pair is
  a strict no-op until configured;
- :func:`read_log_records` stitches the rotation chain oldest-first and
  survives a crash-truncated final line;
- the trace :class:`JsonlSink` shares the same rollover, and the
  analytics loader recovers a trace that rotated mid-run (the
  rollover-boundary recovery contract).
"""

import json

import pytest

from hfast.obs import analytics
from hfast.obs.logs import (
    DISABLED_LOGGER,
    RotatingJsonlWriter,
    StructuredLogger,
    configure_logging,
    get_logger,
    read_log_records,
    reset_logging,
    rotate_siblings,
    rotated_paths,
)
from hfast.obs.trace import JsonlSink, SpanTracer


@pytest.fixture(autouse=True)
def _clean_ambient():
    reset_logging()
    yield
    reset_logging()


def record_bytes(writer_path, **fields):
    return len((json.dumps(fields) + "\n").encode("utf-8"))


def test_rotation_never_splits_a_record(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = RotatingJsonlWriter(path, max_bytes=200, max_files=40)
    log = StructuredLogger(writer)
    for i in range(30):
        log.info("tick", i=i, pad="x" * 40)
    log.close()

    parts = rotated_paths(path)
    assert len(parts) > 1, "expected at least one rollover"
    seen = []
    for part in parts:
        for line in open(part, encoding="utf-8"):
            rec = json.loads(line)  # every line is complete JSON
            seen.append(rec["i"])
    assert seen == sorted(seen), "chain must read back oldest-first in order"
    assert seen == list(range(30))


def test_rotation_caps_file_count_and_drops_oldest(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = RotatingJsonlWriter(path, max_bytes=80, max_files=3)
    log = StructuredLogger(writer)
    for i in range(50):
        log.info("tick", i=i)
    log.close()

    parts = rotated_paths(path)
    # max_files rotated siblings plus the live file.
    assert len(parts) <= 4
    records = read_log_records(path)
    # The newest records survive; the oldest fell off the chain.
    assert records[-1]["i"] == 49
    assert records[0]["i"] > 0


def test_rotate_siblings_shift_order(tmp_path):
    path = tmp_path / "s.jsonl"
    for gen in ("old", "mid", "new"):
        path.write_text(gen, encoding="utf-8")
        rotate_siblings(path, max_files=3)
    assert (tmp_path / "s.jsonl.1").read_text(encoding="utf-8") == "new"
    assert (tmp_path / "s.jsonl.2").read_text(encoding="utf-8") == "mid"
    assert not path.exists()


def test_bound_fields_reach_every_record_and_none_is_dropped(tmp_path):
    path = tmp_path / "log.jsonl"
    configure_logging(path, run_id="r-123")
    child = get_logger(component="sched", cell=None)
    child.warning("cell_retry", attempt=2)
    reset_logging()

    (rec,) = read_log_records(path)
    assert rec["run_id"] == "r-123"
    assert rec["component"] == "sched"
    assert rec["level"] == "warning" and rec["event"] == "cell_retry"
    assert rec["attempt"] == 2
    assert "cell" not in rec  # None-valued bindings are dropped


def test_ambient_logger_is_noop_until_configured(tmp_path):
    log = get_logger(component="sched")
    assert log is DISABLED_LOGGER and not log.enabled
    log.error("never_lands")  # must not raise, must not create files
    assert list(tmp_path.iterdir()) == []

    configure_logging(tmp_path / "log.jsonl")
    assert get_logger().enabled
    reset_logging()
    assert get_logger() is DISABLED_LOGGER


def test_reader_tolerates_crash_truncated_final_line(tmp_path):
    path = tmp_path / "log.jsonl"
    configure_logging(path)
    get_logger().info("a", i=1)
    get_logger().info("b", i=2)
    reset_logging()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"ts": 1.0, "level": "info", "event": "torn", "i":')  # crash mid-record

    records = read_log_records(path)
    assert [r["event"] for r in records] == ["a", "b"]
    with pytest.raises(ValueError, match="malformed"):
        read_log_records(path, strict=True)


def test_reader_level_filter(tmp_path):
    path = tmp_path / "log.jsonl"
    configure_logging(path)
    get_logger().info("fine")
    get_logger().error("broken")
    reset_logging()
    assert [r["event"] for r in read_log_records(path, level="error")] == ["broken"]


# ---------------------------------------------------------------------------
# Trace-sink rotation + analytics rollover-boundary recovery


def emit_n_events(sink, n):
    tracer = SpanTracer(sink=sink, enabled=True)
    for i in range(n):
        with tracer.span("cell_run", cell=f"app_p{i}"):
            pass
    tracer.flush()
    tracer.close()


def test_jsonl_sink_rotates_and_loader_stitches_the_chain(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(str(path), max_bytes=512, max_files=50)
    emit_n_events(sink, 40)

    parts = rotated_paths(path)
    assert len(parts) > 1, "expected the trace to rotate"
    # Every part holds only whole lines.
    for part in parts:
        for line in open(part, encoding="utf-8"):
            json.loads(line)
    # The loader must see every event across the whole chain, in order.
    events = analytics.load_events(str(path))
    spans = [e for e in events if e.get("event") == "span"]
    assert len(spans) == 40
    span_ids = [e["span_id"] for e in spans]
    assert span_ids == sorted(span_ids)


def test_loader_tolerates_truncation_only_in_final_part(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(str(path), max_bytes=512, max_files=50)
    emit_n_events(sink, 40)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"event": "span", "torn": tru')  # crash mid-write

    events = analytics.load_events(str(path))
    assert len([e for e in events if e.get("event") == "span"]) == 40
    # But a torn line in an *interior* part is real corruption.
    interior = rotated_paths(path)[0]
    with open(interior, "a", encoding="utf-8") as fh:
        fh.write('{"event": "span", "torn": tru\n')
    with pytest.raises(analytics.TraceError):
        analytics.load_events(str(path), strict=True)


def test_unrotated_sink_is_byte_identical_to_no_max_bytes(tmp_path):
    """Rotation config alone must not perturb the trace bytes."""
    plain, capped = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    for target in (plain, capped):
        sink = JsonlSink(str(target), max_bytes=10_000_000 if target is capped else None)
        tracer = SpanTracer(sink=sink, enabled=True)
        for i in range(10):
            tracer.emit_event("manifest", {"i": i, "pad": "x" * 20})
        tracer.close()
    assert plain.read_bytes() == capped.read_bytes()
    assert rotated_paths(capped) == [str(capped)]
