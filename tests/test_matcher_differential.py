"""Differential identity: scalar vs vector vs incremental matchers.

The repo's byte-identity discipline applied to the matcher rewrite: all
three backends must produce identical circuit assignments and identical
temporal-evaluator outputs on every golden fixture, every synthesized
app, and seeded random matrices — so backend choice can only ever move
wall time, never results. Mirrors the 3-backend critical-path pinning
from the scheduler work.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from hfast.apps import synthesize
from hfast.interconnect import (
    InterconnectConfig,
    assign_circuits_matching,
    evaluate_hybrid,
    evaluate_temporal,
)
from hfast.matcher import MATCHERS
from hfast.matrix import CommMatrix, reduce_matrix

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_CASES = [(app, n) for app in ("cactus", "gtc", "lbmhd", "paratec") for n in (8, 16)]
APPS = ("cactus", "gtc", "lbmhd", "paratec")


def golden_matrix(app: str, nranks: int) -> CommMatrix:
    fixture = json.loads((GOLDEN_DIR / f"{app}_p{nranks}.json").read_text())
    return CommMatrix(
        nranks=nranks,
        bytes_matrix=np.array(fixture["bytes_matrix"], dtype=np.int64),
        msg_matrix=np.array(fixture["msg_matrix"], dtype=np.int64),
    )


def hybrid_doc(cm, backend, budget=4):
    doc = evaluate_hybrid(
        cm,
        InterconnectConfig(circuits_per_node=budget, matcher=backend),
        strategy="matching",
    ).to_dict()
    # The config echo legitimately names the backend; everything else
    # must be byte-identical across backends.
    assert doc["config"].pop("matcher") == backend
    return json.dumps(doc, sort_keys=True)


def temporal_doc(cm, backend, timesteps=4, reconfig_cost=1e-3):
    ev = evaluate_temporal(
        cm,
        InterconnectConfig(
            timesteps=timesteps, reconfig_cost=reconfig_cost, matcher=backend
        ),
    )
    return json.dumps(ev.to_dict(), sort_keys=True)


@pytest.mark.parametrize("app,nranks", GOLDEN_CASES)
@pytest.mark.parametrize("budget", [1, 2, 4])
def test_assignment_identity_on_goldens(app, nranks, budget):
    cm = golden_matrix(app, nranks)
    outs = [
        assign_circuits_matching(cm.bytes_matrix, budget, backend=b) for b in MATCHERS
    ]
    assert outs[0] == outs[1] == outs[2]


@pytest.mark.parametrize("app,nranks", GOLDEN_CASES)
def test_hybrid_evaluation_identity_on_goldens(app, nranks):
    cm = golden_matrix(app, nranks)
    docs = [hybrid_doc(cm, b) for b in MATCHERS]
    assert docs[0] == docs[1] == docs[2]


@pytest.mark.parametrize("app,nranks", GOLDEN_CASES)
def test_temporal_evaluation_identity_on_goldens(app, nranks):
    cm = golden_matrix(app, nranks)
    docs = [temporal_doc(cm, b) for b in MATCHERS]
    assert docs[0] == docs[1] == docs[2]


@pytest.mark.parametrize("app", APPS)
def test_identity_on_synthesized_apps(app):
    """Beyond the goldens: freshly synthesized traces at a scale the
    fixtures don't pin."""
    cm = reduce_matrix(synthesize(app, 32).records, 32)
    assert hybrid_doc(cm, "scalar") == hybrid_doc(cm, "vector") == hybrid_doc(cm, "incremental")
    assert (
        temporal_doc(cm, "scalar")
        == temporal_doc(cm, "vector")
        == temporal_doc(cm, "incremental")
    )


def test_identity_on_seeded_random_matrices():
    rng = np.random.default_rng(41)
    for trial in range(15):
        n = int(rng.integers(3, 24))
        density = float(rng.uniform(0.1, 1.0))
        max_w = int(rng.integers(2, 60))
        bytes_m = (
            rng.integers(0, max_w, size=(n, n)) * (rng.random((n, n)) < density)
        ).astype(np.int64)
        msg_m = (bytes_m > 0).astype(np.int64) * rng.integers(1, 5, size=(n, n))
        cm = CommMatrix(nranks=n, bytes_matrix=bytes_m, msg_matrix=msg_m)
        T = int(rng.integers(1, 6))
        cost = float(rng.choice([0.0, 1e-4, 1e-3]))
        budget = int(rng.integers(1, 5))
        docs = [temporal_doc(cm, b, timesteps=T, reconfig_cost=cost) for b in MATCHERS]
        assert docs[0] == docs[1] == docs[2], f"trial {trial}"
        hdocs = [hybrid_doc(cm, b, budget=budget) for b in MATCHERS]
        assert hdocs[0] == hdocs[1] == hdocs[2], f"trial {trial}"


def test_identity_on_tie_heavy_matrices():
    """Uniform weights maximize tie-breaking pressure — the regime where
    backend order equivalence is most fragile."""
    for n in (5, 8, 13):
        w = np.full((n, n), 7, dtype=np.int64)
        np.fill_diagonal(w, 0)
        cm = CommMatrix(nranks=n, bytes_matrix=w, msg_matrix=(w > 0).astype(np.int64))
        assert (
            hybrid_doc(cm, "scalar") == hybrid_doc(cm, "vector") == hybrid_doc(cm, "incremental")
        )
        docs = [temporal_doc(cm, b) for b in MATCHERS]
        assert docs[0] == docs[1] == docs[2]


def test_temporal_reduces_to_static_matching_for_all_backends():
    """T=1 + zero reconfig cost must reproduce the static matching
    evaluation exactly under every backend, not just the default."""
    for app, nranks in GOLDEN_CASES:
        cm = golden_matrix(app, nranks)
        for backend in MATCHERS:
            config = InterconnectConfig(timesteps=1, reconfig_cost=0.0, matcher=backend)
            temporal = evaluate_temporal(cm, config)
            static = evaluate_hybrid(cm, config, strategy="matching")
            assert temporal.circuit_bytes == static.circuit_bytes
            assert temporal.hybrid_time == static.hybrid_time
            assert temporal.packet_only_time == static.packet_only_time


def test_pipeline_results_identical_across_backends(tmp_path):
    """End-to-end: full pipeline summaries are identical modulo the
    config echo naming the backend."""
    from hfast.pipeline import run_pipeline

    docs = {}
    for backend in MATCHERS:
        out = run_pipeline(
            apps=["gtc", "cactus"],
            scales={"gtc": [16], "cactus": [16]},
            cache_dir=str(tmp_path / "cache"),
            store=False,
            config=InterconnectConfig(matcher=backend),
            bench_dir=None,
        )
        results = out["results"]
        for r in results:
            assert r["interconnect"]["config"].pop("matcher") == backend
        docs[backend] = json.dumps(results, sort_keys=True)
        assert out["manifest"]["matcher"] == backend
    assert docs["scalar"] == docs["vector"] == docs["incremental"]
