"""Property tests for the edge-columnar matcher backends.

Seeded sweeps (plus hypothesis sweeps when the library is installed)
asserting the invariants every backend must satisfy on arbitrary
matrices: degree bounds, self-loop/zero-weight exclusion, matched weight
never below the greedy seed, scalar/vector seed equality, and
incremental == from-scratch over random edge-delta sequences.
"""

import numpy as np
import pytest

from hfast.interconnect import InterconnectConfig, evaluate_temporal, slice_traffic
from hfast.matcher import (
    MATCHERS,
    IncrementalMatcher,
    canonical_edges,
    greedy_circuits,
    greedy_seed_scalar,
    greedy_seed_vector,
    match_edges,
)
from hfast.matrix import CommMatrix


def random_weights(rng, n, density=0.5, max_w=50, with_diag=True):
    w = rng.integers(0, max_w, size=(n, n)).astype(np.int64)
    w *= rng.random((n, n)) < density
    if with_diag:
        # Keep self-loop traffic in the matrix: the matcher must ignore
        # it, the evaluators must still account for it.
        np.fill_diagonal(w, rng.integers(0, max_w, size=n))
    else:
        np.fill_diagonal(w, 0)
    return w


def check_degrees(circuits, n, bound):
    egress = [0] * n
    ingress = [0] * n
    for s, d in circuits:
        assert s != d, "self-loop selected as a circuit"
        egress[s] += 1
        ingress[d] += 1
    assert max(egress, default=0) <= bound
    assert max(ingress, default=0) <= bound
    assert len(set(circuits)) == len(circuits)


def matched_weight(w, circuits):
    return sum(int(w[s, d]) for s, d in circuits)


@pytest.mark.parametrize("backend", MATCHERS)
def test_degree_bounds_random_sweep(backend):
    rng = np.random.default_rng(11)
    for _ in range(40):
        n = int(rng.integers(2, 20))
        bound = int(rng.integers(0, 5))
        w = random_weights(rng, n, density=float(rng.uniform(0.1, 1.0)))
        src, dst, wc = canonical_edges(w)
        circuits = match_edges(src, dst, wc, n, bound, backend=backend, presorted=True)
        check_degrees(circuits, n, bound)
        if bound == 0:
            assert circuits == []


def test_seed_scalar_vector_equal_random_sweep():
    rng = np.random.default_rng(13)
    for _ in range(60):
        n = int(rng.integers(2, 24))
        bound = int(rng.integers(1, 5))
        # Small weight range forces heavy ties — the regime where seed
        # order equivalence is actually at risk.
        w = random_weights(rng, n, density=float(rng.uniform(0.1, 1.0)), max_w=6)
        src, dst, wc = canonical_edges(w)
        assert greedy_seed_scalar(src, dst, wc, n, bound) == greedy_seed_vector(
            src, dst, wc, n, bound
        )


def test_matched_weight_never_below_greedy():
    rng = np.random.default_rng(17)
    for _ in range(40):
        n = int(rng.integers(2, 20))
        bound = int(rng.integers(1, 4))
        w = random_weights(rng, n, density=float(rng.uniform(0.2, 1.0)))
        greedy = greedy_circuits(w, n, bound)
        for backend in MATCHERS:
            circuits = match_edges(*canonical_edges(w), n, bound, backend=backend, presorted=True)
            assert matched_weight(w, circuits) >= matched_weight(w, greedy)


def test_zero_weight_edges_never_matched():
    n = 6
    w = np.zeros((n, n), dtype=np.int64)
    w[0, 1] = 0  # explicit zero-weight edge
    w[1, 2] = 7
    w[2, 2] = 99  # heavy self-loop
    for backend in MATCHERS:
        circuits = match_edges(*canonical_edges(w), n, 4, backend=backend, presorted=True)
        assert circuits == [(1, 2)]


def test_uniform_all_to_all_saturates_every_endpoint():
    """Stripe tie order is a Latin-square round-robin: uniform all-to-all
    traffic saturates every node to exactly its budget, even at the
    greedy seed."""
    for n in (4, 8, 12):
        w = np.full((n, n), 5, dtype=np.int64)
        np.fill_diagonal(w, 0)
        for bound in (1, 2, 3):
            greedy = greedy_circuits(w, n, bound)
            assert len(greedy) == n * min(bound, n - 1)
            for backend in MATCHERS:
                circuits = match_edges(
                    *canonical_edges(w), n, bound, backend=backend, presorted=True
                )
                assert len(circuits) == n * min(bound, n - 1)
                check_degrees(circuits, n, bound)


def test_symmetric_matrix_keeps_per_direction_budgets_independent():
    """Circuits are unidirectional: on a symmetric matrix both directions
    of a heavy pair can be provisioned without eating into each other's
    budget, and the selected set is closed under transposition when the
    traffic is."""
    rng = np.random.default_rng(19)
    for _ in range(20):
        n = int(rng.integers(3, 16))
        half = random_weights(rng, n, density=0.6, with_diag=False)
        w = half + half.T  # symmetric, zero diagonal
        for bound in (1, 2):
            circuits = match_edges(*canonical_edges(w), n, bound, presorted=True)
            check_degrees(circuits, n, bound)
            cset = set(circuits)
            # With enough budget for both directions of every selected
            # pair, symmetry of traffic must give symmetric coverage in
            # matched weight: forward and reverse totals are equal.
            fwd = sum(int(w[s, d]) for s, d in cset)
            rev = sum(int(w[d, s]) for s, d in cset)
            assert fwd == rev  # w symmetric: per-edge weights equal


def test_incremental_equals_from_scratch_over_delta_sequences():
    rng = np.random.default_rng(23)
    for trial in range(25):
        n = int(rng.integers(2, 16))
        bound = int(rng.integers(1, 4))
        src, dst = np.nonzero(np.ones((n, n)))
        keep = src != dst
        inc = IncrementalMatcher(src[keep], dst[keep], n, bound)
        w = random_weights(rng, n, density=0.6, with_diag=False).astype(np.float64)
        for _ in range(10):
            got = inc.rematch_dense(w)
            want = match_edges(*canonical_edges(w), n, bound, presorted=True)
            assert got == want
            # Arbitrary delta: zero edges, single edge, or a burst; also
            # sometimes no change at all (the cached-result fast path).
            for _ in range(int(rng.integers(0, 6))):
                i, j = int(rng.integers(0, n)), int(rng.integers(0, n))
                w[i, j] = float(rng.integers(0, 50))
        assert inc.stats["steps"] == 10
        assert (
            inc.stats["unchanged_hits"]
            + inc.stats["order_reuses"]
            + inc.stats["full_resorts"]
        ) == 10


def test_incremental_unchanged_step_hits_cache():
    n, bound = 8, 2
    rng = np.random.default_rng(29)
    w = random_weights(rng, n, density=0.7, with_diag=False).astype(np.float64)
    inc = IncrementalMatcher.from_dense(np.ones((n, n)) - np.eye(n), bound)
    first = inc.rematch_dense(w)
    second = inc.rematch_dense(w)
    assert first == second
    assert inc.stats["unchanged_hits"] == 1
    # The cached list must be a copy: mutating it cannot poison the cache.
    second.append((0, 0))
    assert inc.rematch_dense(w) == first


def test_incremental_order_preserving_delta_skips_resort():
    """Scaling every weight uniformly preserves the canonical order, so
    the incremental matcher reuses the cached sort instead of re-sorting."""
    n, bound = 10, 2
    rng = np.random.default_rng(31)
    w = (rng.integers(1, 100, size=(n, n)) * (1 - np.eye(n, dtype=np.int64))).astype(
        np.float64
    )
    inc = IncrementalMatcher.from_dense(np.ones((n, n)) - np.eye(n), bound)
    inc.rematch_dense(w)
    inc.rematch_dense(w * 2.0)
    assert inc.stats["order_reuses"] == 1
    assert inc.rematch_dense(w * 2.0) == match_edges(
        *canonical_edges(w * 2.0), n, bound, presorted=True
    )


def test_incremental_rejects_wrong_shape():
    inc = IncrementalMatcher(np.array([0, 1]), np.array([1, 0]), 2, 1)
    with pytest.raises(ValueError):
        inc.rematch(np.ones(3))


def test_unknown_backend_raises():
    with pytest.raises(ValueError):
        match_edges(np.array([0]), np.array([1]), np.array([1.0]), 2, 1, backend="nope")


def test_slice_traffic_conserves_message_only_links():
    """A link with messages but zero bytes still owes packet latency:
    slicing must conserve its message volume, not silently drop it."""
    n = 6
    bytes_m = np.zeros((n, n), dtype=np.int64)
    msg_m = np.zeros((n, n), dtype=np.int64)
    bytes_m[0, 1], msg_m[0, 1] = 1000, 3
    msg_m[2, 3] = 7  # message-only link
    cm = CommMatrix(nranks=n, bytes_matrix=bytes_m, msg_matrix=msg_m)
    for T in (2, 4, 5):
        slices = slice_traffic(cm, T, seed=0)
        assert np.array_equal(sum(b for b, _ in slices), bytes_m)
        assert np.array_equal(sum(m for _, m in slices), msg_m)


def test_temporal_empty_step_keeps_configuration_standing():
    """A slice with no traffic must not tear down the standing circuits:
    traffic resuming after a gap is not charged for circuits it already
    held, and the first configuring step is free wherever it lands."""
    n = 4
    bytes_m = np.zeros((n, n), dtype=np.int64)
    msg_m = np.zeros((n, n), dtype=np.int64)
    # One link whose hashed window at T=6 is narrower than the horizon,
    # guaranteeing at least one empty step between active ones.
    bytes_m[0, 1], msg_m[0, 1] = 6000, 6
    cm = CommMatrix(nranks=n, bytes_matrix=bytes_m, msg_matrix=msg_m)
    config = InterconnectConfig(timesteps=6, reconfig_cost=1e-3, circuits_per_node=1)
    ev = evaluate_temporal(cm, config)
    active = [s for s in ev.per_step if s["n_circuits"]]
    empty = [s for s in ev.per_step if not s["n_circuits"]]
    assert active and empty, "fixture must produce both active and idle steps"
    # The only circuit ever needed is (0, 1); once established it is never
    # re-established, so no reconfiguration is ever charged.
    assert ev.n_reconfigs == 0
    assert all(s["changes"] == 0 for s in ev.per_step)


def test_temporal_matcher_backends_share_stats_field():
    rng = np.random.default_rng(37)
    w = random_weights(rng, 8, density=0.5, with_diag=False)
    cm = CommMatrix(nranks=8, bytes_matrix=w, msg_matrix=(w > 0).astype(np.int64))
    for backend in MATCHERS:
        ev = evaluate_temporal(cm, InterconnectConfig(timesteps=4, matcher=backend))
        if backend == "incremental":
            assert ev.matcher_stats is not None
            assert ev.matcher_stats["steps"] == 4
        else:
            assert ev.matcher_stats is None


# -- hypothesis sweeps (skipped when the library is unavailable) --------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    bound=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    max_w=st.integers(min_value=1, max_value=8),
)
def test_hypothesis_backend_identity_and_degrees(n, bound, seed, max_w):
    rng = np.random.default_rng(seed)
    w = random_weights(rng, n, density=float(rng.uniform(0.05, 1.0)), max_w=max_w)
    src, dst, wc = canonical_edges(w)
    outs = [
        match_edges(src, dst, wc, n, bound, backend=b, presorted=True) for b in MATCHERS
    ]
    assert outs[0] == outs[1] == outs[2]
    check_degrees(outs[0], n, bound)
    greedy = greedy_circuits(w, n, bound)
    assert matched_weight(w, outs[0]) >= matched_weight(w, greedy)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    bound=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    steps=st.integers(min_value=2, max_value=6),
)
def test_hypothesis_incremental_matches_scratch(n, bound, seed, steps):
    rng = np.random.default_rng(seed)
    src, dst = np.nonzero(np.ones((n, n)))
    keep = src != dst
    inc = IncrementalMatcher(src[keep], dst[keep], n, bound)
    w = random_weights(rng, n, density=0.5, with_diag=False).astype(np.float64)
    for _ in range(steps):
        assert inc.rematch_dense(w) == match_edges(
            *canonical_edges(w), n, bound, presorted=True
        )
        for _ in range(int(rng.integers(0, 4))):
            w[int(rng.integers(0, n)), int(rng.integers(0, n))] = float(
                rng.integers(0, 20)
            )
