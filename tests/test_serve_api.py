"""End-to-end tests of the ``hfast serve`` HTTP API.

The acceptance contract for service mode:

- a result fetched over HTTP is byte-identical to what a direct
  ``run_pipeline`` / ``python -m hfast analyze`` invocation produces for
  the same spec (including the repro-cache artifacts both write);
- an identical resubmission never re-executes — in flight it dedupes
  onto the running job, finished it is served from the content-addressed
  store, both asserted via the daemon's own metrics counters;
- malformed submissions get structured 4xx responses;
- admission past the configured budget gets 429 + ``Retry-After``.
"""

import json
import threading

import pytest

from hfast import cli
from hfast.obs.prom import parse_prometheus
from hfast.pipeline import run_pipeline
from hfast.sched import faults
from hfast.sched.faults import FAULT_ENV_VAR
from serve_util import ServiceThread, make_config, request, wait_for_job

SPEC = {"app": "cactus", "nranks": 8}


def metrics_value(port: int, name: str) -> float | None:
    _, _, raw = request(port, "GET", "/metrics")
    parsed = parse_prometheus(raw.decode("utf-8"))
    entry = parsed.get(name)
    return None if entry is None else entry["value"]


def test_submit_poll_result_byte_identical(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        status, _, raw = request(service.port, "POST", "/v1/jobs", SPEC)
        assert status == 202
        doc = json.loads(raw)
        job = wait_for_job(service.port, doc["job_id"])
        assert job["status"] == "done"
        assert job["result_url"] == f"/v1/results/{doc['key']}"

        status, headers, served = request(service.port, "GET", job["result_url"])
        assert status == 200
        assert headers["content-type"] == "application/json"

    # Byte-identity against the pipeline entry point the CLI uses.
    out = run_pipeline(
        apps=["cactus"], scales={"cactus": [8]},
        cache_dir=str(tmp_path / "direct"), argv=["test"], bench_dir=None,
    )
    direct = (json.dumps(out["results"][0], sort_keys=True) + "\n").encode("utf-8")
    assert served == direct


def test_serve_cache_artifacts_match_cli_analyze(tmp_path, capsys):
    """The daemon's repro-cache writes == a `hfast analyze` run's writes."""
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        _, _, raw = request(service.port, "POST", "/v1/jobs", SPEC)
        wait_for_job(service.port, json.loads(raw)["job_id"])

    cli_cache = tmp_path / "cli_cache"
    assert cli.main(
        ["analyze", "--apps", "cactus", "--scales", "8",
         "--cache-dir", str(cli_cache)]
    ) == 0
    capsys.readouterr()

    serve_cache = tmp_path / "cache"
    serve_files = {p.name: p.read_bytes() for p in serve_cache.glob("*.json")}
    cli_files = {p.name: p.read_bytes() for p in cli_cache.glob("*.json")}
    assert serve_files and serve_files == cli_files


def test_finished_job_resubmission_is_cache_hit_without_reexecution(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        port = service.port
        _, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        first = json.loads(raw)
        wait_for_job(port, first["job_id"])
        assert metrics_value(port, "hfast_serve_jobs_executed") == 1.0

        # Same spec, different field order and defaults spelled out.
        resubmit = {"nranks": 8, "app": "cactus", "timing_seed": 0, "matcher": "vector"}
        status, _, raw = request(port, "POST", "/v1/jobs", resubmit)
        doc = json.loads(raw)
        assert status == 200
        assert doc["cached"] is True
        assert doc["key"] == first["key"]

        assert metrics_value(port, "hfast_serve_jobs_executed") == 1.0
        assert metrics_value(port, "hfast_serve_cache_hits") == 1.0


def test_inflight_resubmission_dedupes_onto_running_job(tmp_path, monkeypatch):
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 0.5)
    monkeypatch.setenv(FAULT_ENV_VAR, "slow:cactus_p8:99")
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        port = service.port
        status, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        assert status == 202
        first = json.loads(raw)

        status, _, raw = request(port, "POST", "/v1/jobs", dict(SPEC))
        doc = json.loads(raw)
        assert status == 200
        assert doc["deduped"] is True
        assert doc["job_id"] == first["job_id"]

        job = wait_for_job(port, first["job_id"])
        assert job["status"] == "done"
        assert metrics_value(port, "hfast_serve_jobs_executed") == 1.0
        assert metrics_value(port, "hfast_serve_jobs_deduped") == 1.0


MALFORMED = [
    ("empty-body", None, b"", 400),
    ("invalid-json", None, b"{not json", 400),
    ("json-scalar", None, b"42", 400),
    ("json-array", None, b"[1, 2]", 400),
    ("missing-fields", {"app": "cactus"}, None, 400),
    ("unknown-app", {"app": "nonesuch", "nranks": 8}, None, 400),
    ("bad-nranks", {"app": "cactus", "nranks": "eight"}, None, 400),
    ("unknown-field", {"app": "cactus", "nranks": 8, "frobnicate": 1}, None, 400),
    ("bad-matcher", {"app": "cactus", "nranks": 8, "matcher": "magic"}, None, 400),
]


@pytest.mark.parametrize(
    "label,body,raw_body,expected", MALFORMED, ids=[m[0] for m in MALFORMED]
)
def test_malformed_submission_table(tmp_path, label, body, raw_body, expected):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        status, _, raw = request(
            service.port, "POST", "/v1/jobs", body=body, raw_body=raw_body
        )
        assert status == expected
        doc = json.loads(raw)
        assert "error" in doc
        # Validation failures carry the full per-field error list.
        if body is not None:
            assert doc.get("errors"), doc
        # Nothing was admitted.
        assert metrics_value(service.port, "hfast_serve_jobs_executed") in (None, 0.0)


def test_unknown_routes_and_methods(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        port = service.port
        assert request(port, "GET", "/nope")[0] == 404
        assert request(port, "GET", "/v1/jobs/no-such-job")[0] == 404
        assert request(port, "GET", "/v1/results/abc")[0] == 404
        assert request(port, "GET", "/v1/results/" + "0" * 64)[0] == 404
        assert request(port, "POST", "/healthz", {})[0] == 405
        assert request(port, "DELETE", "/v1/jobs")[0] == 405
        # Path traversal attempts must not reach the filesystem.
        assert request(port, "GET", "/v1/results/../../etc/passwd")[0] == 404


def test_healthz_and_metrics_shape(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        status, _, raw = request(service.port, "GET", "/healthz")
        assert status == 200
        health = json.loads(raw)
        assert health["status"] == "ok"
        assert health["running"] == 0

        status, headers, raw = request(service.port, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        parse_prometheus(raw.decode("utf-8"))  # must be valid exposition text


def test_admission_budget_returns_429_with_retry_after(tmp_path, monkeypatch):
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 0.6)
    monkeypatch.setenv(FAULT_ENV_VAR, "slow:cactus_p8:99")
    config = make_config(tmp_path, max_running=1, queue_limit=1)
    with ServiceThread(config) as service:
        port = service.port
        admitted = []
        # Distinct specs (timing_seed varies) so nothing dedupes.
        for seed in range(3):
            status, headers, raw = request(
                port, "POST", "/v1/jobs", {**SPEC, "timing_seed": seed}
            )
            if status == 202:
                admitted.append(json.loads(raw)["job_id"])
            else:
                assert status == 429
                assert "retry-after" in headers
                assert "error" in json.loads(raw)
        assert len(admitted) == 2  # max_running + queue_limit
        assert metrics_value(port, "hfast_serve_rejected_429") == 1.0

        for job_id in admitted:
            assert wait_for_job(port, job_id)["status"] == "done"

        # Budget freed: the rejected spec is admissible now.
        status, _, _ = request(port, "POST", "/v1/jobs", {**SPEC, "timing_seed": 2})
        assert status == 202


def test_events_endpoint_reflects_job_lifecycle(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        port = service.port
        _, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        wait_for_job(port, json.loads(raw)["job_id"])
        status, _, raw = request(port, "GET", "/v1/events?n=10")
        assert status == 200
        doc = json.loads(raw)
        kinds = [e.get("event") for e in doc["events"]]
        assert "job_start" in kinds and "job_done" in kinds

        assert request(port, "GET", "/v1/events?n=bogus")[0] == 400


def test_job_listing_includes_finished_jobs(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        port = service.port
        _, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        job_id = json.loads(raw)["job_id"]
        wait_for_job(port, job_id)
        status, _, raw = request(port, "GET", "/v1/jobs")
        assert status == 200
        listing = json.loads(raw)
        assert [j["job_id"] for j in listing["jobs"]] == [job_id]
        assert listing["active"] == 0


def test_manifest_records_service_provenance(tmp_path):
    """The run manifest ties a served artifact back to its submission."""
    config = make_config(tmp_path, scheduler="stealing")
    with ServiceThread(config) as service:
        port = service.port
        _, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        doc = json.loads(raw)
        job = wait_for_job(port, doc["job_id"])
        assert job["status"] == "done"
        assert job["run_id"] == doc["run_id"]
        assert job["scheduler"]["run_id"] == doc["run_id"]
