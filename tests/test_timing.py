"""LogGP timing-model unit and invariant tests.

The contract the rest of the pipeline leans on:

- synthesized times are strictly positive and finite;
- at a fixed (rank, peer, call), time is monotone nondecreasing in
  message size (jitter never keys on size);
- a record with ``count == 1`` has ``min_time == max_time == total_time``;
  with repeats the spread brackets the mean;
- the scalar and vectorized paths produce bit-identical float64 values;
- everything is a pure function of (app, nranks, seed) — same seed, same
  times; different seed, different jitter.
"""

import math

import numpy as np
import pytest

from hfast.apps import available_apps, synthesize
from hfast.records import COLLECTIVE_CALLS, CommRecord, RecordBatch
from hfast.timing import (
    APP_PARAMS,
    DEFAULT_TIMING_SEED,
    LogGPParams,
    TimingModel,
    apply_timing,
    mix64,
    mix64_vec,
)

ALL_APPS = ("cactus", "gtc", "lbmhd", "paratec")


def test_mix64_scalar_vector_parity():
    xs = [0, 1, 2**31, 2**63, 2**64 - 1, 0xDEADBEEF, 12345678901234567890 % 2**64]
    vec = mix64_vec(np.array(xs, dtype=np.uint64))
    assert [mix64(x) for x in xs] == [int(v) for v in vec]


def test_mix64_is_a_bijection_sample():
    seen = {mix64(x) for x in range(4096)}
    assert len(seen) == 4096


@pytest.mark.parametrize("app", ALL_APPS)
def test_times_strictly_positive(app):
    trace = synthesize(app, 16)
    b = trace.ensure_batch()
    assert b.has_times
    for col in (b.total_time, b.min_time, b.max_time):
        assert np.all(np.isfinite(col))
        assert np.all(col > 0.0)
    assert np.all(b.min_time <= b.max_time)
    # total over count repeats can't fall below count * min or above count * max
    count = b.count.astype(np.float64)
    assert np.all(b.total_time >= b.min_time * count * (1 - 1e-12))
    assert np.all(b.total_time <= b.max_time * count * (1 + 1e-12))


@pytest.mark.parametrize("app", ALL_APPS)
def test_monotone_in_message_size(app):
    """At a fixed (rank, peer, call), mean time never decreases with size."""
    model = TimingModel(app, 64)
    for call in ("MPI_Isend", "MPI_Irecv", "MPI_Allreduce", "MPI_Alltoall"):
        for rank, peer in ((0, 1), (7, 63), (33, 12)):
            times = [
                model.mean_call_time(call, size, rank, peer)
                for size in (0, 1, 64, 4096, 65536, 2**20, 2**24)
            ]
            assert times == sorted(times), f"{call} r{rank}->p{peer}: {times}"


def test_count_one_collapses_min_max():
    model = TimingModel("cactus", 8)
    total, tmin, tmax = model.time_record(CommRecord(0, "MPI_Isend", 4096, 1, count=1))
    assert total == tmin == tmax
    total, tmin, tmax = model.time_record(CommRecord(0, "MPI_Isend", 4096, 1, count=10))
    assert tmin < total / 10 < tmax
    assert tmin > 0.0


def test_jitter_bounds_respected():
    p = APP_PARAMS["cactus"]
    model = TimingModel("cactus", 16)
    base_model = TimingModel("cactus", 16, params=LogGPParams(**{**p.to_dict(), "jitter": 0.0}))
    for rank in range(16):
        jittered = model.mean_call_time("MPI_Isend", 1024, rank, (rank + 1) % 16)
        base = base_model.mean_call_time("MPI_Isend", 1024, rank, (rank + 1) % 16)
        assert base * (1 - p.jitter) <= jittered <= base * (1 + p.jitter)


def test_zero_jitter_is_exact_loggp():
    params = LogGPParams(L=5e-6, o=1e-6, g=2e-6, G=1e-9, jitter=0.0)
    model = TimingModel("cactus", 2, params=params)
    expected = 1e-6 * 1.0 + (5e-6 + 2e-6) + 4096 * 1e-9  # o*f(Isend) + L + g + size*G
    assert model.mean_call_time("MPI_Isend", 4096, 0, 1) == pytest.approx(expected)


def test_collectives_scale_with_log_tree_stages():
    params = LogGPParams(jitter=0.0)
    small = TimingModel("gtc", 2, params=params)
    large = TimingModel("gtc", 64, params=params)
    for call in COLLECTIVE_CALLS:
        assert large.mean_call_time(call, 1024, 0, 0) > small.mean_call_time(call, 1024, 0, 0)
    # ptp calls are stage-independent
    assert large.mean_call_time("MPI_Isend", 1024, 0, 1) == small.mean_call_time(
        "MPI_Isend", 1024, 0, 1
    )


def test_scalar_vector_batch_parity():
    """time_batch and time_record agree bit-for-bit on every record."""
    for app in ALL_APPS:
        trace = synthesize(app, 16, backend="scalar", timing_seed=None)
        records = trace.records
        batch = RecordBatch.from_records(records)
        model = TimingModel(app, 16, seed=3)
        total, tmin, tmax = model.time_batch(batch)
        for i, rec in enumerate(records):
            st, sn, sx = model.time_record(rec)
            assert st == total[i] and sn == tmin[i] and sx == tmax[i]


def test_same_seed_reproduces_different_seed_diverges():
    a = synthesize("lbmhd", 8, timing_seed=7).ensure_batch()
    b = synthesize("lbmhd", 8, timing_seed=7).ensure_batch()
    c = synthesize("lbmhd", 8, timing_seed=8).ensure_batch()
    assert np.array_equal(a.total_time, b.total_time)
    assert not np.array_equal(a.total_time, c.total_time)


def test_apps_have_distinct_jitter_streams():
    ca = TimingModel("cactus", 16, params=LogGPParams())
    lb = TimingModel("lbmhd", 16, params=LogGPParams())
    assert ca.mean_call_time("MPI_Isend", 1024, 0, 1) != lb.mean_call_time(
        "MPI_Isend", 1024, 0, 1
    )


def test_apply_timing_stamps_descriptor_and_is_idempotent():
    trace = synthesize("gtc", 8, timing_seed=None)
    assert trace.timing is None
    apply_timing(trace, seed=5)
    assert trace.timing["model"] == "loggp"
    assert trace.timing["seed"] == 5
    first = trace.ensure_batch().total_time.copy()
    apply_timing(trace, seed=5)
    assert np.array_equal(trace.ensure_batch().total_time, first)


def test_compute_time_scales_with_step_overrides():
    model = TimingModel("cactus", 8)
    assert model.compute_time({"steps": 24}) == pytest.approx(2 * model.compute_time({"steps": 12}))
    assert model.compute_time(None) == model.compute_time({})
    para = TimingModel("paratec", 8)
    assert para.compute_time({"fft_cycles": 6}) == pytest.approx(
        2 * para.compute_time({"fft_cycles": 3})
    )


def test_invalid_model_params_rejected():
    with pytest.raises(ValueError):
        TimingModel("cactus", 0)
    with pytest.raises(ValueError):
        TimingModel("cactus", 8, params=LogGPParams(jitter=1.5))


def test_every_app_has_params():
    assert set(available_apps()) <= set(APP_PARAMS)
    for p in APP_PARAMS.values():
        assert p.compute_step_s > 0 and 0 <= p.jitter < 1
        assert math.isfinite(p.L + p.o + p.g + p.G)
