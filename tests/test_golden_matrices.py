"""Golden communication-matrix fixtures.

Tiny-scale (8/16-rank) matrices for every app are committed under
``tests/golden/``; these tests pin the paper-facing numbers so a
synthesizer refactor (vectorization, dtype changes, regrouping) cannot
silently change them. Regenerate intentionally with::

    PYTHONPATH=src python scripts/gen_golden.py
"""

import json
from pathlib import Path

import pytest

from hfast.apps import available_apps, synthesize
from hfast.matrix import reduce_matrix
from hfast.topology import analyze_topology

GOLDEN_DIR = Path(__file__).parent / "golden"
CASES = [(app, n) for app in ("cactus", "gtc", "lbmhd", "paratec") for n in (8, 16)]


def load_fixture(app: str, nranks: int) -> dict:
    path = GOLDEN_DIR / f"{app}_p{nranks}.json"
    assert path.exists(), f"missing golden fixture {path}; run scripts/gen_golden.py"
    return json.loads(path.read_text())


def test_fixture_set_is_complete():
    assert {(a, n) for a, n in CASES} <= {
        (f["app"], f["nranks"])
        for f in (json.loads(p.read_text()) for p in GOLDEN_DIR.glob("*.json"))
    }
    assert set(available_apps()) == {"cactus", "gtc", "lbmhd", "paratec"}


@pytest.mark.parametrize("app,nranks", CASES)
def test_matrix_matches_golden(app, nranks):
    golden = load_fixture(app, nranks)
    trace = synthesize(app, nranks)
    cm = reduce_matrix(trace.batch if trace.batch is not None else trace.records, nranks)
    assert cm.bytes_matrix.tolist() == golden["bytes_matrix"]
    assert cm.msg_matrix.tolist() == golden["msg_matrix"]
    assert cm.total_bytes == golden["total_bytes"]
    assert cm.total_messages == golden["total_messages"]
    assert trace.call_totals == golden["call_totals"]
    assert analyze_topology(cm).max_degree == golden["max_degree"]


@pytest.mark.parametrize("app,nranks", CASES)
def test_scalar_backend_matches_golden(app, nranks):
    """The reference per-record path must agree with the committed numbers."""
    golden = load_fixture(app, nranks)
    trace = synthesize(app, nranks, backend="scalar")
    cm = reduce_matrix(trace.records, nranks)
    assert cm.bytes_matrix.tolist() == golden["bytes_matrix"]
    assert cm.total_bytes == golden["total_bytes"]
    assert trace.call_totals == golden["call_totals"]
