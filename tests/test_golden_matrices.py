"""Golden communication-matrix fixtures.

Tiny-scale (8/16-rank) matrices for every app are committed under
``tests/golden/``; these tests pin the paper-facing numbers so a
synthesizer refactor (vectorization, dtype changes, regrouping) cannot
silently change them. Regenerate intentionally with::

    PYTHONPATH=src python scripts/gen_golden.py
"""

import json
from pathlib import Path

import numpy as np
import pytest

from hfast.apps import available_apps, synthesize
from hfast.cache import validate_document
from hfast.matrix import reduce_matrix
from hfast.records import Trace
from hfast.timing import apply_timing
from hfast.topology import analyze_topology

GOLDEN_DIR = Path(__file__).parent / "golden"
CASES = [(app, n) for app in ("cactus", "gtc", "lbmhd", "paratec") for n in (8, 16)]


def load_fixture(app: str, nranks: int) -> dict:
    path = GOLDEN_DIR / f"{app}_p{nranks}.json"
    assert path.exists(), f"missing golden fixture {path}; run scripts/gen_golden.py"
    return json.loads(path.read_text())


def test_fixture_set_is_complete():
    assert {(a, n) for a, n in CASES} <= {
        (f["app"], f["nranks"])
        for f in (json.loads(p.read_text()) for p in GOLDEN_DIR.glob("*.json"))
    }
    assert set(available_apps()) == {"cactus", "gtc", "lbmhd", "paratec"}


@pytest.mark.parametrize("app,nranks", CASES)
def test_matrix_matches_golden(app, nranks):
    golden = load_fixture(app, nranks)
    trace = synthesize(app, nranks)
    cm = reduce_matrix(trace.batch if trace.batch is not None else trace.records, nranks)
    assert cm.bytes_matrix.tolist() == golden["bytes_matrix"]
    assert cm.msg_matrix.tolist() == golden["msg_matrix"]
    assert cm.total_bytes == golden["total_bytes"]
    assert cm.total_messages == golden["total_messages"]
    assert trace.call_totals == golden["call_totals"]
    assert analyze_topology(cm).max_degree == golden["max_degree"]


@pytest.mark.parametrize("app,nranks", CASES)
def test_scalar_backend_matches_golden(app, nranks):
    """The reference per-record path must agree with the committed numbers."""
    golden = load_fixture(app, nranks)
    trace = synthesize(app, nranks, backend="scalar")
    cm = reduce_matrix(trace.records, nranks)
    assert cm.bytes_matrix.tolist() == golden["bytes_matrix"]
    assert cm.total_bytes == golden["total_bytes"]
    assert trace.call_totals == golden["call_totals"]


@pytest.mark.parametrize("app,nranks", CASES)
def test_timing_matches_golden(app, nranks):
    """The LogGP model at the pinned seed reproduces the committed comm time."""
    golden = load_fixture(app, nranks)
    trace = synthesize(app, nranks, timing_seed=golden["timing_seed"])
    batch = trace.ensure_batch()
    assert batch.has_times
    assert float(np.sum(batch.total_time)) == golden["comm_time_s"]
    assert golden["comm_time_s"] > 0.0
    assert 0.0 < golden["pct_comm"] < 100.0


@pytest.mark.parametrize("app,nranks", CASES)
def test_format2_shim_roundtrips_to_format3(app, nranks):
    """A legacy format-2 document re-times to the exact format-3 bytes.

    Downgrading a format-3 document (strip the timing descriptor, zero the
    per-record times) and loading it through the read shim must reproduce
    the original format-3 serialization byte for byte — the guarantee that
    keeps the committed format-2 seed corpus equivalent to fresh caches.
    """
    trace = synthesize(app, nranks)
    doc3 = trace.to_document()
    validate_document(doc3)
    assert doc3["format"] == 3

    legacy = json.loads(json.dumps(doc3))
    legacy["format"] = 2
    del legacy["metadata"]["timing"]
    for rec in legacy["records"]:
        rec["total_time"] = rec["min_time"] = rec["max_time"] = 0.0
    validate_document(legacy)

    loaded = Trace.from_document(legacy)
    assert loaded.timing is None
    apply_timing(loaded, seed=doc3["metadata"]["timing"]["seed"])
    assert json.dumps(loaded.to_document(), sort_keys=True) == json.dumps(
        doc3, sort_keys=True
    )
