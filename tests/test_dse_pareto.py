"""Properties of the Pareto dominance/frontier utilities.

Seeded property tests pin the frontier's defining invariants — mutual
non-domination, domination of every dropped point, order-insensitivity —
plus the degenerate cases (empty input, single point, all-equal
objectives) that a naive pairwise filter tends to get wrong.
"""

from __future__ import annotations

import random

import pytest

from hfast.dse.pareto import (
    SENSES,
    Objective,
    dominates,
    frontier_indices,
    normalize,
    pareto_frontier,
    pareto_rank,
    sort_key,
)

OBJS = (Objective("cov", "max"), Objective("bytes", "min"), Objective("cost", "min"))


def _random_points(seed: int, n: int) -> list[dict[str, float]]:
    rng = random.Random(seed)
    return [
        {
            "cov": rng.choice([0.0, 0.25, 0.5, 0.75, 1.0]),
            "bytes": float(rng.randrange(0, 5) * 1000),
            "cost": round(rng.uniform(0.0, 4.0), 2),
        }
        for _ in range(n)
    ]


# -- objective basics -------------------------------------------------------


def test_objective_rejects_unknown_sense():
    with pytest.raises(ValueError):
        Objective("x", "sideways")
    assert SENSES == ("min", "max")


def test_dominates_orientation():
    a = {"cov": 1.0, "bytes": 0.0, "cost": 1.0}
    b = {"cov": 0.5, "bytes": 100.0, "cost": 1.0}
    assert dominates(a, b, OBJS)
    assert not dominates(b, a, OBJS)
    # Equal on every objective: neither dominates.
    assert not dominates(a, dict(a), OBJS)


def test_normalize_negates_max_objectives():
    p = {"cov": 0.75, "bytes": 10.0, "cost": 2.0}
    assert normalize(p, OBJS) == (-0.75, 10.0, 2.0)
    assert sort_key(p, OBJS) == normalize(p, OBJS)


# -- seeded frontier properties ---------------------------------------------


@pytest.mark.parametrize("seed", [0, 7, 1234])
@pytest.mark.parametrize("n", [1, 2, 17, 60])
def test_frontier_mutually_non_dominated(seed, n):
    points = _random_points(seed, n)
    kept, dropped = pareto_frontier(points, OBJS)
    assert sorted(kept + dropped) == list(range(n))
    for i in kept:
        for j in kept:
            if i != j:
                assert not dominates(points[i], points[j], OBJS)


@pytest.mark.parametrize("seed", [0, 7, 1234])
@pytest.mark.parametrize("n", [2, 17, 60])
def test_frontier_dominates_every_dropped_point(seed, n):
    points = _random_points(seed, n)
    kept, dropped = pareto_frontier(points, OBJS)
    for j in dropped:
        assert any(dominates(points[i], points[j], OBJS) for i in kept)


@pytest.mark.parametrize("seed", [3, 99])
def test_frontier_is_order_insensitive(seed):
    points = _random_points(seed, 40)
    kept, _ = pareto_frontier(points, OBJS)
    frontier_set = {tuple(sorted(points[i].items())) for i in kept}

    shuffled = list(points)
    random.Random(seed + 1).shuffle(shuffled)
    kept_s, _ = pareto_frontier(shuffled, OBJS)
    assert {tuple(sorted(shuffled[i].items())) for i in kept_s} == frontier_set


# -- degenerate cases -------------------------------------------------------


def test_empty_input_yields_empty_frontier():
    assert pareto_frontier([], OBJS) == ([], [])
    assert frontier_indices([], OBJS) == []
    assert pareto_rank([], OBJS) == []


def test_single_point_is_its_own_frontier():
    kept, dropped = pareto_frontier([{"cov": 0.5, "bytes": 1.0, "cost": 1.0}], OBJS)
    assert kept == [0] and dropped == []


def test_all_equal_objectives_all_kept():
    points = [{"cov": 0.5, "bytes": 100.0, "cost": 2.0}] * 5
    kept, dropped = pareto_frontier(points, OBJS)
    assert kept == [0, 1, 2, 3, 4] and dropped == []
    assert pareto_rank(points, OBJS) == [0, 0, 0, 0, 0]


# -- ranking ----------------------------------------------------------------


def test_pareto_rank_layers():
    points = [
        {"cov": 1.0, "bytes": 0.0, "cost": 0.0},  # dominates everything
        {"cov": 0.5, "bytes": 10.0, "cost": 1.0},
        {"cov": 0.25, "bytes": 20.0, "cost": 2.0},
    ]
    assert pareto_rank(points, OBJS) == [0, 1, 2]


def test_rank_zero_matches_frontier():
    points = _random_points(42, 30)
    kept, _ = pareto_frontier(points, OBJS)
    ranks = pareto_rank(points, OBJS)
    assert [i for i, r in enumerate(ranks) if r == 0] == kept
