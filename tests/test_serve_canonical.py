"""Canonicalization and content-addressing properties of serve job specs.

The service's cache correctness rests on two properties of
:func:`hfast.serve.jobspec.canonicalize`:

1. submissions that describe the same analysis — reordered fields,
   defaults spelled out, ``1e-3`` vs ``0.001`` — land on the same sha256
   key, so they share one cached result;
2. submissions that differ in any output-affecting field never collide.

Both are pinned here with seeded sweeps (plus hypothesis sweeps when the
library is installed), alongside the validation-error table the 400
responses are built from.
"""

import json

import pytest

from hfast.cache import cache_key
from hfast.serve.jobspec import (
    FIELDS,
    JobSpec,
    JobValidationError,
    canonicalize,
)

MINIMAL = {"app": "cactus", "nranks": 8}


def test_minimal_spec_gets_all_defaults():
    spec = canonicalize(MINIMAL)
    assert spec.app == "cactus"
    assert spec.nranks == 8
    assert spec.backend == "vector"
    assert spec.matcher == "vector"
    assert spec.timesteps == 4
    assert spec.overrides == ()


def test_key_is_full_sha256_hex():
    key = canonicalize(MINIMAL).key
    assert len(key) == 64
    assert int(key, 16) >= 0


def test_field_order_does_not_change_key():
    a = canonicalize({"app": "gtc", "nranks": 16, "timing_seed": 3, "matcher": "scalar"})
    b = canonicalize({"matcher": "scalar", "timing_seed": 3, "nranks": 16, "app": "gtc"})
    assert a == b
    assert a.key == b.key


def test_explicit_defaults_land_on_same_key():
    minimal = canonicalize(MINIMAL)
    spelled = canonicalize(minimal.payload())  # every field explicit
    assert spelled == minimal
    assert spelled.key == minimal.key


def test_float_spellings_of_same_value_share_key():
    a = canonicalize({**MINIMAL, "reconfig_cost": 1e-3})
    b = canonicalize({**MINIMAL, "reconfig_cost": 0.001})
    assert a.key == b.key


def test_int_valued_float_field_shares_key_with_int():
    a = canonicalize({**MINIMAL, "circuit_bandwidth": 10_000_000_000})
    b = canonicalize({**MINIMAL, "circuit_bandwidth": 10e9})
    assert a.key == b.key


def test_json_round_trip_of_payload_is_key_stable():
    spec = canonicalize({**MINIMAL, "timesteps": 7, "overrides": {"x": 1.5}})
    wire = json.loads(json.dumps(spec.payload()))
    assert canonicalize(wire).key == spec.key


def test_every_field_change_changes_key():
    """Perturbing any single field must move the spec to a new key."""
    base = canonicalize(MINIMAL)
    perturbed = {
        "app": "gtc",
        "nranks": 16,
        "backend": "scalar",
        "timing_seed": 99,
        "overrides": {"w": 2},
        "circuits_per_node": 5,
        "circuit_bandwidth": 11e9,
        "packet_bandwidth": 2e9,
        "circuit_latency": 2e-6,
        "packet_latency": 2e-5,
        "timesteps": 8,
        "reconfig_cost": 2e-3,
        "slice_seed": 1,
        "matcher": "incremental",
    }
    keys = {base.key}
    for name, value in perturbed.items():
        key = canonicalize({**MINIMAL, name: value}).key
        assert key not in keys, f"perturbing {name} collided with a prior key"
        keys.add(key)


def test_seeded_sweep_distinct_specs_never_collide():
    import random

    rng = random.Random(20260808)
    seen: dict[str, tuple] = {}
    apps = ("cactus", "gtc", "lbmhd", "paratec")
    for _ in range(300):
        payload = {
            "app": rng.choice(apps),
            "nranks": rng.choice((4, 8, 16, 32)),
            "timing_seed": rng.randrange(4),
            "timesteps": rng.randrange(1, 5),
            "slice_seed": rng.randrange(3),
            "matcher": rng.choice(("scalar", "vector", "incremental")),
        }
        spec = canonicalize(payload)
        ident = tuple(sorted(spec.canonical_doc()["interconnect"].items())) + (
            spec.app, spec.nranks, spec.backend, spec.timing_seed, spec.overrides,
        )
        if spec.key in seen:
            assert seen[spec.key] == ident, "distinct specs collided on one key"
        seen[spec.key] = ident


def test_trace_cache_key_matches_repro_cache_contract():
    spec = canonicalize({**MINIMAL, "overrides": {"a": 1}})
    assert spec.trace_cache_key == cache_key("cactus", 8, {"a": 1})


def test_interconnect_config_carries_every_knob():
    spec = canonicalize(
        {**MINIMAL, "timesteps": 9, "reconfig_cost": 0.5, "matcher": "incremental"}
    )
    cfg = spec.interconnect_config()
    assert cfg.timesteps == 9
    assert cfg.reconfig_cost == 0.5
    assert cfg.matcher == "incremental"
    assert cfg.circuits_per_node == 4


# -- validation-error table ---------------------------------------------------

INVALID = [
    ("not-an-object", [1, 2, 3], "must be a JSON object"),
    ("missing-app", {"nranks": 8}, "app: required"),
    ("missing-nranks", {"app": "cactus"}, "nranks: required"),
    ("unknown-app", {"app": "nonesuch", "nranks": 8}, "unknown app"),
    ("unknown-field", {**MINIMAL, "wat": 1}, "unknown field"),
    ("nranks-zero", {"app": "cactus", "nranks": 0}, "nranks"),
    ("nranks-negative", {"app": "cactus", "nranks": -4}, "nranks"),
    ("nranks-bool", {"app": "cactus", "nranks": True}, "nranks"),
    ("nranks-float", {"app": "cactus", "nranks": 8.0}, "nranks"),
    ("nranks-string", {"app": "cactus", "nranks": "8"}, "nranks"),
    ("nranks-huge", {"app": "cactus", "nranks": 1 << 21}, "nranks"),
    ("bad-backend", {**MINIMAL, "backend": "cuda"}, "backend"),
    ("bad-matcher", {**MINIMAL, "matcher": "quantum"}, "matcher"),
    ("seed-bool", {**MINIMAL, "timing_seed": False}, "timing_seed"),
    ("timesteps-zero", {**MINIMAL, "timesteps": 0}, "timesteps"),
    ("negative-circuits", {**MINIMAL, "circuits_per_node": -1}, "circuits_per_node"),
    ("zero-bandwidth", {**MINIMAL, "circuit_bandwidth": 0}, "circuit_bandwidth"),
    ("negative-latency", {**MINIMAL, "packet_latency": -1e-6}, "packet_latency"),
    ("inf-bandwidth", {**MINIMAL, "circuit_bandwidth": float("inf")}, "circuit_bandwidth"),
    ("nan-cost", {**MINIMAL, "reconfig_cost": float("nan")}, "reconfig_cost"),
    ("negative-cost", {**MINIMAL, "reconfig_cost": -0.1}, "reconfig_cost"),
    ("overrides-list", {**MINIMAL, "overrides": [1]}, "overrides"),
    ("overrides-nested", {**MINIMAL, "overrides": {"x": {"y": 1}}}, "overrides"),
]


@pytest.mark.parametrize("label,payload,needle", INVALID, ids=[i[0] for i in INVALID])
def test_invalid_payload_rejected(label, payload, needle):
    with pytest.raises(JobValidationError) as err:
        canonicalize(payload)
    assert any(needle in e for e in err.value.errors), err.value.errors


def test_all_errors_collected_in_one_pass():
    with pytest.raises(JobValidationError) as err:
        canonicalize({"app": "nonesuch", "nranks": -1, "matcher": "bad", "extra": 1})
    joined = " | ".join(err.value.errors)
    assert "app" in joined and "nranks" in joined
    assert "matcher" in joined and "unknown field" in joined
    assert len(err.value.errors) >= 4


def test_nan_injected_via_json_literals_is_rejected():
    # json.loads accepts Infinity/NaN extensions; the validator must not.
    payload = json.loads('{"app": "cactus", "nranks": 8, "reconfig_cost": NaN}')
    with pytest.raises(JobValidationError):
        canonicalize(payload)


def test_fields_table_covers_jobspec():
    assert set(FIELDS) == {f.name for f in JobSpec.__dataclass_fields__.values()}


# -- hypothesis sweeps (skipped when the library is unavailable) --------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

spec_payloads = st.fixed_dictionaries(
    {"app": st.sampled_from(("cactus", "gtc", "lbmhd", "paratec")),
     "nranks": st.integers(min_value=1, max_value=1024)},
    optional={
        "backend": st.sampled_from(("vector", "scalar")),
        "timing_seed": st.integers(min_value=-10, max_value=10),
        "timesteps": st.integers(min_value=1, max_value=64),
        "slice_seed": st.integers(min_value=-5, max_value=5),
        "matcher": st.sampled_from(("scalar", "vector", "incremental")),
        "reconfig_cost": st.floats(min_value=0, max_value=10, allow_nan=False),
        "circuit_bandwidth": st.floats(min_value=1, max_value=1e12, allow_nan=False),
    },
)


@settings(max_examples=150, deadline=None)
@given(payload=spec_payloads)
def test_hypothesis_payload_round_trip_is_key_stable(payload):
    spec = canonicalize(payload)
    again = canonicalize(json.loads(json.dumps(spec.payload())))
    assert again == spec
    assert again.key == spec.key


@settings(max_examples=150, deadline=None)
@given(payload=spec_payloads, data=st.data())
def test_hypothesis_key_equality_iff_canonical_doc_equality(payload, data):
    other = data.draw(spec_payloads)
    a, b = canonicalize(payload), canonicalize(other)
    assert (a.key == b.key) == (a.canonical_doc() == b.canonical_doc())
