import json

import pytest

from hfast.apps import synthesize
from hfast.cache import (
    CacheValidationError,
    ReproCache,
    cache_key,
    cache_path,
    validate_document,
)


def valid_doc(nranks=2):
    return {
        "format": 2,
        "metadata": {"app": "toy", "nranks": nranks, "overrides": {}},
        "call_totals": {"MPI_Isend": 3},
        "records": [
            {
                "rank": 0,
                "call": "MPI_Isend",
                "size": 1024,
                "peer": 1,
                "region": "steady",
                "count": 3,
                "total_time": 0.0,
                "min_time": 0.0,
                "max_time": 0.0,
            }
        ],
    }


def valid_doc_v3(nranks=2):
    doc = valid_doc(nranks)
    doc["format"] = 3
    doc["metadata"]["timing"] = {"model": "loggp", "seed": 0, "params": {}}
    rec = doc["records"][0]
    rec["total_time"], rec["min_time"], rec["max_time"] = 3e-5, 0.9e-5, 1.2e-5
    return doc


class TestKeying:
    def test_key_matches_seed_corpus(self):
        # Known filenames from the checked-in seed cache.
        assert cache_key("cactus", 8, {}) == "d0f189f7c632"
        assert cache_key("cactus", 8, {"steps": 4}) == "31d27bb5ad70"
        assert cache_key("paratec", 16, {"fft_cycles": 1}) == "478e0f436f59"

    def test_path_layout(self, tmp_path):
        p = cache_path(tmp_path, "cactus", 8)
        assert p.name == "cactus_p8_d0f189f7c632.json"

    def test_overrides_change_key(self):
        assert cache_key("gtc", 16, {}) != cache_key("gtc", 16, {"steps": 2})


class TestValidator:
    def test_valid_document_passes(self):
        validate_document(valid_doc(), "x.json")

    def test_error_names_offending_file(self):
        doc = valid_doc()
        del doc["records"]
        with pytest.raises(CacheValidationError, match="bad/file.json"):
            validate_document(doc, "bad/file.json")

    def test_rejects_wrong_format_version(self):
        doc = valid_doc()
        doc["format"] = 1
        with pytest.raises(CacheValidationError, match="format version"):
            validate_document(doc, "f.json")

    @pytest.mark.parametrize("key", ["format", "metadata", "call_totals", "records"])
    def test_rejects_missing_top_key(self, key):
        doc = valid_doc()
        del doc[key]
        with pytest.raises(CacheValidationError, match=key):
            validate_document(doc, "f.json")

    @pytest.mark.parametrize("key", ["rank", "call", "size", "peer", "count"])
    def test_rejects_missing_record_field(self, key):
        doc = valid_doc()
        del doc["records"][0][key]
        with pytest.raises(CacheValidationError, match=f"records\\[0\\] missing required field '{key}'"):
            validate_document(doc, "f.json")

    @pytest.mark.parametrize("key", ["size", "count", "total_time"])
    def test_rejects_negative_values(self, key):
        doc = valid_doc()
        doc["records"][0][key] = -1
        doc["call_totals"] = {"MPI_Isend": doc["records"][0]["count"]}
        with pytest.raises(CacheValidationError, match="non-negative"):
            validate_document(doc, "f.json")

    def test_rejects_out_of_range_peer(self):
        doc = valid_doc(nranks=2)
        doc["records"][0]["peer"] = 5
        with pytest.raises(CacheValidationError, match="out of range"):
            validate_document(doc, "f.json")

    def test_rejects_inconsistent_call_totals(self):
        doc = valid_doc()
        doc["call_totals"] = {"MPI_Isend": 999}
        with pytest.raises(CacheValidationError, match="call_totals"):
            validate_document(doc, "f.json")

    def test_seed_corpus_validates(self, repo_cache_dir):
        files = sorted(repo_cache_dir.glob("*.json"))
        assert len(files) >= 16
        for path in files:
            validate_document(json.loads(path.read_text()), path)

    def test_valid_format3_document_passes(self):
        validate_document(valid_doc_v3(), "x.json")

    def test_format3_allows_null_timing(self):
        doc = valid_doc_v3()
        doc["metadata"]["timing"] = None
        validate_document(doc, "x.json")

    def test_format3_requires_timing_key(self):
        doc = valid_doc_v3()
        del doc["metadata"]["timing"]
        with pytest.raises(CacheValidationError, match="timing"):
            validate_document(doc, "f.json")

    @pytest.mark.parametrize("key", ["model", "seed"])
    def test_format3_timing_descriptor_fields_required(self, key):
        doc = valid_doc_v3()
        del doc["metadata"]["timing"][key]
        with pytest.raises(CacheValidationError, match=key):
            validate_document(doc, "f.json")

    def test_rejects_min_time_above_max_time(self):
        doc = valid_doc_v3()
        doc["records"][0]["min_time"] = 5.0
        with pytest.raises(CacheValidationError, match="min_time"):
            validate_document(doc, "f.json")

    def test_format2_does_not_require_timing(self):
        validate_document(valid_doc(), "x.json")  # no metadata.timing key


class TestReproCache:
    def test_miss_then_store_then_hit(self, tmp_path):
        cache = ReproCache(tmp_path)
        assert cache.load("cactus", 8) is None
        trace = synthesize("cactus", 8)
        path = cache.store(trace)
        assert path.exists()
        again = cache.load("cactus", 8)
        assert again is not None
        assert again.call_totals == trace.call_totals
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_load_rejects_corrupt_file(self, tmp_path):
        cache = ReproCache(tmp_path)
        path = cache.path_for("cactus", 8)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"format": 2}')
        with pytest.raises(CacheValidationError, match=str(path)):
            cache.load("cactus", 8)
        assert cache.stats.validation_failures == 1

    def test_load_rejects_invalid_json(self, tmp_path):
        cache = ReproCache(tmp_path)
        path = cache.path_for("gtc", 4)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        with pytest.raises(CacheValidationError, match="invalid JSON"):
            cache.load("gtc", 4)

    def test_readonly_cache_does_not_write(self, tmp_path):
        cache = ReproCache(tmp_path, readonly=True)
        cache.store(synthesize("gtc", 4))
        assert list(tmp_path.glob("*.json")) == []

    def test_seed_loads_as_trace(self, repo_cache_dir):
        cache = ReproCache(repo_cache_dir, readonly=True)
        trace = cache.load("cactus", 16)
        assert trace is not None
        assert trace.nranks == 16
        assert trace.call_totals["MPI_Isend"] == 672

    def test_legacy_format2_load_retimes(self, repo_cache_dir):
        """Format-2 seed documents gain deterministic timing at load."""
        cache = ReproCache(repo_cache_dir, readonly=True)
        trace = cache.load("cactus", 16, timing_seed=0)
        assert trace.timing == {"model": "loggp", "seed": 0, "params": trace.timing["params"]}
        assert all(r.total_time > 0 for r in trace.records)
        untimed = cache.load("cactus", 16, timing_seed=None)
        assert untimed.timing is None
        assert all(r.total_time == 0.0 for r in untimed.records)

    def test_seed_mismatch_retimes_on_load(self, tmp_path):
        cache = ReproCache(tmp_path)
        cache.store(synthesize("gtc", 4, timing_seed=1))
        at1 = cache.load("gtc", 4, timing_seed=1)
        at2 = cache.load("gtc", 4, timing_seed=2)
        assert at1.timing["seed"] == 1 and at2.timing["seed"] == 2
        t1 = [r.total_time for r in at1.records]
        t2 = [r.total_time for r in at2.records]
        assert t1 != t2
        # same seed round-trips the stored values untouched
        again = cache.load("gtc", 4, timing_seed=1)
        assert [r.total_time for r in again.records] == t1
