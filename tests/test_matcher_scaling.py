"""Ultra-scale matcher tests: 32K-128K ranks over sparse edge columns.

Everything here is marked ``slow`` and excluded from the tier-1 run
(`pyproject.toml` sets ``-m 'not slow'``); the dedicated CI scale job
runs ``pytest -m slow``. The tests stay columnar throughout — a dense
32K matrix is 8.6 GB per plane, far beyond the CI runner — so scale
coverage is matcher-level over synthetic sparse topologies plus the
paper apps' real link structures (cactus 3D ghost exchange, gtc 1D
shift) built from the vectorized pair generators in :mod:`hfast.apps`.

The scalar backend is O(E) Python per pass and would dominate the job's
wall time at 32K, so the from-scratch baseline at full scale is the
vector backend (itself pinned against scalar at mid-scale here and
exhaustively at small scale in the differential suite).
"""

import time

import numpy as np
import pytest

from hfast.apps import _factor3, _ghost_pairs_vec
from hfast.matcher import (
    IncrementalMatcher,
    greedy_seed_scalar,
    greedy_seed_vector,
    match_edges,
    sort_edges,
)

pytestmark = pytest.mark.slow


# -- sparse synthetic topologies ----------------------------------------------


def sparse_topology(n: int, extra_per_rank: int = 5, seed: int = 7):
    """Ring offsets (1, 2, n/2) plus seeded long-range links, deduplicated.

    Roughly ``(3 + extra_per_rank) * n`` directed edges — the sparse
    regime the paper's apps actually occupy at scale (cactus at 32K has
    ~6 neighbours per rank, lbmhd ~8, gtc 2).
    """
    rng = np.random.default_rng(seed)
    r = np.arange(n, dtype=np.int64)
    src = [r, r, r]
    dst = [(r + 1) % n, (r + 2) % n, (r + n // 2) % n]
    for _ in range(extra_per_rank):
        off = rng.integers(3, n - 1, size=n)
        src.append(r)
        dst.append((r + off) % n)
    s = np.concatenate(src)
    d = np.concatenate(dst)
    keep = s != d
    s, d = s[keep], d[keep]
    _, uniq = np.unique(s * np.int64(n) + d, return_index=True)
    uniq = np.sort(uniq)
    return s[uniq], d[uniq]


def hashed_weights(src: np.ndarray, dst: np.ndarray, n: int, salt: int) -> np.ndarray:
    """Deterministic positive weights from the (pair, salt) key — the
    same splitmix-style finalizer the slice hashing uses."""
    key = (src * np.int64(n) + dst).astype(np.uint64)
    key += np.uint64((salt * 0x9E3779B97F4A7C15) % (1 << 64))
    key ^= key >> np.uint64(33)
    key *= np.uint64(0xFF51AFD7ED558CCD)
    key ^= key >> np.uint64(33)
    return (key % np.uint64(1 << 20)).astype(np.float64) + 1.0


def check_degrees(circuits, bound: int) -> None:
    out: dict[int, int] = {}
    ins: dict[int, int] = {}
    for s, d in circuits:
        out[s] = out.get(s, 0) + 1
        ins[d] = ins.get(d, 0) + 1
    assert not out or max(out.values()) <= bound
    assert not ins or max(ins.values()) <= bound


def matched_weight(circuits, src, dst, w, n) -> float:
    table = dict(zip((src * np.int64(n) + dst).tolist(), w.tolist()))
    return sum(table[s * n + d] for s, d in circuits)


# -- 32K: seed equality, degree bounds, weight floor --------------------------


def test_greedy_seed_equality_at_32k():
    """The b-Suitor rounds equal the sequential scan at full scale, not
    just on the small fuzz matrices of the property suite."""
    n = 32768
    src, dst = sparse_topology(n)
    w = hashed_weights(src, dst, n, salt=1)
    src, dst, w = sort_edges(src, dst, w, n)
    assert greedy_seed_vector(src, dst, w, n, 2) == greedy_seed_scalar(src, dst, w, n, 2)


def test_vector_match_degree_and_weight_floor_at_32k():
    n = 32768
    src, dst = sparse_topology(n)
    w = hashed_weights(src, dst, n, salt=2)
    ss, sd, sw = sort_edges(src, dst, w, n)
    seed = greedy_seed_vector(ss, sd, sw, n, 2)
    seed_weight = float(sw[np.asarray(seed, dtype=np.int64)].sum()) if seed else 0.0
    circuits = match_edges(src, dst, w, n, bound=2, backend="vector")
    check_degrees(circuits, 2)
    assert matched_weight(circuits, src, dst, w, n) >= seed_weight


def test_incremental_identity_at_32k():
    """Six steps of evolving weights: the incremental matcher must stay
    byte-identical to from-scratch vector matching through sparse deltas,
    an unchanged step, and an order-preserving global rescale."""
    n = 32768
    src, dst = sparse_topology(n)
    inc = IncrementalMatcher(src, dst, n, bound=1)
    base = hashed_weights(inc.src, inc.dst, n, salt=3)
    rng = np.random.default_rng(11)

    steps = [base.copy()]
    delta = base.copy()  # sparse delta: ~1% of edges change
    touch = rng.choice(len(delta), size=len(delta) // 100, replace=False)
    delta[touch] = hashed_weights(inc.src[touch], inc.dst[touch], n, salt=4)
    steps.append(delta)
    steps.append(delta.copy())  # unchanged
    steps.append(delta * 2.0)  # order-preserving rescale
    zeroed = delta * 2.0
    zeroed[touch] = 0.0  # support shrinks: edges drop out
    steps.append(zeroed)
    steps.append(base.copy())  # revert

    for i, w in enumerate(steps):
        got = inc.rematch(w)
        ref = match_edges(inc.src, inc.dst, w, n, bound=1, backend="vector")
        assert got == ref, f"step {i} diverged from from-scratch"
        check_degrees(got, 1)
    assert inc.stats["steps"] == len(steps)
    assert inc.stats["unchanged_hits"] == 1
    assert inc.stats["order_reuses"] >= 1


# -- paper-app link structures at 32K -----------------------------------------


def test_cactus_ghost_topology_at_32k_is_tie_heavy_and_identical():
    """cactus at 32K is a 32x32x32 grid: every ghost link carries the
    same bytes, so the whole topology is one giant tie group — maximum
    pressure on the stripe tie-break at full scale."""
    n = 32768
    ranks, peers = _ghost_pairs_vec(n, _factor3(n))
    w = np.full(len(ranks), 294912.0)
    vec = match_edges(ranks, peers, w, n, bound=2, backend="vector")
    inc = IncrementalMatcher(ranks, peers, n, bound=2)
    got = inc.rematch(w[inc.input_order])
    assert got == vec
    check_degrees(vec, 2)
    # Every rank has 6 distinct neighbours in a 32^3 torus, so budget 2
    # is nearly saturable; the grid-boundary wrap links perturb the
    # stripe structure, so local passes land within a whisker of full
    # saturation rather than exactly on it.
    assert len(vec) >= int(n * 2 * 0.999)


def test_gtc_shift_topology_at_32k_saturates_budget_1():
    n = 32768
    r = np.arange(n, dtype=np.int64)
    src = np.concatenate([r, r])
    dst = np.concatenate([(r + 1) % n, (r - 1) % n])
    w = np.concatenate([np.full(n, 524288.0), np.full(n, 524288.0)])
    circuits = match_edges(src, dst, w, n, bound=1, backend="vector")
    check_degrees(circuits, 1)
    assert len(circuits) == n


# -- mid-scale: scalar joins the differential ---------------------------------


def test_three_way_identity_at_2k():
    """Full 3-way identity with the scalar backend in the loop at the
    largest scale its Python passes stay affordable."""
    n = 2048
    src, dst = sparse_topology(n, extra_per_rank=3, seed=13)
    w = hashed_weights(src, dst, n, salt=5)
    outs = [
        match_edges(src, dst, w, n, bound=2, backend=b)
        for b in ("scalar", "vector", "incremental")
    ]
    assert outs[0] == outs[1] == outs[2]
    check_degrees(outs[0], 2)


# -- 128K: vector greedy smoke ------------------------------------------------


def test_vector_greedy_smoke_at_128k():
    """~1M edges at the paper's top rank count: the vectorized seed must
    complete quickly and respect degree bounds."""
    n = 131072
    src, dst = sparse_topology(n, extra_per_rank=5, seed=17)
    w = hashed_weights(src, dst, n, salt=6)
    src, dst, w = sort_edges(src, dst, w, n)
    start = time.perf_counter()
    seed = greedy_seed_vector(src, dst, w, n, 2)
    elapsed = time.perf_counter() - start
    assert elapsed < 60.0, f"128K greedy seed took {elapsed:.1f}s"
    ids = np.asarray(seed, dtype=np.int64)
    assert len(ids) > 0
    assert np.bincount(src[ids], minlength=n).max() <= 2
    assert np.bincount(dst[ids], minlength=n).max() <= 2
    assert seed == sorted(seed)
