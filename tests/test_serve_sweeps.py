"""Sweep jobs over HTTP + result-store LRU eviction.

The service-mode contract for the DSE subsystem: a frontier fetched
from ``POST /v1/sweeps`` is byte-identical to what a direct
:func:`run_search` produces for the same spec, resubmissions are served
from the content-addressed store, and malformed sweep payloads get the
same structured 400s as analyze jobs. The eviction tests pin the
``--store-max-bytes`` LRU semantics at both the store and daemon layer.
"""

import json
import os

import pytest

from hfast.dse.search import SearchSpec, frontier_bytes, run_search
from hfast.dse.space import SearchSpace
from hfast.obs.prom import parse_prometheus
from hfast.serve.store import ResultStore
from serve_util import ServiceThread, make_config, request, wait_for_job

SPACE_DOC = {
    "circuits": [1, 4],
    "reconfig_costs": [0.0],
    "matchers": ["vector"],
    "timesteps": [2],
}
SWEEP = {"app": "gtc", "nranks": 8, "space": SPACE_DOC, "strategy": "grid", "seed": 0}


def _direct_frontier(tmp_path):
    spec = SearchSpec(
        app="gtc", nranks=8, space=SearchSpace.from_doc(SPACE_DOC), strategy="grid", seed=0
    )
    out = run_search(
        spec,
        cache_dir=str(tmp_path / "direct"),
        store=False,
        journal_dir=str(tmp_path / "direct-journal"),
        bench_dir=None,
    )
    return spec, out["frontier"]


def _metric(port, name):
    _, _, raw = request(port, "GET", "/metrics")
    entry = parse_prometheus(raw.decode("utf-8")).get(name)
    return None if entry is None else entry["value"]


# -- sweep jobs over the wire ------------------------------------------------


def test_sweep_end_to_end_byte_identical_with_direct_search(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        status, _, raw = request(service.port, "POST", "/v1/sweeps", SWEEP)
        assert status == 202, raw
        doc = json.loads(raw)
        job = wait_for_job(service.port, doc["job_id"])
        assert job["status"] == "done", job
        assert job["kind"] == "sweep"

        status, headers, served = request(service.port, "GET", job["result_url"])
        assert status == 200
        assert headers["content-type"] == "application/json"

    spec, frontier = _direct_frontier(tmp_path)
    # The sweep key is the search spec's content address...
    assert doc["key"] == spec.key == frontier["search_key"]
    # ...and the served artifact is byte-for-byte the direct one.
    assert served == frontier_bytes(frontier)


def test_sweep_resubmission_served_from_store(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        _, _, raw = request(service.port, "POST", "/v1/sweeps", SWEEP)
        first = json.loads(raw)
        wait_for_job(service.port, first["job_id"])

        status, _, raw = request(service.port, "POST", "/v1/sweeps", SWEEP)
        assert status == 200
        doc = json.loads(raw)
        assert doc["cached"] is True
        assert doc["result_url"] == f"/v1/results/{first['key']}"


def test_sweep_validation_errors_merge_space_and_spec(tmp_path):
    config = make_config(tmp_path)
    with ServiceThread(config) as service:
        status, _, raw = request(
            service.port,
            "POST",
            "/v1/sweeps",
            {"app": "gtc", "bogus": 1, "space": {"circuits": []}},
        )
        assert status == 400
        errors = json.loads(raw)["errors"]
        msgs = "\n".join(errors)
        assert "bogus" in msgs  # unknown field
        assert "nranks" in msgs  # missing required field
        assert "circuits" in msgs  # space-level validation


# -- result-store LRU eviction ----------------------------------------------


def _key(ch):
    return ch * 64


def test_store_evicts_least_recently_used_first(tmp_path):
    evicted = []
    store = ResultStore(tmp_path, max_bytes=400, on_evict=evicted.append)
    pad = {"pad": "x" * 100}
    for i, ch in enumerate(("a", "b", "c", "d")):
        path = store.put(_key(ch), pad)
        # Pin mtimes so LRU order never depends on filesystem granularity.
        os.utime(path, (1000 + i, 1000 + i))
    store.put(_key("e"), pad)
    assert evicted == [_key("a"), _key("b")]
    assert not store.has(_key("a")) and store.has(_key("e"))


def test_store_read_touch_spares_a_key(tmp_path):
    store = ResultStore(tmp_path, max_bytes=250, on_evict=lambda k: None)
    pad = {"pad": "x" * 100}
    a = store.put(_key("a"), pad)
    b = store.put(_key("b"), pad)
    os.utime(a, (1000, 1000))
    os.utime(b, (2000, 2000))
    store.get_bytes(_key("a"))  # touch: now "b" is the LRU entry
    store.put(_key("c"), pad)
    assert store.has(_key("a")) and not store.has(_key("b"))


def test_store_never_evicts_the_just_written_artifact(tmp_path):
    evicted = []
    store = ResultStore(tmp_path, max_bytes=10, on_evict=evicted.append)
    store.put(_key("a"), {"pad": "x" * 500})  # alone over budget: survives
    assert store.has(_key("a")) and evicted == []
    store.put(_key("b"), {"pad": "y" * 500})
    assert store.has(_key("b")) and evicted == [_key("a")]


def test_store_rejects_nonpositive_budget(tmp_path):
    with pytest.raises(ValueError):
        ResultStore(tmp_path, max_bytes=0)
    with pytest.raises(ValueError):
        ResultStore(tmp_path, max_bytes=-5)


def test_daemon_eviction_metric_and_store_cap(tmp_path):
    # A 1-byte budget means every new result evicts its predecessor
    # (the just-written artifact itself always survives).
    config = make_config(tmp_path, store_max_bytes=1)
    with ServiceThread(config) as service:
        _, _, raw = request(service.port, "POST", "/v1/jobs", {"app": "gtc", "nranks": 8})
        first = json.loads(raw)
        wait_for_job(service.port, first["job_id"])
        assert _metric(service.port, "hfast_serve_store_evictions_total") in (None, 0.0)

        _, _, raw = request(service.port, "POST", "/v1/jobs", {"app": "cactus", "nranks": 8})
        second = json.loads(raw)
        wait_for_job(service.port, second["job_id"])
        assert _metric(service.port, "hfast_serve_store_evictions_total") == 1.0

        status, _, _ = request(service.port, "GET", f"/v1/results/{first['key']}")
        assert status == 404  # evicted
        status, _, _ = request(service.port, "GET", f"/v1/results/{second['key']}")
        assert status == 200
