import json

import pytest

from hfast.cli import main
from hfast.obs.trace import read_events


@pytest.fixture
def seed_cache(repo_cache_dir):
    return str(repo_cache_dir)


def test_analyze_profiled_produces_all_artifacts(tmp_path, seed_cache, capsys):
    trace_out = tmp_path / "trace.jsonl"
    metrics_out = tmp_path / "metrics.json"
    report_dir = tmp_path / "reports"
    bench_dir = tmp_path / "bench"
    rc = main(
        [
            "analyze",
            "--cache-dir", seed_cache,
            "--no-store",
            "--profile",
            "--trace-out", str(trace_out),
            "--metrics-out", str(metrics_out),
            "--report-dir", str(report_dir),
            "--bench-dir", str(bench_dir),
        ]
    )
    assert rc == 0

    events = read_events(trace_out)
    assert events[0]["event"] == "manifest"
    assert any(e["event"] == "app_summary" for e in events)
    assert any(e["event"] == "span" and e["name"] == "pipeline" for e in events)

    metrics = json.loads(metrics_out.read_text())
    assert metrics["msg_size_bytes"]["type"] == "histogram"
    assert metrics["pipeline.apps_analyzed"]["value"] == 13

    report = json.loads((report_dir / "report.json").read_text())
    assert {r["app"] for r in report["runs"]} == {"cactus", "gtc", "lbmhd", "paratec"}
    md = (report_dir / "report.md").read_text()
    assert "## paratec @ 16 ranks" in md

    benches = list(bench_dir.glob("BENCH_*.json"))
    assert len(benches) == 1

    out = capsys.readouterr().out
    assert "coverage=" in out


def test_analyze_unprofiled_writes_nothing(tmp_path, seed_cache, capsys):
    rc = main(
        ["analyze", "--cache-dir", seed_cache, "--no-store", "--apps", "gtc", "--scales", "16"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "gtc" in out
    assert list(tmp_path.iterdir()) == []


def test_analyze_rejects_unknown_app(seed_cache, capsys):
    rc = main(["analyze", "--cache-dir", seed_cache, "--apps", "nosuch"])
    assert rc == 2
    assert "unknown app" in capsys.readouterr().err


def test_report_from_existing_trace(tmp_path, seed_cache):
    trace_out = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "analyze",
                "--cache-dir", seed_cache,
                "--no-store",
                "--apps", "cactus",
                "--scales", "8",
                "--trace-out", str(trace_out),
                "--report-dir", str(tmp_path / "r1"),
            ]
        )
        == 0
    )
    rc = main(["report", "--trace", str(trace_out), "--report-dir", str(tmp_path / "r2")])
    assert rc == 0
    first = json.loads((tmp_path / "r1" / "report.json").read_text())
    second = json.loads((tmp_path / "r2" / "report.json").read_text())
    assert first["runs"] == second["runs"]


def test_apps_listing(seed_cache, capsys):
    rc = main(["apps", "--cache-dir", seed_cache])
    assert rc == 0
    listing = json.loads(capsys.readouterr().out)
    assert listing["cactus"]["cached_scales"] == [8, 16, 27, 64, 256]
