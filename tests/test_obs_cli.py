"""The ``hfast obs {history,trend,slo,tail}`` post-mortem CLI surface.

These commands run against history directories and structured logs long
after the producing processes exited; everything here drives them
through ``cli.main`` + capsys the way a user would.
"""

import json

import pytest

from hfast import cli
from hfast.obs.history import HistoryStore, content_key
from hfast.obs.logs import configure_logging, get_logger, reset_logging


def snapshot(i=0, ts=100.0, app="cactus", metrics=None):
    data = {
        "kind": "run",
        "results": [{"app": app, "nranks": 8, "total_bytes": 1000 + i, "coverage": 0.5}],
        "metrics": metrics or {},
    }
    return {
        "kind": "run",
        "key": content_key(data),
        "data": data,
        "meta": {"source": "test", "timestamp": ts, "stragglers": [],
                 "cells_total": 1, "cells_failed": 0},
    }


@pytest.fixture
def hist_dir(tmp_path):
    d = tmp_path / "hist"
    with HistoryStore(d) as store:
        store.append(snapshot(i=0, ts=1.0))
        store.append(snapshot(i=5, ts=2.0))
        store.append(snapshot(i=3, ts=3.0, app="gtc"))
    return d


def test_obs_history_lists_snapshots(hist_dir, capsys):
    assert cli.main(["obs", "history", str(hist_dir)]) == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert lines[-1] == "3 snapshot(s)"
    assert all("run" in ln and "test" in ln and "rows=1" in ln for ln in lines[:-1])


def test_obs_history_json_mode_round_trips(hist_dir, capsys):
    assert cli.main(["obs", "history", str(hist_dir), "--json"]) == 0
    docs = json.loads(capsys.readouterr().out)
    assert len(docs) == 3 and all(d["key"] == content_key(d["data"]) for d in docs)


def test_obs_history_compact_reports_stats(hist_dir, capsys):
    assert cli.main(["obs", "history", str(hist_dir), "--compact", "--retain", "2"]) == 0
    out = capsys.readouterr().out
    assert "compacted 1 segment(s) -> 1: 2 snapshot(s) kept, 1 dropped" in out


def test_obs_trend_renders_table_and_is_reproducible(hist_dir, capsys):
    assert cli.main(["obs", "trend", str(hist_dir)]) == 0
    first = capsys.readouterr().out
    assert first.splitlines()[0].split()[:3] == ["app", "nranks", "n"]
    assert "1000..1005" in first  # cactus observed at two values
    assert "gtc" in first
    assert cli.main(["obs", "trend", str(hist_dir)]) == 0
    assert capsys.readouterr().out == first


def test_obs_trend_filters_and_json(hist_dir, capsys):
    assert cli.main(["obs", "trend", str(hist_dir), "--app", "gtc", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["app"] for r in rows] == ["gtc"]
    assert rows[0]["observations"] == 1


def test_obs_trend_ingests_bench_snapshots(hist_dir, tmp_path, capsys):
    bench = tmp_path / "bench"
    bench.mkdir()
    (bench / "BENCH_x.json").write_text(json.dumps({
        "runs": [{"app": "paratec", "nranks": 64, "total_bytes": 7}],
    }))
    assert cli.main(["obs", "trend", str(hist_dir), "--bench", str(bench)]) == 0
    out = capsys.readouterr().out
    assert "paratec" in out and "gtc" in out


def test_obs_trend_quantiles_mode(tmp_path, capsys):
    d = tmp_path / "hist"
    hist_metrics = {"call_latency_usec": {
        "type": "histogram", "count": 10, "sum": 1000,
        "buckets": {"64": 9, "4096": 1},
    }}
    with HistoryStore(d) as store:
        store.append(snapshot(metrics=hist_metrics))
    assert cli.main(["obs", "trend", str(d), "--quantiles", "call_latency_usec"]) == 0
    (line,) = capsys.readouterr().out.strip().splitlines()
    assert "n=10" in line and "p50=64" in line and "p99=4096" in line


def test_obs_slo_clean_history_passes_strict(hist_dir, capsys):
    assert cli.main(["obs", "slo", str(hist_dir), "--strict"]) == 0
    out = capsys.readouterr().out
    assert out.count("slo:") == 3 and "BREACHED" not in out


def test_obs_slo_strict_exits_one_on_breach(tmp_path, capsys):
    d = tmp_path / "hist"
    snap = snapshot()
    snap["meta"]["stragglers"] = ["cactus_p8"]  # 1/1 cells straggling
    with HistoryStore(d) as store:
        store.append(snap)
    assert cli.main(["obs", "slo", str(d)]) == 0  # advisory without --strict
    assert "BREACHED" in capsys.readouterr().out
    assert cli.main(["obs", "slo", str(d), "--strict"]) == 1


def test_obs_slo_bad_spec_exits_two(hist_dir, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"slos": [{"sli": {"kind": "nope"}}]}))
    assert cli.main(["obs", "slo", str(hist_dir), "--spec", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "missing name" in err and "sli.kind" in err


def test_obs_tail_filters_by_event_and_level(tmp_path, capsys):
    log = tmp_path / "log.jsonl"
    configure_logging(log, component="serve")
    get_logger().info("job_admitted", job_id="j-1")
    get_logger().error("job_failed", job_id="j-2")
    get_logger().info("job_admitted", job_id="j-3")
    reset_logging()

    assert cli.main(["obs", "tail", str(log), "--event", "job_admitted"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert [json.loads(ln)["job_id"] for ln in lines] == ["j-1", "j-3"]

    assert cli.main(["obs", "tail", str(log), "--level", "error"]) == 0
    (line,) = capsys.readouterr().out.strip().splitlines()
    assert json.loads(line)["event"] == "job_failed"

    assert cli.main(["obs", "tail", str(log), "-n", "1"]) == 0
    (line,) = capsys.readouterr().out.strip().splitlines()
    assert json.loads(line)["job_id"] == "j-3"


def test_analyze_log_out_writes_correlated_run_records(tmp_path, capsys):
    log = tmp_path / "run.jsonl"
    rc = cli.main([
        "analyze", "--apps", "cactus", "--scales", "8",
        "--cache-dir", str(tmp_path / "cache"), "--log-out", str(log),
    ])
    assert rc == 0
    records = [json.loads(ln) for ln in log.read_text().splitlines()]
    events = [r["event"] for r in records]
    assert events[0] == "run_start" and events[-1] == "run_done"
    assert "cell_done" in events
    by_event = {r["event"]: r for r in records}
    assert by_event["run_start"]["component"] == "pipeline"
    assert by_event["cell_done"]["cell"] == "cactus_p8"
    assert by_event["cell_done"]["ok"] is True
    assert by_event["run_done"]["cells"] == 1
    assert by_event["run_done"]["failed"] == 0

    # The tail CLI reads the same file back.
    capsys.readouterr()
    assert cli.main(["obs", "tail", str(log), "--event", "cell_done"]) == 0
    (line,) = capsys.readouterr().out.strip().splitlines()
    assert json.loads(line)["cell"] == "cactus_p8"


def test_analyze_slo_flag_prints_advisories_and_writes_history(tmp_path, capsys):
    rc = cli.main([
        "analyze", "--apps", "cactus", "--scales", "8",
        "--cache-dir", str(tmp_path / "cache"),
        "--history-dir", str(tmp_path / "hist"),
        "--slo", "default",
    ])
    assert rc == 0
    err = capsys.readouterr().err
    assert "slo: cell-wall" in err and "BREACHED" not in err
    assert f"history: {tmp_path / 'hist'}" in err
    assert cli.main(["obs", "history", str(tmp_path / "hist")]) == 0
    assert "1 snapshot(s)" in capsys.readouterr().out


def test_analyze_bad_slo_spec_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    rc = cli.main([
        "analyze", "--apps", "cactus", "--scales", "8",
        "--cache-dir", str(tmp_path / "cache"), "--slo", str(bad),
    ])
    assert rc == 2
    assert "slos must be a non-empty list" in capsys.readouterr().err
