"""/v1/events cursor pagination, the ring's seq bookkeeping, heartbeats.

Unit-level: :class:`RingLog.since` hands back per-event sequence
numbers, an idle poll leaves the cursor unchanged, and a client that
fell behind the ring's capacity learns exactly how many events it lost.
HTTP-level: the paginated shape, the legacy ``?n=`` shape (which must
stay seq-free), 400s on garbage, and heartbeat records arriving on the
bus while the daemon is otherwise idle.
"""

import json
import time

import pytest

from hfast.obs.stream import EventBus, RingLog
from tests.serve_util import ServiceThread, make_config, request, wait_for_job

SPEC = {"app": "cactus", "nranks": 8}


# ---------------------------------------------------------------------------
# RingLog units


def test_since_returns_seq_stamped_events_and_advances_cursor():
    ring = RingLog(capacity=8)
    for i in range(3):
        ring.handle({"event": "e", "i": i})
    events, cursor, missed = ring.since(0)
    assert [e["seq"] for e in events] == [1, 2, 3]
    assert [e["i"] for e in events] == [0, 1, 2]
    assert cursor == 3 and missed == 0

    # Incremental poll: only the new event comes back.
    ring.handle({"event": "e", "i": 3})
    events, cursor, missed = ring.since(cursor)
    assert [(e["seq"], e["i"]) for e in events] == [(4, 3)]
    assert cursor == 4 and missed == 0


def test_since_idle_poll_keeps_cursor_and_reports_nothing():
    ring = RingLog(capacity=8)
    ring.handle({"event": "e"})
    _, cursor, _ = ring.since(0)
    events, cursor2, missed = ring.since(cursor)
    assert events == [] and cursor2 == cursor and missed == 0


def test_since_counts_events_that_rotated_out():
    ring = RingLog(capacity=4)
    for i in range(10):
        ring.handle({"event": "e", "i": i})
    # Client last saw seq 2; seqs 3-6 have rotated out (ring holds 7-10).
    events, cursor, missed = ring.since(2)
    assert [e["seq"] for e in events] == [7, 8, 9, 10]
    assert missed == 4 and cursor == 10
    # A brand-new client (cursor 0) missed everything before the ring.
    events, _, missed = ring.since(0)
    assert len(events) == 4 and missed == 6


def test_tail_shape_has_no_seq():
    ring = RingLog(capacity=4)
    ring.handle({"event": "e", "i": 0})
    ring.handle({"event": "e", "i": 1})
    assert ring.tail() == [{"event": "e", "i": 0}, {"event": "e", "i": 1}]
    assert ring.tail(1) == [{"event": "e", "i": 1}]


def test_ring_subscribed_to_bus_sequences_published_events():
    bus, ring = EventBus(), RingLog(capacity=16)
    bus.subscribe(ring.handle)
    for i in range(5):
        bus.publish({"event": "tick", "i": i})
    events, cursor, missed = ring.since(0)
    assert cursor == 5 and missed == 0
    assert [e["i"] for e in events] == list(range(5))


# ---------------------------------------------------------------------------
# HTTP surface


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("serve-events")
    config = make_config(tmp_path, heartbeat_interval=0.05)
    with ServiceThread(config) as svc:
        yield svc


def tail_all(port, cursor=0):
    status, _headers, body = request(port, "GET", f"/v1/events?cursor={cursor}")
    assert status == 200
    return json.loads(body)


def test_cursor_tail_shape_and_job_lifecycle(service):
    doc = tail_all(service.port)
    assert set(doc) == {"seen", "cursor", "missed", "events"}
    base_cursor = doc["cursor"]

    status, _headers, body = request(service.port, "POST", "/v1/jobs", SPEC)
    assert status in (200, 202)
    job_id = json.loads(body)["job_id"]
    wait_for_job(service.port, job_id)

    doc = tail_all(service.port, cursor=base_cursor)
    assert doc["missed"] == 0
    assert all("seq" in e for e in doc["events"])
    seqs = [e["seq"] for e in doc["events"]]
    assert seqs == sorted(seqs) and (not seqs or seqs[0] > base_cursor)
    kinds = [e["event"] for e in doc["events"]]
    assert "job_start" in kinds and "job_done" in kinds

    # The cursor advanced past everything returned; polling again from
    # it yields only newer events (heartbeats at most).
    again = tail_all(service.port, cursor=doc["cursor"])
    assert {e["event"] for e in again["events"]} <= {"heartbeat"}


def test_heartbeat_records_arrive_while_idle(service):
    deadline = time.monotonic() + 10
    cursor = tail_all(service.port)["cursor"]
    beats = []
    while time.monotonic() < deadline and len(beats) < 2:
        doc = tail_all(service.port, cursor=cursor)
        cursor = doc["cursor"]
        beats.extend(e for e in doc["events"] if e["event"] == "heartbeat")
        time.sleep(0.05)
    assert len(beats) >= 2, "expected heartbeats at a 0.05s interval"
    for b in beats:
        assert {"seq", "ts", "running", "queued", "draining"} <= set(b)
        assert b["draining"] is False


def test_legacy_n_shape_is_unchanged(service):
    status, _headers, body = request(service.port, "GET", "/v1/events?n=5")
    assert status == 200
    doc = json.loads(body)
    assert set(doc) == {"seen", "events"}
    assert all("seq" not in e for e in doc["events"])
    assert len(doc["events"]) <= 5


def test_bad_cursor_and_bad_n_return_400(service):
    status, _headers, body = request(service.port, "GET", "/v1/events?cursor=bogus")
    assert status == 400 and b"cursor must be an integer" in body
    status, _headers, _body = request(service.port, "GET", "/v1/events?n=bogus")
    assert status == 400
