import pytest

from hfast.apps import available_apps, synthesize
from hfast.matrix import reduce_matrix


def test_available_apps_cover_paper_suite():
    assert {"cactus", "gtc", "lbmhd", "paratec"} <= set(available_apps())


def test_unknown_app_raises():
    with pytest.raises(KeyError, match="unknown app"):
        synthesize("nosuchapp", 8)


def test_bad_nranks_raises():
    with pytest.raises(ValueError):
        synthesize("cactus", 0)


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_deterministic(app):
    a = synthesize(app, 16)
    b = synthesize(app, 16)
    assert [r.to_dict() for r in a.records] == [r.to_dict() for r in b.records]


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_send_recv_conservation(app):
    """Every byte sent is received: send and recv matrices must agree."""
    trace = synthesize(app, 16)
    sends = {}
    recvs = {}
    for r in trace.records:
        if r.size <= 0:
            continue
        if r.is_send:
            sends[(r.rank, r.peer)] = sends.get((r.rank, r.peer), 0) + r.bytes_moved
        elif r.is_recv:
            recvs[(r.peer, r.rank)] = recvs.get((r.peer, r.rank), 0) + r.bytes_moved
    assert sends == recvs


def test_overrides_scale_volume():
    small = synthesize("cactus", 8, {"steps": 4})
    big = synthesize("cactus", 8, {"steps": 12})
    cm_small = reduce_matrix(small.records, 8)
    cm_big = reduce_matrix(big.records, 8)
    assert cm_big.total_bytes == 3 * cm_small.total_bytes


def test_paratec_is_all_to_all():
    trace = synthesize("paratec", 8)
    cm = reduce_matrix(trace.records, 8)
    assert cm.nonzero_links() == 8 * 7


def test_gtc_is_ring():
    trace = synthesize("gtc", 8)
    cm = reduce_matrix(trace.records, 8)
    assert cm.nonzero_links() == 8  # each rank sends to exactly one neighbour
