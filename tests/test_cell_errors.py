"""Per-cell failure isolation.

A broken cell — here, a corrupted repro-cache file that fails format-2
validation — must not abort the sweep. The failing (app, scale) cell is
recorded in the manifest with its error string, every other cell still
produces results, and the CLI exit code follows the policy: nonzero only
when *every* cell failed or ``--strict`` was passed.
"""

import pytest

from hfast.cli import main
from hfast.obs.profile import Observability
from hfast.pipeline import run_pipeline

APPS = ["gtc"]
SCALES = {"gtc": [4, 8]}


@pytest.fixture
def warm_cache(tmp_path):
    """A cache dir holding valid gtc p4 and p8 entries."""
    run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(tmp_path),
                 obs=Observability.disabled(), argv=["test"])
    assert len(list(tmp_path.glob("gtc_p*.json"))) == 2
    return tmp_path


def corrupt(cache_dir, pattern):
    for path in cache_dir.glob(pattern):
        path.write_text('{"format": 2, "metadata": {}}')


@pytest.mark.parametrize("workers", [1, 4])
def test_failed_cell_is_surfaced_not_fatal(warm_cache, workers):
    corrupt(warm_cache, "gtc_p4_*.json")
    obs = Observability(enabled=True)
    out = run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(warm_cache),
                       obs=obs, argv=["test"], workers=workers)

    # The healthy cell still ran to completion.
    assert [r["nranks"] for r in out["results"]] == [8]
    man = out["manifest"]
    assert man["failed_cells"] == ["gtc_p4"]
    bad = [c for c in man["cells"] if not c["ok"]]
    assert len(bad) == 1
    assert bad[0]["app"] == "gtc" and bad[0]["nranks"] == 4
    assert "CacheValidationError" in bad[0]["error"]
    # The re-emitted manifest event carries the failure for report builders.
    manifests = [e for e in obs.events if e["event"] == "manifest"]
    assert manifests[-1]["failed_cells"] == ["gtc_p4"]


def test_partial_failure_exits_zero(warm_cache, capsys):
    corrupt(warm_cache, "gtc_p4_*.json")
    rc = main(["analyze", "--cache-dir", str(warm_cache), "--no-store",
               "--apps", "gtc", "--scales", "4,8"])
    assert rc == 0
    err = capsys.readouterr().err
    assert "error: cell gtc_p4 failed" in err
    assert "CacheValidationError" in err


def test_partial_failure_with_strict_exits_nonzero(warm_cache, capsys):
    corrupt(warm_cache, "gtc_p4_*.json")
    rc = main(["analyze", "--cache-dir", str(warm_cache), "--no-store",
               "--apps", "gtc", "--scales", "4,8", "--strict"])
    assert rc == 1
    assert "error: cell gtc_p4 failed" in capsys.readouterr().err


def test_all_cells_failing_exits_nonzero(warm_cache, capsys):
    corrupt(warm_cache, "gtc_p*.json")
    rc = main(["analyze", "--cache-dir", str(warm_cache), "--no-store",
               "--apps", "gtc", "--scales", "4,8"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "gtc_p4" in err and "gtc_p8" in err
