"""``hfast trace`` CLI: every subcommand against real traces from all
three backends, plus journal-dir input and malformed/empty edge cases.

The acceptance bar pinned here: ``hfast trace critical-path --weight
cost`` on a three-backend chaos run returns the *same* critical path for
serial, pool, and stealing.
"""

import json

import pytest

from hfast import cli
from hfast.sched import faults
from hfast.sched.faults import FAULT_ENV_VAR
from test_trace_analytics import make_events, span

APPS = ["cactus", "gtc", "lbmhd", "paratec"]


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    base = tmp_path_factory.mktemp("trace_cli")
    path = base / "run.jsonl"
    rc = cli.main([
        "analyze", "--apps", "gtc,cactus", "--scales", "8",
        "--cache-dir", str(base / "cache"), "--trace-out", str(path),
    ])
    assert rc == 0 and path.is_file()
    return path


def test_summary_text(trace_file, capsys):
    assert cli.main(["trace", "summary", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "2 cells" in out
    assert "critical path:" in out
    assert "top stages by self time:" in out
    assert "scheduler attribution:" in out


def test_summary_json(trace_file, capsys):
    assert cli.main(["trace", "summary", str(trace_file), "--json", "--top", "3"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["cells"] == 2 and doc["spans"] > 0
    assert doc["failed_cells"] == []
    assert len(doc["critical_path"]) <= 3
    assert doc["attribution"]["cells"]


def test_critical_path_text_and_json(trace_file, capsys):
    assert cli.main(["trace", "critical-path", str(trace_file)]) == 0
    assert "pipeline" in capsys.readouterr().out
    assert cli.main(["trace", "critical-path", str(trace_file), "--json"]) == 0
    path = json.loads(capsys.readouterr().out)
    assert path[0]["label"] == "pipeline"
    assert all(e["weight"] >= 0 for e in path)


def test_critical_path_per_cell(trace_file, capsys):
    args = ["trace", "critical-path", str(trace_file), "--per-cell", "--weight", "cost"]
    assert cli.main(args) == 0
    assert "gtc_p8:" in capsys.readouterr().out
    assert cli.main(args + ["--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) == {"gtc_p8", "cactus_p8"}


def test_flame_folded_stdout(trace_file, capsys):
    assert cli.main(["trace", "flame", str(trace_file)]) == 0
    out = capsys.readouterr().out
    for line in out.strip().splitlines():
        stack, usec = line.rsplit(" ", 1)
        assert int(usec) > 0
    assert "pipeline" in out


def test_flame_speedscope_to_file(trace_file, tmp_path, capsys):
    out_path = tmp_path / "profile.speedscope.json"
    rc = cli.main(["trace", "flame", str(trace_file),
                   "--format", "speedscope", "--out", str(out_path)])
    assert rc == 0
    assert f"flame: {out_path}" in capsys.readouterr().err
    doc = json.loads(out_path.read_text())
    assert doc["profiles"][0]["type"] == "sampled"
    assert doc["profiles"][0]["samples"]


def test_gantt(trace_file, capsys):
    assert cli.main(["trace", "gantt", str(trace_file), "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "gtc_p8" in out and "cactus_p8" in out and "2 cells" in out


def test_diff_self_and_json(trace_file, capsys):
    assert cli.main(["trace", "diff", str(trace_file), str(trace_file)]) == 0
    assert "total wall:" in capsys.readouterr().out
    assert cli.main(["trace", "diff", str(trace_file), str(trace_file), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["wall_delta_pct"] == 0.0
    assert doc["a_critical_path"] == doc["b_critical_path"]


# ---------------------------------------------------------------------------
# Error handling


def test_missing_file_is_rc2(tmp_path, capsys):
    assert cli.main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_empty_dir_is_rc2(tmp_path, capsys):
    assert cli.main(["trace", "summary", str(tmp_path)]) == 2
    assert "error:" in capsys.readouterr().err


def test_trace_without_spans_is_rc2(tmp_path, capsys):
    path = tmp_path / "no_spans.jsonl"
    path.write_text('{"event": "manifest"}\n')
    assert cli.main(["trace", "summary", str(path)]) == 2
    assert "no span events" in capsys.readouterr().err


def test_malformed_interior_tolerated_unless_strict(tmp_path, capsys):
    path = tmp_path / "mangled.jsonl"
    lines = [json.dumps(ev) for ev in make_events()]
    lines.insert(2, "NOT JSON")
    path.write_text("\n".join(lines) + "\n")
    assert cli.main(["trace", "summary", str(path)]) == 0
    capsys.readouterr()
    assert cli.main(["trace", "summary", str(path), "--strict"]) == 2
    assert "malformed" in capsys.readouterr().err


def test_truncated_final_line_tolerated(tmp_path, capsys):
    path = tmp_path / "crashed.jsonl"
    lines = [json.dumps(ev) for ev in make_events()]
    path.write_text("\n".join(lines) + "\n" + '{"event": "span", "span_id"')
    assert cli.main(["trace", "summary", str(path)]) == 0
    captured = capsys.readouterr()
    assert "truncated final line" in captured.err
    assert "2 cells" in captured.out


def test_diff_propagates_load_errors(trace_file, tmp_path, capsys):
    assert cli.main(["trace", "diff", str(trace_file), str(tmp_path / "x.jsonl")]) == 2


# ---------------------------------------------------------------------------
# Acceptance: identical critical path across a 3-backend chaos run


@pytest.fixture(scope="module")
def chaos_traces(tmp_path_factory):
    """One slow-injected sweep per backend, each with --trace-out."""
    base = tmp_path_factory.mktemp("chaos")
    mp = pytest.MonkeyPatch()
    mp.setattr(faults, "_SLOW_SECONDS", 0.2)
    mp.setenv(FAULT_ENV_VAR, "slow:gtc_p8:1")
    traces = {}
    try:
        for name, extra in {
            "serial": [],
            "pool": ["--workers", "4"],
            "stealing": ["--scheduler", "stealing", "--workers", "4",
                         "--journal-dir", str(base / "journal")],
        }.items():
            path = base / f"{name}.jsonl"
            rc = cli.main([
                "analyze", "--apps", ",".join(APPS), "--scales", "8",
                "--cache-dir", str(base / name), "--trace-out", str(path),
                *extra,
            ])
            assert rc == 0
            traces[name] = path
    finally:
        mp.undo()
    return {"traces": traces, "journal_dir": base / "journal"}


def cost_path_of(trace, capsys, source=None):
    rc = cli.main(["trace", "critical-path", str(source or trace),
                   "--weight", "cost", "--json"])
    assert rc == 0
    path = json.loads(capsys.readouterr().out)
    # Everything except the measured walls must be backend-invariant.
    return [{k: e[k] for k in ("label", "name", "depth", "weight")} for e in path]


def test_chaos_critical_path_identical_across_backends(chaos_traces, capsys):
    paths = {name: cost_path_of(t, capsys) for name, t in chaos_traces["traces"].items()}
    assert paths["serial"] == paths["pool"] == paths["stealing"]
    assert paths["serial"][0]["label"] == "pipeline"
    assert any(e["name"] == "cell" for e in paths["serial"])


def test_chaos_journal_dir_yields_same_critical_path(chaos_traces, capsys):
    live = cost_path_of(chaos_traces["traces"]["stealing"], capsys)
    replay = cost_path_of(None, capsys, source=chaos_traces["journal_dir"])
    assert replay == live


def test_chaos_summary_flags_the_slow_cell(chaos_traces, capsys):
    assert cli.main(["trace", "summary", str(chaos_traces["traces"]["serial"]),
                     "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["cells"] == len(APPS) and doc["failed_cells"] == []
    walls = {c["cell"]: c["wall_s"] for c in doc["attribution"]["cells"]}
    # The injected delay fires inside the timed region: gtc_p8 dominates.
    assert walls["gtc_p8"] == max(walls.values()) and walls["gtc_p8"] >= 0.2
