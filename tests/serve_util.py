"""Shared helpers for the serve-daemon test suites.

Boots the real daemon in-process (:class:`ServiceThread`) on an
ephemeral port and talks to it over actual sockets with
``http.client`` — the tests exercise the wire protocol, not internal
method calls.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from hfast.serve.daemon import ServeConfig, ServiceThread

__all__ = ["ServeConfig", "ServiceThread", "make_config", "request", "wait_for_job"]


def make_config(tmp_path, **overrides: Any) -> ServeConfig:
    """Daemon config against throwaway dirs; static scheduler for speed.

    The static scheduler runs cells in-process, so fault injection and
    ``_SLOW_SECONDS`` monkeypatching work without fork plumbing. Tests
    that need the journal/resume machinery override ``scheduler``.
    """
    kwargs: dict[str, Any] = {
        "port": 0,
        "cache_dir": str(tmp_path / "cache"),
        "serve_dir": str(tmp_path / "serve"),
        "scheduler": "static",
        "bench_dir": None,
    }
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


def request(
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    raw_body: bytes | None = None,
    timeout: float = 60.0,
) -> tuple[int, dict[str, str], bytes]:
    """One HTTP exchange; returns (status, lowercase headers, body bytes)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = raw_body if raw_body is not None else (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, headers, resp.read()
    finally:
        conn.close()


def wait_for_job(port: int, job_id: str, timeout: float = 120.0) -> dict[str, Any]:
    """Poll ``GET /v1/jobs/<id>`` until the job reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, raw = request(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, raw
        doc = json.loads(raw)
        if doc.get("status") in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")
