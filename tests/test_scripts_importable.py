"""Every file under scripts/ must import without side effects.

The fixture generator and the perf comparer are imported by tests and
tooling; an import must never write files, parse argv, or exit.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).parent.parent / "scripts"
SCRIPTS = sorted(p for p in SCRIPTS_DIR.glob("*.py"))


def test_scripts_exist():
    names = {p.name for p in SCRIPTS}
    assert {"gen_golden.py", "bench_compare.py"} <= names


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_import_has_no_side_effects(script, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # any stray writes would land here
    monkeypatch.setattr(sys, "argv", [script.name])
    spec = importlib.util.spec_from_file_location(f"script_{script.stem}", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{script.name} must expose main()"
    assert list(tmp_path.iterdir()) == [], f"{script.name} wrote files on import"
