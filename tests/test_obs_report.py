import json

from hfast.obs.report import build_report, render_markdown, write_report

FIXTURE_EVENTS = [
    {
        "event": "manifest",
        "git_sha": "deadbeefcafe0000",
        "timestamp": "2026-08-06T00:00:00+00:00",
        "python": "3.11.7",
        "platform": "Linux-test",
        "argv": ["analyze", "--profile"],
        "apps": ["cactus"],
        "scales": {"cactus": [8]},
        "cache": None,
    },
    {"event": "span", "name": "cache_load", "span_id": 2, "parent_id": 1, "depth": 1,
     "wall_s": 0.25, "peak_rss_kb": 1000, "attrs": {}},
    {"event": "span", "name": "matrix_reduce", "span_id": 3, "parent_id": 1, "depth": 1,
     "wall_s": 0.5, "peak_rss_kb": 2000, "attrs": {}},
    {
        "event": "app_summary",
        "app": "cactus",
        "nranks": 8,
        "overrides": {},
        "call_totals": {"MPI_Isend": 288, "MPI_Allreduce": 8},
        "total_bytes": 84934656,
        "total_messages": 288,
        "nonzero_links": 24,
        "size_buckets": {"524288": 288},
        "top_peers": [{"rank": 0, "peer": 4, "bytes": 7077888}],
        "topology": {
            "nranks": 8,
            "max_degree": 3,
            "avg_degree": 3.0,
            "degree_histogram": {"3": 8},
            "concentration": {"1": 0.33, "4": 1.0},
        },
        "interconnect": {
            "n_circuits": 24,
            "coverage": 1.0,
            "fully_provisionable": True,
            "speedup": 10.0,
        },
        "interconnect_temporal": {
            "timesteps": 4,
            "reconfig_cost": 0.001,
            "coverage": 1.0,
            "static_coverage": 1.0,
            "n_reconfigs": 15,
            "speedup": 9.5,
        },
        "timing": {
            "seed": 0,
            "model": "loggp",
            "comm_time_s": 0.148,
            "compute_time_s": 0.96,
            "wall_time_s": 0.9785,
            "pct_comm": 1.891,
            "latency_buckets": {"64": 288, "128": 8},
        },
    },
    {"event": "span", "name": "pipeline", "span_id": 1, "parent_id": None, "depth": 0,
     "wall_s": 1.0, "peak_rss_kb": 2500, "attrs": {}},
    # updated manifest re-emitted at end of run with cache stats
    {
        "event": "manifest",
        "git_sha": "deadbeefcafe0000",
        "timestamp": "2026-08-06T00:00:00+00:00",
        "python": "3.11.7",
        "platform": "Linux-test",
        "argv": ["analyze", "--profile"],
        "apps": ["cactus"],
        "scales": {"cactus": [8]},
        "cache": {"hits": 1, "misses": 0, "stores": 0, "validation_failures": 0, "entries": []},
    },
]


def test_build_report_structure():
    report = build_report(FIXTURE_EVENTS)
    assert report["report_version"] == 1
    # last manifest wins, so cache stats are present
    assert report["manifest"]["cache"]["hits"] == 1
    assert len(report["runs"]) == 1
    run = report["runs"][0]
    assert run["app"] == "cactus"
    assert run["total_bytes"] == 84934656
    prof = report["profile"]
    # total wall comes from the root pipeline span, not the sum of children
    assert prof["total_wall_s"] == 1.0
    assert prof["peak_rss_kb"] == 2500
    stages = {s["stage"]: s for s in prof["stages"]}
    assert stages["matrix_reduce"]["wall_s"] == 0.5
    assert stages["matrix_reduce"]["pct"] == 50.0
    assert stages["cache_load"]["calls"] == 1


def test_markdown_rendering():
    md = render_markdown(build_report(FIXTURE_EVENTS))
    assert "# hfast run report" in md
    assert "`deadbeefcafe0000`" in md
    assert "## cactus @ 8 ranks" in md
    assert "MPI_Isend | 288" in md
    assert "1 hits / 0 misses" in md
    assert "## Stage profile" in md
    assert "matrix_reduce" in md
    assert "fully" in md and "10.0x vs packet-only" in md
    assert "temporal assignment (4 steps)" in md
    assert "15 reconfigs" in md
    assert "1.9% communication" in md
    assert "| <= 64 µs | 288 |" in md


def test_write_report_outputs(tmp_path):
    report = build_report(FIXTURE_EVENTS)
    paths = write_report(report, tmp_path / "out", bench_dir=tmp_path / "bench")
    assert paths["markdown"].read_text().startswith("# hfast run report")
    loaded = json.loads(paths["json"].read_text())
    assert loaded["runs"][0]["nranks"] == 8
    bench = json.loads(paths["bench"].read_text())
    assert paths["bench"].name == "BENCH_deadbeefcafe.json"
    assert bench["runs"] == [
        {
            "app": "cactus",
            "nranks": 8,
            "total_bytes": 84934656,
            "total_messages": 288,
            "max_degree": 3,
            "coverage": 1.0,
            "speedup": 10.0,
            "pct_comm": 1.891,
            "temporal_coverage": 1.0,
            "temporal_speedup": 9.5,
        }
    ]


def test_empty_event_stream():
    report = build_report([])
    assert report["manifest"] is None
    assert report["runs"] == []
    assert report["profile"]["total_wall_s"] == 0
    assert report["time_breakdown"] is None
    # renders without crashing
    assert "# hfast run report" in render_markdown(report)


def test_time_breakdown_section():
    report = build_report(FIXTURE_EVENTS)
    tb = report["time_breakdown"]
    assert tb is not None
    assert [e["label"] for e in tb["critical_path"]][:2] == ["pipeline", "matrix_reduce"]
    stages = {s["stage"]: s for s in tb["top_self_stages"]}
    # pipeline self = 1.0 − (0.25 + 0.5); children carry their own wall.
    assert stages["pipeline"]["self_s"] == 0.25
    assert stages["matrix_reduce"]["self_s"] == 0.5
    md = render_markdown(report)
    assert "## Where the time went" in md
    assert md.index("## Where the time went") < md.index("## Stage profile")
    assert "| matrix_reduce | 0.5000 | 0.5000 |" in md
