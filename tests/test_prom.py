"""Prometheus text exposition: rendering, parsing, and the /metrics server.

The contract under test: ``parse_prometheus(render_prometheus(s)) ==
prometheus_projection(s)`` for any registry snapshot — the exposition is
well-formed and lossless for everything the format can carry (counters,
gauges, histogram count/sum/buckets, min/max companion gauges).
"""

import urllib.error
import urllib.request

import pytest

from hfast.obs.metrics import MetricsRegistry
from hfast.obs.prom import (
    CONTENT_TYPE,
    MetricsServer,
    escape_label_value,
    parse_prometheus,
    prom_name,
    prometheus_projection,
    render_prometheus,
    render_registry,
    render_slo_prometheus,
    slo_prometheus_projection,
)


def sample_registry():
    reg = MetricsRegistry()
    reg.counter("pipeline.apps_analyzed").inc(4)
    reg.counter("calls.MPI_Isend").inc(123456)
    reg.gauge("sched.max_queue_depth").set(7.5)
    h = reg.histogram("msg_size_bytes.gtc")
    for v, w in ((0, 3), (100, 10), (4096, 2), (5000, 1)):
        h.observe(v, weight=w)
    return reg


def test_prom_name_sanitization():
    assert prom_name("msg_size_bytes.gtc") == "hfast_msg_size_bytes_gtc"
    assert prom_name("calls.MPI_Isend") == "hfast_calls_MPI_Isend"
    assert prom_name("2fast") == "hfast__2fast"  # leading digit guarded
    assert prom_name("a-b c") == "hfast_a_b_c"


def test_round_trip_matches_projection():
    snap = sample_registry().to_dict()
    assert parse_prometheus(render_prometheus(snap)) == prometheus_projection(snap)


def test_round_trip_of_empty_registry():
    assert render_prometheus({}) == ""
    assert parse_prometheus("") == {} == prometheus_projection({})


def test_rendered_text_shape():
    text = render_prometheus(sample_registry().to_dict())
    lines = text.splitlines()
    assert "# TYPE hfast_pipeline_apps_analyzed counter" in lines
    assert "hfast_pipeline_apps_analyzed 4" in lines
    assert "# TYPE hfast_sched_max_queue_depth gauge" in lines
    assert "hfast_sched_max_queue_depth 7.5" in lines
    assert "# TYPE hfast_msg_size_bytes_gtc histogram" in lines
    # Buckets are cumulative and end at +Inf == count.
    assert 'hfast_msg_size_bytes_gtc_bucket{le="0"} 3' in lines
    assert 'hfast_msg_size_bytes_gtc_bucket{le="128"} 13' in lines
    assert 'hfast_msg_size_bytes_gtc_bucket{le="4096"} 15' in lines
    assert 'hfast_msg_size_bytes_gtc_bucket{le="8192"} 16' in lines
    assert 'hfast_msg_size_bytes_gtc_bucket{le="+Inf"} 16' in lines
    assert "hfast_msg_size_bytes_gtc_count 16" in lines
    # min/max ride along as companion gauges.
    assert "# TYPE hfast_msg_size_bytes_gtc_min gauge" in lines
    assert "hfast_msg_size_bytes_gtc_max 5000" in lines


def test_parse_rejects_garbage():
    with pytest.raises(ValueError, match="unparseable"):
        parse_prometheus("this is { not exposition")


def test_empty_histogram_renders_wellformed():
    reg = MetricsRegistry()
    reg.histogram("msg_size_bytes.idle")  # declared, never observed
    snap = reg.to_dict()
    text = render_prometheus(snap)
    lines = text.splitlines()
    assert "# TYPE hfast_msg_size_bytes_idle histogram" in lines
    assert 'hfast_msg_size_bytes_idle_bucket{le="+Inf"} 0' in lines
    assert "hfast_msg_size_bytes_idle_count 0" in lines
    assert parse_prometheus(text) == prometheus_projection(snap)


def test_escape_label_value_covers_the_three_escapables():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
    assert escape_label_value("plain") == "plain"


def slo_statuses(names=("cell-wall",), breached=False):
    return [
        {
            "slo": name,
            "kind": "cell_wall",
            "objective": 0.99,
            "burn": 25.0 if breached else 0.0,
            "budget_remaining": 0.0 if breached else 1.0,
            "breached": breached,
            "windows": [
                {"name": "fast", "last": 4, "burn": 25.0 if breached else 0.0,
                 "max_burn": 14.0, "n": 4, "bad": 1 if breached else 0,
                 "breached": breached},
                {"name": "slow", "last": 16, "burn": 25.0 if breached else 0.0,
                 "max_burn": 6.0, "n": 4, "bad": 1 if breached else 0,
                 "breached": breached},
            ],
        }
        for name in names
    ]


def test_slo_round_trip_matches_projection():
    for breached in (False, True):
        statuses = slo_statuses(names=("cell-wall", "call-latency"), breached=breached)
        text = render_slo_prometheus(statuses)
        assert parse_prometheus(text) == slo_prometheus_projection(statuses)
        want = 1 if breached else 0
        assert f'hfast_slo_breached{{slo="cell-wall"}} {want}' in text.splitlines()


def test_slo_label_values_escape_and_round_trip():
    # SLO names are unrestricted: quotes, backslashes, and newlines must
    # survive a render -> parse round trip via label escaping.
    statuses = slo_statuses(names=('p99 "tail"', "back\\slash", "multi\nline"))
    text = render_slo_prometheus(statuses)
    parsed = parse_prometheus(text)
    assert parsed == slo_prometheus_projection(statuses)
    breached_samples = parsed["hfast_slo_breached"]["samples"]
    assert '{slo="p99 \\"tail\\""}' in breached_samples
    assert '{slo="back\\\\slash"}' in breached_samples
    assert '{slo="multi\\nline"}' in breached_samples


def test_render_slo_empty_statuses():
    assert render_slo_prometheus([]) == ""
    assert slo_prometheus_projection([]) == {}
    assert parse_prometheus(render_slo_prometheus([])) == {}


def test_render_registry_from_live_pipeline_registry(tmp_path):
    from hfast.obs.profile import Observability
    from hfast.pipeline import run_pipeline

    obs = Observability(enabled=True)
    run_pipeline(apps=["gtc"], scales={"gtc": [8]}, cache_dir=str(tmp_path),
                 obs=obs, argv=["test"], bench_dir=None)
    text = render_registry(obs.metrics)
    snap = obs.metrics.to_dict()
    assert parse_prometheus(text) == prometheus_projection(snap)
    assert "hfast_pipeline_bytes_total" in text
    assert "hfast_msg_size_bytes_gtc_count" in text


def test_metrics_server_serves_and_404s():
    reg = sample_registry()
    server = MetricsServer(lambda: render_registry(reg), port=0).start()
    try:
        assert server.port and server.url.endswith("/metrics")
        with urllib.request.urlopen(server.url, timeout=5) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == CONTENT_TYPE
            body = resp.read().decode("utf-8")
        assert parse_prometheus(body) == prometheus_projection(reg.to_dict())

        # Scrapes reflect the live registry, not a start-time snapshot.
        reg.counter("pipeline.apps_analyzed").inc(10)
        with urllib.request.urlopen(server.url, timeout=5) as resp:
            assert "hfast_pipeline_apps_analyzed 14" in resp.read().decode("utf-8")

        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope", timeout=5)
        assert exc.value.code == 404
    finally:
        server.stop()
