"""SLO engine: spec validation, burn-rate math, and the breach path.

Unit-level: the all-errors validator, multi-window AND semantics (every
window must exceed its burn limit before an SLO is breached; an empty
window can never breach), each SLI kind, and cross-run history scoring.
End-to-end: an injected straggler must surface as a burn-rate violation
in the trace (``slo_violation``), in the ``hfast_slo_*`` Prometheus
series, and in the report's "SLO compliance" section.
"""

import json

import pytest

from hfast.obs.metrics import MetricsRegistry
from hfast.obs.profile import Observability
from hfast.obs.prom import parse_prometheus, render_slo_prometheus, slo_prometheus_projection
from hfast.obs.report import build_report, render_markdown
from hfast.obs.slo import (
    DEFAULT_SPEC,
    SloEngine,
    SloSpecError,
    cells_for_slo,
    load_slo_spec,
    render_slo_lines,
    validate_spec,
)
from hfast.pipeline import run_pipeline
from hfast.sched import faults
from hfast.sched.faults import FAULT_ENV_VAR

APPS = ["cactus", "gtc", "lbmhd", "paratec"]
SCALES = {app: [8] for app in APPS}


def spec_with(sli, windows=None, objective=0.99, **top):
    return {
        "slos": [
            {
                "name": "t",
                "objective": objective,
                "sli": sli,
                "windows": windows or [{"name": "run", "last": 0, "max_burn": 1.0}],
            }
        ],
        **top,
    }


# ---------------------------------------------------------------------------
# Spec loading and validation


def test_default_spec_loads_for_none_and_default():
    assert load_slo_spec(None) == DEFAULT_SPEC
    assert load_slo_spec("default") == DEFAULT_SPEC
    assert SloEngine().names == ["cell-wall", "cell-success", "call-latency"]
    assert SloEngine().mitigation_threshold() == 2.5


def test_validator_accumulates_every_error():
    bad = {
        "mitigation_threshold": 0.5,
        "slos": [
            {"objective": 2.0, "sli": {"kind": "nope"}},
            {"name": "a", "sli": {"kind": "ratio"}},  # missing bad/total
            {"name": "a", "sli": {"kind": "cell_wall"},
             "windows": [{"last": -1, "max_burn": 0}]},  # dup name + bad window
        ],
    }
    with pytest.raises(SloSpecError) as exc:
        validate_spec(bad)
    errors = exc.value.errors
    assert len(errors) >= 6
    assert any("missing name" in e for e in errors)
    assert any("objective" in e for e in errors)
    assert any("sli.kind" in e for e in errors)
    assert any("'bad' and 'total'" in e for e in errors)
    assert any("duplicate name" in e for e in errors)
    assert any("mitigation_threshold" in e for e in errors)


def test_spec_loads_from_json_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec_with({"kind": "cell_wall"})))
    assert SloEngine(load_slo_spec(path)).names == ["t"]
    with pytest.raises(SloSpecError, match="cannot read"):
        load_slo_spec(tmp_path / "missing.json")
    (tmp_path / "torn.json").write_text("{")
    with pytest.raises(SloSpecError, match="invalid JSON"):
        load_slo_spec(tmp_path / "torn.json")


def test_mitigation_threshold_absent_means_none():
    assert SloEngine(spec_with({"kind": "cell_wall"})).mitigation_threshold() is None


# ---------------------------------------------------------------------------
# Burn math


def cells(n_bad, n_total):
    return [
        {"cell": f"app_p{i}", "ok": True, "straggler": i < n_bad} for i in range(n_total)
    ]


def test_breach_requires_every_window_to_exceed_its_limit():
    engine = SloEngine(spec_with(
        {"kind": "cell_wall"},
        windows=[
            {"name": "fast", "last": 2, "max_burn": 10.0},
            {"name": "slow", "last": 0, "max_burn": 30.0},
        ],
    ))
    # One straggler among 8, none in the last 2: slow window burn is
    # (1/8)/0.01 = 12.5 < 30 and fast is 0 — no breach.
    cs = cells(1, 8)
    (status,) = engine.evaluate(cells=cs)
    assert not status["breached"]
    fast, slow = status["windows"]
    assert (fast["name"], fast["n"], fast["burn"]) == ("fast", 2, 0.0)
    assert slow["burn"] == pytest.approx(12.5)

    # Stragglers at the tail: fast burn (2/2)/0.01 = 100 >= 10 AND slow
    # (2/8)/0.01 = 25... still < 30 — the slow window vetoes the page.
    cs = cells(0, 6) + cells(2, 2)
    (status,) = engine.evaluate(cells=cs)
    assert not status["breached"]
    # Lower the slow limit and the same observations breach.
    engine2 = SloEngine(spec_with(
        {"kind": "cell_wall"},
        windows=[
            {"name": "fast", "last": 2, "max_burn": 10.0},
            {"name": "slow", "last": 0, "max_burn": 20.0},
        ],
    ))
    (status,) = engine2.evaluate(cells=cs)
    assert status["breached"]
    assert status["burn"] == pytest.approx(100.0)
    assert status["budget_remaining"] == 0.0


def test_empty_window_never_breaches():
    engine = SloEngine(spec_with({"kind": "cell_wall"}))
    (status,) = engine.evaluate(cells=[])
    assert not status["breached"] and status["burn"] == 0.0
    assert status["windows"][0]["n"] == 0


def test_ratio_sli_resolves_counts_then_counter_metrics():
    engine = SloEngine(spec_with(
        {"kind": "ratio", "bad": "cells_failed", "total": "cells_total"}, objective=0.9
    ))
    (status,) = engine.evaluate(counts={"cells_failed": 1, "cells_total": 10})
    assert status["burn"] == pytest.approx(1.0) and status["breached"]
    (status,) = engine.evaluate(metrics={
        "cells_failed": {"type": "counter", "value": 0},
        "cells_total": {"type": "counter", "value": 10},
    })
    assert status["burn"] == 0.0 and not status["breached"]


def test_latency_sli_scores_histogram_tail():
    engine = SloEngine(spec_with(
        {"kind": "latency", "metric": "call_latency_usec", "threshold": 256}, objective=0.9
    ))
    hist = {"type": "histogram", "count": 10,
            "buckets": {"64": 6, "256": 2, "4096": 2}}
    (status,) = engine.evaluate(metrics={"call_latency_usec": hist})
    # 2 of 10 above 256 -> bad_frac 0.2, budget 0.1 -> burn 2.0 >= 1.0.
    assert status["burn"] == pytest.approx(2.0) and status["breached"]
    (status,) = engine.evaluate(metrics={})  # metric absent: no data, no breach
    assert status["burn"] == 0.0 and not status["breached"]


def test_gauge_sli_is_binary_over_the_cap():
    engine = SloEngine(spec_with({"kind": "gauge", "metric": "queue_depth", "max": 8}))
    (status,) = engine.evaluate(counts={"queue_depth": 9})
    assert status["breached"] and status["windows"][0]["n"] == 1
    (status,) = engine.evaluate(counts={"queue_depth": 8})
    assert not status["breached"]
    (status,) = engine.evaluate(counts={})
    assert status["windows"][0]["n"] == 0 and not status["breached"]


def test_cells_for_slo_joins_reports_with_anomalies():
    reports = [{"app": "gtc", "nranks": 8, "ok": True},
               {"app": "cactus", "nranks": 8, "ok": False}]
    anomalies = [{"kind": "straggler", "cell": "gtc_p8"},
                 {"kind": "regression", "cell": "cactus_p8"}]
    out = cells_for_slo(reports, anomalies)
    assert out == [
        {"cell": "gtc_p8", "ok": True, "straggler": True},
        {"cell": "cactus_p8", "ok": False, "straggler": False},  # regression != straggler
    ]


# ---------------------------------------------------------------------------
# Cross-run (history) evaluation


def run_snap(key, ts, stragglers=(), cells_total=4, cells_failed=0):
    return {
        "kind": "run",
        "key": key,
        "data": {"kind": "run", "results": [], "metrics": {}},
        "meta": {
            "timestamp": ts,
            "stragglers": list(stragglers),
            "cells_total": cells_total,
            "cells_failed": cells_failed,
        },
    }


def test_evaluate_runs_windows_slide_over_runs_oldest_first():
    engine = SloEngine(spec_with(
        {"kind": "cell_wall"},
        windows=[{"name": "fast", "last": 2, "max_burn": 10.0}],
    ))
    snaps = [
        run_snap("c", 3.0, stragglers=["gtc_p8"]),  # newest
        run_snap("a", 1.0),
        run_snap("b", 2.0),
        {"kind": "service", "key": "s", "data": {}, "meta": {}},  # ignored
    ]
    (status,) = engine.evaluate_runs(snaps)
    assert status["runs"] == 3
    win = status["windows"][0]
    # Window of the last 2 runs by timestamp: b (clean) + c (1/4 bad).
    assert win["n"] == 8.0 and win["bad"] == 1.0
    assert win["burn"] == pytest.approx((1 / 8) / 0.01)
    assert status["breached"]  # 12.5 >= 10 in the only window


def test_evaluate_runs_clean_history_is_zero_burn():
    statuses = SloEngine().evaluate_runs([run_snap("a", 1.0), run_snap("b", 2.0)])
    assert all(s["burn"] == 0.0 and not s["breached"] for s in statuses)


# ---------------------------------------------------------------------------
# Emission surfaces


def test_record_folds_statuses_into_registry():
    registry = MetricsRegistry(enabled=True)
    engine = SloEngine(spec_with({"kind": "cell_wall"}, objective=0.5))
    (status,) = engine.evaluate(cells=cells(2, 2))
    assert status["breached"]
    engine.record(registry, [status])
    snap = registry.to_dict()
    assert snap["slo.t.burn_rate"]["value"] == pytest.approx(2.0)
    assert snap["slo.t.breached"]["value"] == 1
    assert snap["slo.violations_total"]["value"] == 1


def test_render_slo_lines_format():
    (clean,) = SloEngine(spec_with({"kind": "cell_wall"})).evaluate(cells=cells(0, 4))
    (line,) = render_slo_lines([clean])
    assert line == (
        "slo: t (cell_wall, objective 0.99) ok burn=0 budget=1 [run[all] burn=0/1]"
    )
    bad = dict(clean, breached=True, burn=25.0, budget_remaining=0.0)
    assert "BREACHED" in render_slo_lines([bad])[0]


def test_slo_prometheus_round_trip():
    statuses = SloEngine().evaluate(cells=cells(1, 4))
    text = render_slo_prometheus(statuses)
    assert parse_prometheus(text) == slo_prometheus_projection(statuses)
    assert render_slo_prometheus([]) == ""


# ---------------------------------------------------------------------------
# End-to-end: injected straggler -> burn-rate violation everywhere


@pytest.fixture
def slow_paratec(monkeypatch):
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 0.4)
    monkeypatch.setenv(FAULT_ENV_VAR, "slow:paratec_p8:1")


def run_with_slo(tmp_path, **kw):
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "cache"), obs=obs,
        argv=["test"], bench_dir=None, slo=SloEngine(), **kw,
    )
    return out, obs


def test_injected_straggler_breaches_cell_wall_slo(tmp_path, slow_paratec):
    out, obs = run_with_slo(tmp_path)
    # paratec is the last of 4 cells; 1/4 straggling burns the 1% budget
    # at 25x: over the fast window limit (14) and the slow (6) -> breach.
    by_name = {s["slo"]: s for s in out["slo"]}
    assert by_name["cell-wall"]["breached"]
    assert by_name["cell-wall"]["burn"] == pytest.approx(25.0)
    assert not by_name["cell-success"]["breached"]

    # Trace: slo_status for every SLO plus one slo_violation.
    statuses = [e for e in obs.events if e["event"] == "slo_status"]
    assert {e["slo"] for e in statuses} == {"cell-wall", "cell-success", "call-latency"}
    (violation,) = [e for e in obs.events if e["event"] == "slo_violation"]
    assert violation["slo"] == "cell-wall" and violation["burn"] == pytest.approx(25.0)

    # Metrics registry -> Prometheus series.
    snap = obs.metrics.to_dict()
    assert snap["slo.cell-wall.breached"]["value"] == 1
    assert 'hfast_slo_breached{slo="cell-wall"} 1' in render_slo_prometheus(out["slo"])

    # Report: the SLO compliance section calls out the breach.
    md = render_markdown(build_report(obs.events))
    assert "## SLO compliance" in md
    assert "3 SLO(s) evaluated, 1 breached." in md
    assert "| cell-wall | cell_wall | 0.99 | 25 |" in md and "**BREACHED**" in md


def test_clean_run_scores_zero_burn_everywhere(tmp_path):
    out, obs = run_with_slo(tmp_path)
    assert all(s["burn"] == 0.0 and not s["breached"] for s in out["slo"])
    assert [e for e in obs.events if e["event"] == "slo_violation"] == []
    md = render_markdown(build_report(obs.events))
    assert "## SLO compliance" in md and "all within budget" in md
    assert "BREACHED" not in md
