"""Storm and chaos tests for `hfast serve` (slow; CI service job).

A concurrent client burst against a tight admission budget must resolve
into exactly-once execution per distinct spec, 429s past the budget, and
no lost or duplicated work. Composing ``HFAST_FAULT_INJECT`` with the
service path must behave like the batch pipeline: flaky cells retry to
success under the stealing scheduler (byte-identical results), and
exhausted cells fail the job with a recorded error instead of wedging
the daemon.
"""

import json
import threading

import pytest

from hfast.obs.prom import parse_prometheus
from hfast.pipeline import run_pipeline
from hfast.sched import faults
from hfast.sched.faults import FAULT_ENV_VAR
from serve_util import ServiceThread, make_config, request, wait_for_job

pytestmark = pytest.mark.slow

SPEC = {"app": "cactus", "nranks": 8}


def scrape(port: int) -> dict:
    _, _, raw = request(port, "GET", "/metrics")
    return parse_prometheus(raw.decode("utf-8"))


def test_concurrent_client_storm_respects_admission_budget(tmp_path, monkeypatch):
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 0.8)
    monkeypatch.setenv(FAULT_ENV_VAR, "slow:cactus_p8:99")
    config = make_config(tmp_path, max_running=2, queue_limit=4)
    budget = config.max_running + config.queue_limit
    n_clients = 12

    with ServiceThread(config) as service:
        port = service.port
        responses: list[tuple[int, dict]] = [None] * n_clients

        def client(i: int) -> None:
            status, _, raw = request(
                port, "POST", "/v1/jobs", {**SPEC, "timing_seed": i}
            )
            responses[i] = (status, json.loads(raw))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        admitted = [doc for status, doc in responses if status == 202]
        rejected = [doc for status, doc in responses if status == 429]
        assert {status for status, _ in responses} == {202, 429}
        # Every cell is slowed, so nothing finishes during the burst:
        # admission is exactly the configured budget, the rest bounce.
        assert len(admitted) == budget
        assert len(rejected) == n_clients - budget

        for doc in admitted:
            assert wait_for_job(port, doc["job_id"])["status"] == "done"

        metrics = scrape(port)
        assert metrics["hfast_serve_jobs_executed"]["value"] == budget
        assert metrics["hfast_serve_rejected_429"]["value"] == n_clients - budget
        assert metrics["hfast_serve_jobs_submitted"]["value"] == n_clients

        # Distinct specs produced distinct artifacts, all servable.
        keys = {doc["key"] for doc in admitted}
        assert len(keys) == budget
        for key in keys:
            assert request(port, "GET", f"/v1/results/{key}")[0] == 200


def test_storm_of_identical_specs_executes_once(tmp_path, monkeypatch):
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 0.6)
    monkeypatch.setenv(FAULT_ENV_VAR, "slow:cactus_p8:99")
    config = make_config(tmp_path, max_running=2, queue_limit=2)
    n_clients = 10

    with ServiceThread(config) as service:
        port = service.port
        responses: list[tuple[int, dict]] = [None] * n_clients

        def client(i: int) -> None:
            status, _, raw = request(port, "POST", "/v1/jobs", dict(SPEC))
            responses[i] = (status, json.loads(raw))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        # One admission; everyone else deduped onto it (or served cached
        # if they arrived after completion). Nobody was rejected: dedupe
        # does not consume admission budget.
        statuses = [status for status, _ in responses]
        assert statuses.count(202) == 1
        assert statuses.count(200) == n_clients - 1
        job_ids = {doc["job_id"] for _, doc in responses if "job_id" in doc}
        assert len(job_ids) == 1

        wait_for_job(port, next(iter(job_ids)))
        metrics = scrape(port)
        assert metrics["hfast_serve_jobs_executed"]["value"] == 1
        deduped = metrics.get("hfast_serve_jobs_deduped", {}).get("value", 0)
        cached = metrics.get("hfast_serve_cache_hits", {}).get("value", 0)
        assert deduped + cached == n_clients - 1


def test_flaky_fault_retries_to_byte_identical_result(tmp_path, monkeypatch):
    """Chaos x service: a flaky cell retries under the stealing scheduler
    and the served artifact matches a clean direct run byte-for-byte."""
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:cactus_p8:1")
    config = make_config(tmp_path, scheduler="stealing")
    with ServiceThread(config) as service:
        port = service.port
        status, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        assert status == 202
        doc = json.loads(raw)
        job = wait_for_job(port, doc["job_id"])
        assert job["status"] == "done"
        assert job["attempts"] >= 2  # the fault fired, the retry won
        assert job["scheduler"]["retries"] >= 1
        _, _, served = request(port, "GET", f"/v1/results/{doc['key']}")

    monkeypatch.delenv(FAULT_ENV_VAR)
    out = run_pipeline(
        apps=["cactus"], scales={"cactus": [8]},
        cache_dir=str(tmp_path / "clean"), argv=["test"], bench_dir=None,
    )
    clean = (json.dumps(out["results"][0], sort_keys=True) + "\n").encode("utf-8")
    assert served == clean


def test_exhausted_fault_fails_job_with_recorded_error(tmp_path, monkeypatch):
    """A cell that fails every attempt fails the job, not the daemon."""
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:cactus_p8:99")
    # Stealing scheduler: the fault fires on all 1 + max_retries attempts,
    # so the retry budget is genuinely exhausted.
    config = make_config(tmp_path, scheduler="stealing")
    with ServiceThread(config) as service:
        port = service.port
        status, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        assert status == 202
        doc = json.loads(raw)
        job = wait_for_job(port, doc["job_id"])
        assert job["status"] == "failed"
        assert "cactus_p8" in job["error"]
        assert request(port, "GET", f"/v1/results/{doc['key']}")[0] == 404
        metrics = scrape(port)
        assert metrics["hfast_serve_jobs_failed"]["value"] == 1

        # The daemon is still healthy: clear the fault, resubmit, succeed.
        monkeypatch.delenv(FAULT_ENV_VAR)
        status, _, raw = request(port, "POST", "/v1/jobs", dict(SPEC))
        assert status == 202  # failed jobs are not cached; re-admission is real
        job = wait_for_job(port, json.loads(raw)["job_id"])
        assert job["status"] == "done"
