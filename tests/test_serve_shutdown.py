"""Graceful shutdown, crash recovery, and journal resume for `hfast serve`.

The drain contract: on SIGTERM (or a programmatic drain) the daemon
stops admitting work with ``503``, runs every in-flight job to
completion, persists its result, and only then exits — so a restarted
daemon can serve the result straight from the content-addressed store.
Jobs a daemon crashed under are re-admitted on the next boot from the
job ledger, resuming from the scheduler journal when one survived.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from hfast.sched import faults
from hfast.sched.faults import FAULT_ENV_VAR
from hfast.serve.jobspec import canonicalize
from hfast.serve.store import JobLedger, ResultStore
from serve_util import ServiceThread, make_config, request, wait_for_job

SPEC = {"app": "cactus", "nranks": 8}
REPO_ROOT = Path(__file__).resolve().parent.parent


def test_drain_completes_inflight_job_and_result_survives_restart(
    tmp_path, monkeypatch
):
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 0.8)
    monkeypatch.setenv(FAULT_ENV_VAR, "slow:cactus_p8:99")
    config = make_config(tmp_path)
    service = ServiceThread(config).start()
    port = service.port
    try:
        status, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        assert status == 202
        doc = json.loads(raw)

        # Wait until the job is observably running, then drain from a
        # separate thread (exactly what the SIGTERM handler does).
        for _ in range(100):
            health = json.loads(request(port, "GET", "/healthz")[2])
            if health["running"] >= 1:
                break
            time.sleep(0.02)
        assert health["running"] >= 1

        drainer = threading.Thread(target=service.drain)
        drainer.start()
        # Mid-drain: reads work, writes are refused with Retry-After.
        time.sleep(0.05)
        status, headers, raw = request(port, "POST", "/v1/jobs", {**SPEC, "timing_seed": 9})
        assert status == 503
        assert "retry-after" in headers
        health = json.loads(request(port, "GET", "/healthz")[2])
        assert health["status"] == "draining"
        drainer.join(timeout=120)
        assert not drainer.is_alive()
    finally:
        service.stop()

    # The in-flight job finished during the drain and its artifact is
    # durable: a fresh daemon on the same state dir serves it.
    assert ResultStore(tmp_path / "serve" / "results").has(doc["key"])
    monkeypatch.delenv(FAULT_ENV_VAR)
    with ServiceThread(make_config(tmp_path)) as restarted:
        status, _, served = request(restarted.port, "GET", f"/v1/results/{doc['key']}")
        assert status == 200 and served
        # And the restarted daemon reports the prior job as done.
        status, _, raw = request(restarted.port, "GET", f"/v1/jobs/{doc['job_id']}")
        assert status == 200
        assert json.loads(raw)["status"] == "done"


def test_restart_reexecutes_job_left_queued_by_a_crash(tmp_path):
    spec = canonicalize(SPEC)
    ledger = JobLedger(tmp_path / "serve" / "jobs")
    # Simulate a daemon that died right after admission: a ledger record
    # exists, no journal, no result.
    ledger.write(
        {
            "job_id": "crashjob-000001",
            "key": spec.key,
            "cell": spec.cell_key,
            "status": "queued",
            "run_id": "20260101-000000-dead00",
            "spec": spec.payload(),
        }
    )
    with ServiceThread(make_config(tmp_path)) as service:
        job = wait_for_job(service.port, "crashjob-000001")
        assert job["status"] == "done"
        assert job["recovered"] is True
        status, _, served = request(service.port, "GET", f"/v1/results/{spec.key}")
        assert status == 200 and served


def test_restart_resumes_interrupted_job_from_journal(tmp_path):
    """A journaled cell is replayed, not re-run, and bytes are identical."""
    spec = canonicalize(SPEC)
    config = make_config(tmp_path, scheduler="stealing")
    with ServiceThread(config) as service:
        _, _, raw = request(service.port, "POST", "/v1/jobs", SPEC)
        doc = json.loads(raw)
        job = wait_for_job(service.port, doc["job_id"])
        assert job["status"] == "done"
        run_id = job["run_id"]

    store = ResultStore(tmp_path / "serve" / "results")
    original = store.get_bytes(spec.key)
    assert original is not None

    # Rewind to mid-crash: result gone, ledger says running, journal intact.
    (store.root / f"{spec.key}.json").unlink()
    ledger = JobLedger(tmp_path / "serve" / "jobs")
    rec = ledger.read(doc["job_id"])
    rec["status"] = "running"
    ledger.write(rec)
    assert (tmp_path / "serve" / "journal" / f"{run_id}.jsonl").is_file()

    with ServiceThread(make_config(tmp_path, scheduler="stealing")) as service:
        job = wait_for_job(service.port, doc["job_id"])
        assert job["status"] == "done"
        assert job["recovered"] is True
        # The cell came out of the journal (replayed, not re-executed)...
        assert job["scheduler"]["resumed"] is True
        assert job["scheduler"]["cells_from_journal"] == 1
        # ...and the re-materialized artifact is byte-identical.
        status, _, served = request(service.port, "GET", f"/v1/results/{spec.key}")
        assert status == 200
        assert served == original


def test_sigterm_drains_inflight_job_and_exits_zero(tmp_path):
    """Black-box drain: real process, real SIGTERM, result survives."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env[FAULT_ENV_VAR] = "slow:cactus_p8:1"  # first attempt sleeps ~1s
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "hfast", "serve",
            "--port", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--serve-dir", str(tmp_path / "serve"),
            "--job-scheduler", "static",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on http://127.0.0.1:" in line, line
        port = int(line.rsplit(":", 1)[1])

        status, _, raw = request(port, "POST", "/v1/jobs", SPEC)
        assert status == 202
        doc = json.loads(raw)
        for _ in range(200):
            health = json.loads(request(port, "GET", "/healthz")[2])
            if health["running"] >= 1:
                break
            time.sleep(0.02)
        assert health["running"] >= 1

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == 0, out
    assert "draining" in out and "drained" in out

    # The job the daemon was killed under finished and persisted.
    store = ResultStore(tmp_path / "serve" / "results")
    assert store.has(doc["key"])
    with ServiceThread(make_config(tmp_path)) as restarted:
        status, _, served = request(restarted.port, "GET", f"/v1/results/{doc['key']}")
        assert status == 200 and served
