"""Parameter-space spec: validation, determinism, content addressing."""

from __future__ import annotations

import pytest

from hfast.dse.space import (
    DIMENSIONS,
    SPACE_FORMAT,
    Candidate,
    SearchSpace,
    SpaceValidationError,
)
from hfast.interconnect import InterconnectConfig
from hfast.matcher import DEFAULT_MATCHER

SPACE = SearchSpace(
    circuits=(1, 4), reconfig_costs=(0.0, 1e-3), matchers=("vector",), timesteps=(1, 4)
)


# -- validation -------------------------------------------------------------


def test_dimensions_are_canonical_and_sorted():
    s = SearchSpace(circuits=(8, 1, 1, 4))
    assert s.circuits == (1, 4, 8)  # deduped + sorted
    assert s.size == 3 * len(s.reconfig_costs) * len(s.matchers) * len(s.timesteps)


def test_validation_collects_every_error():
    with pytest.raises(SpaceValidationError) as exc:
        SearchSpace(circuits=(-1,), matchers=("nope",), timesteps=())
    msgs = "\n".join(exc.value.errors)
    assert "circuits" in msgs and "matchers" in msgs and "timesteps" in msgs
    assert len(exc.value.errors) >= 3


def test_empty_dimension_rejected():
    with pytest.raises(SpaceValidationError):
        SearchSpace(reconfig_costs=())


def test_from_doc_rejects_unknown_fields_and_bad_format():
    with pytest.raises(SpaceValidationError) as exc:
        SearchSpace.from_doc({"circuits": [1], "bogus": True, "format": 99})
    msgs = "\n".join(exc.value.errors)
    assert "bogus" in msgs and "format" in msgs


def test_from_doc_fills_defaults():
    s = SearchSpace.from_doc({"circuits": [2]})
    assert s.circuits == (2,)
    assert s.matchers == SearchSpace().matchers


# -- enumeration and sampling ----------------------------------------------


def test_grid_enumerates_full_product_in_canonical_order():
    grid = SPACE.grid()
    assert len(grid) == SPACE.size == 8
    assert len(set(c.key for c in grid)) == 8
    # Canonical dimension order: circuits vary slowest, timesteps fastest.
    assert [c.circuits_per_node for c in grid[:4]] == [1, 1, 1, 1]
    assert [c.timesteps for c in grid[:2]] == [1, 4]


def test_sample_is_seed_deterministic():
    a = SPACE.sample(6, seed=3)
    b = SPACE.sample(6, seed=3)
    assert [c.key for c in a] == [c.key for c in b]
    assert all(c in SPACE.grid() for c in a)
    assert [c.key for c in SPACE.sample(6, seed=4)] != [c.key for c in a]


def test_mutate_changes_exactly_one_dimension():
    cand = SPACE.grid()[0]
    for stream in range(20):
        mut = SPACE.mutate(cand, seed=1, stream=stream)
        diffs = [
            d
            for d in (
                "circuits_per_node",
                "reconfig_cost",
                "matcher",
                "timesteps",
            )
            if getattr(mut, d) != getattr(cand, d)
        ]
        assert len(diffs) <= 1
        assert mut == SPACE.mutate(cand, seed=1, stream=stream)  # deterministic


# -- round-trips and keys ---------------------------------------------------


def test_space_doc_round_trip_preserves_key():
    doc = SPACE.to_doc()
    assert doc["format"] == SPACE_FORMAT
    assert SearchSpace.from_doc(doc) == SPACE
    assert SearchSpace.from_doc(doc).key == SPACE.key


def test_space_key_pinned():
    # The key feeds every frontier artifact; an accidental layout change
    # must fail loudly.
    assert SPACE.key == SearchSpace(
        circuits=(4, 1), reconfig_costs=(1e-3, 0.0), matchers=("vector",), timesteps=(4, 1)
    ).key
    assert SPACE.key != SearchSpace().key


def test_candidate_round_trip_and_config():
    cand = Candidate(
        circuits_per_node=2, reconfig_cost=5e-4, matcher=DEFAULT_MATCHER, timesteps=4
    )
    assert Candidate.from_doc(cand.to_doc()) == cand
    base = InterconnectConfig(circuit_bandwidth=123.0, slice_seed=9)
    cfg = cand.config(base)
    # Searched dimensions come from the candidate...
    assert cfg.circuits_per_node == 2 and cfg.timesteps == 4
    assert cfg.reconfig_cost == 5e-4 and cfg.matcher == DEFAULT_MATCHER
    # ...everything else from the base config.
    assert cfg.circuit_bandwidth == 123.0 and cfg.slice_seed == 9


def test_candidate_key_is_content_addressed():
    a = Candidate(1, 0.0, "vector", 1)
    assert a.key == Candidate(1, 0.0, "vector", 1).key
    assert a.key != Candidate(1, 0.0, "vector", 4).key
    assert DIMENSIONS == ("circuits", "reconfig_costs", "matchers", "timesteps")
