"""LogGP calibration: fit quality, artifact round-trip, overlay wiring."""

from __future__ import annotations

import json

import pytest

from hfast import timing
from hfast.dse.calibrate import (
    PAPER_PCT_COMM,
    calibrate,
    fit_compute_step,
    predicted_pct,
    write_artifact,
)
from hfast.timing import (
    APP_PARAMS,
    LogGPParams,
    ParamsArtifactError,
    TimingModel,
    activate_params,
    deactivate_params,
    load_params_artifact,
    params_provenance,
)


@pytest.fixture(autouse=True)
def _reset_overlay():
    yield
    deactivate_params()


@pytest.fixture(scope="module")
def artifact_doc(repo_cache_dir):
    # scope=module: the fit reads four apps x two scales from the repo
    # cache once, and every test inspects the same document.
    return calibrate(cache_dir=str(repo_cache_dir), store=False)


# module-scoped fixture can't use the function-scoped repo_cache_dir
# fixture from conftest, so rebind it here at module scope.
@pytest.fixture(scope="module")
def repo_cache_dir():
    from pathlib import Path

    return Path(__file__).resolve().parent.parent / ".repro_cache"


# -- the fit ----------------------------------------------------------------


def test_fit_moves_every_app_toward_paper_targets(artifact_doc):
    # One knob serves two scales, so judge per-app aggregate error: the
    # fit must strictly improve on the defaults summed across scales
    # (a single scale may individually regress, e.g. paratec's).
    for app, scales in artifact_doc["residuals"].items():
        fitted_err = sum(abs(r["fitted_pct"] - r["target_pct"]) for r in scales.values())
        default_err = sum(abs(r["default_pct"] - r["target_pct"]) for r in scales.values())
        assert fitted_err < default_err, (app, scales)


def test_fit_touches_only_compute_step(artifact_doc):
    for app, fields in artifact_doc["params"].items():
        base = APP_PARAMS[app]
        for wire in ("L", "o", "g", "G", "jitter"):
            assert fields[wire] == getattr(base, wire)
        assert fields["compute_step_s"] != base.compute_step_s
        assert fields["compute_step_s"] > 0


def test_closed_form_fit_is_exact_at_a_single_scale():
    # With one target scale the closed form must hit it exactly.
    app = "gtc"
    nranks = 64
    comm = 0.5
    pct = PAPER_PCT_COMM[app][nranks]
    step = comm * (100.0 - pct) / (pct * 10)  # gtc: 10 steps
    assert predicted_pct(comm, step * 10) == pytest.approx(pct)
    fitted = fit_compute_step(app, {64: comm, 256: comm})
    assert fitted > 0


def test_calibrate_rejects_unknown_apps(repo_cache_dir):
    with pytest.raises(ValueError, match="nosuchapp"):
        calibrate(apps=["nosuchapp"], cache_dir=str(repo_cache_dir))


# -- artifact round-trip ----------------------------------------------------


def test_artifact_round_trips_through_loader(artifact_doc, tmp_path):
    path = write_artifact(artifact_doc, tmp_path / "params.json")
    loaded = load_params_artifact(path)
    assert sorted(loaded) == sorted(PAPER_PCT_COMM)
    for app, params in loaded.items():
        assert isinstance(params, LogGPParams)
        assert params.compute_step_s == artifact_doc["params"][app]["compute_step_s"]
    doc = json.loads(path.read_text())
    assert doc["kind"] == "hfast-loggp-params"
    assert doc["provenance"]["tool"] == "hfast calibrate"


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.pop("params"),
        lambda d: d.update(kind="something-else"),
        lambda d: d.update(format=99),
        lambda d: d["params"]["gtc"].update(compute_step_s="fast"),
        lambda d: d["params"]["gtc"].update(jitter=1.5),
    ],
)
def test_loader_rejects_malformed_artifacts(artifact_doc, tmp_path, mutate):
    doc = json.loads(json.dumps(artifact_doc))
    mutate(doc)
    path = write_artifact(doc, tmp_path / "bad.json")
    with pytest.raises(ParamsArtifactError):
        load_params_artifact(path)


def test_loader_rejects_unreadable_file(tmp_path):
    with pytest.raises(ParamsArtifactError):
        load_params_artifact(tmp_path / "missing.json")
    bad = tmp_path / "notjson.json"
    bad.write_text("{")
    with pytest.raises(ParamsArtifactError):
        load_params_artifact(bad)


# -- overlay ----------------------------------------------------------------


def test_overlay_changes_timing_model_and_provenance(artifact_doc, tmp_path):
    path = write_artifact(artifact_doc, tmp_path / "params.json")
    assert params_provenance("gtc") == "default"
    default_step = TimingModel("gtc", 64).params.compute_step_s

    activate_params(load_params_artifact(path), "params.json")
    assert params_provenance("gtc") == "calibrated:params.json"
    assert params_provenance("unknown-app") == "default"
    fitted_step = TimingModel("gtc", 64).params.compute_step_s
    assert fitted_step == artifact_doc["params"]["gtc"]["compute_step_s"]
    assert fitted_step != default_step
    # Explicit params still beat the overlay.
    explicit = LogGPParams(compute_step_s=123.0)
    assert TimingModel("gtc", 64, params=explicit).params.compute_step_s == 123.0

    deactivate_params()
    assert params_provenance("gtc") == "default"
    assert TimingModel("gtc", 64).params.compute_step_s == default_step


def test_overlay_leaves_wire_times_untouched(artifact_doc, tmp_path):
    # The calibrated overlay must only move %comm's denominator: the
    # per-record wire times that live in cached documents are functions
    # of (L, o, g, G, jitter), which calibration never changes.
    from hfast.records import CommRecord

    rec = CommRecord(rank=0, call="mpi_isend", size=4096, peer=1, count=3)
    before = TimingModel("gtc", 64).time_record(rec)
    activate_params(load_params_artifact(write_artifact(artifact_doc, tmp_path / "p.json")), "p")
    after = TimingModel("gtc", 64).time_record(rec)
    assert before == after


def test_calibration_is_deterministic(repo_cache_dir):
    a = calibrate(apps=["gtc"], cache_dir=str(repo_cache_dir), store=False)
    b = calibrate(apps=["gtc"], cache_dir=str(repo_cache_dir), store=False)
    assert a["params"] == b["params"]
    assert a["residuals"] == b["residuals"]
