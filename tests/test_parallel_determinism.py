"""Cross-worker-count and sharding determinism.

The sharded engine's contract: a sweep's output is a pure function of the
(app, scale) matrix — worker count and sharding must not change a single
byte of the repro-cache artifacts, any analysis number, or the report
(modulo wall-clock timing fields). These tests are the safety net for the
parallel backend and for any future scheduler change.
"""

import hashlib
import json
from pathlib import Path

from hfast.obs.profile import Observability
from hfast.obs.report import build_report
from hfast.pipeline import Cell, build_cells, run_pipeline, shard_cells

APPS = ["cactus", "gtc", "lbmhd", "paratec"]
SCALES = {app: [8, 16] for app in APPS}

TIMING_FIELDS = {
    "wall_s", "pct", "total_wall_s", "peak_rss_kb", "timestamp", "argv", "workers",
    # PR 6: absolute cell execution stamps and the wall-derived report
    # section built from them are timing artifacts like wall_s itself.
    "t_start", "t_end", "pid", "time_breakdown",
}


def run_matrix(cache_dir: Path, workers: int, shard=None) -> dict:
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=APPS,
        scales=SCALES,
        cache_dir=str(cache_dir),
        obs=obs,
        argv=["test"],
        workers=workers,
        shard=shard,
    )
    out["report"] = build_report(obs.events)
    return out


def cache_digests(cache_dir: Path) -> dict[str, str]:
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(cache_dir.glob("*.json"))
    }


def normalize(node, strip_paths=False):
    """Strip timing/provenance fields so runs are comparable.

    The stage table is ordered by wall time (a timing artifact), so it is
    re-sorted by stage name before comparing.
    """
    if isinstance(node, dict):
        out = {}
        for k, v in node.items():
            if k in TIMING_FIELDS:
                continue
            if k == "path" and strip_paths and isinstance(v, str):
                out[k] = Path(v).name
            elif k == "stages" and isinstance(v, list):
                out[k] = sorted(
                    (normalize(s, strip_paths) for s in v), key=lambda s: s["stage"]
                )
            else:
                out[k] = normalize(v, strip_paths)
        return out
    if isinstance(node, list):
        return [normalize(v, strip_paths) for v in node]
    return node


def test_worker_counts_produce_identical_output(tmp_path):
    serial = run_matrix(tmp_path / "w1", workers=1)
    parallel = run_matrix(tmp_path / "w4", workers=4)

    # Identical analysis results, in identical order.
    assert serial["results"] == parallel["results"]
    assert len(serial["results"]) == 8

    # Byte-identical cache artifacts under identical sha256 content.
    d1, d4 = cache_digests(tmp_path / "w1"), cache_digests(tmp_path / "w4")
    assert d1 and d1 == d4

    # Identical report modulo timing fields (cache entry paths differ only
    # by the run's cache directory).
    r1 = normalize(serial["report"], strip_paths=True)
    r4 = normalize(parallel["report"], strip_paths=True)
    assert r1 == r4


def test_worker_counts_produce_identical_metrics(tmp_path):
    obs1, obs4 = Observability(enabled=True), Observability(enabled=True)
    run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "m1"),
                 obs=obs1, argv=["test"], workers=1)
    run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "m4"),
                 obs=obs4, argv=["test"], workers=4)
    m1, m4 = obs1.metrics.to_dict(), obs4.metrics.to_dict()
    # Analysis metrics merge exactly; only the per-stage wall-time spans
    # differ, and those live in the tracer, not the registry.
    assert m1["msg_size_bytes"] == m4["msg_size_bytes"]
    assert m1["pipeline.bytes_total"] == m4["pipeline.bytes_total"]
    assert m1["pipeline.apps_analyzed"] == m4["pipeline.apps_analyzed"]
    assert set(m1) == set(m4)


def test_shard_merge_equals_full_run(tmp_path):
    full = run_matrix(tmp_path / "full", workers=1)
    shard0 = run_matrix(tmp_path / "shards", workers=2, shard=(0, 2))
    shard1 = run_matrix(tmp_path / "shards", workers=2, shard=(1, 2))

    # Interleave shard results back into cell order and compare.
    merged = []
    s0, s1 = list(shard0["results"]), list(shard1["results"])
    for i in range(len(full["results"])):
        merged.append(s0.pop(0) if i % 2 == 0 else s1.pop(0))
    assert merged == full["results"]

    # Shards wrote disjoint cells into one cache dir; union must be
    # byte-identical to the full run's artifacts.
    assert cache_digests(tmp_path / "shards") == cache_digests(tmp_path / "full")

    # Manifests record the shard spec.
    assert shard0["manifest"]["shard"] == {"index": 0, "count": 2}
    assert len(shard0["manifest"]["cells"]) == 4


def test_shard_cells_partition_is_exact():
    cells = build_cells(APPS, SCALES)
    assert [c.index for c in cells] == list(range(8))
    for m in (1, 2, 3, 8):
        shards = [shard_cells(cells, i, m) for i in range(m)]
        seen = sorted(c.index for s in shards for c in s)
        assert seen == list(range(8)), f"shard {m} not a partition"
    assert shard_cells(cells, 0, 3)[0] == Cell(app="cactus", nranks=8, index=0)


def test_second_run_hits_cache_and_matches(tmp_path):
    """A warm parallel run (all hits) reproduces the cold run's results."""
    cold = run_matrix(tmp_path / "c", workers=4)
    warm = run_matrix(tmp_path / "c", workers=4)
    assert cold["manifest"]["cache"]["stores"] == 8
    assert warm["manifest"]["cache"]["hits"] == 8
    assert warm["manifest"]["cache"]["stores"] == 0
    assert cold["results"] == warm["results"]


def test_timing_identical_across_workers_and_shards(tmp_path):
    """Synthesized times are a pure function of (app, nranks, seed).

    Worker count and sharding must not perturb a single timing number:
    the per-cell timing summaries (float comm times included) and the
    latency-histogram buckets must match exactly. Histogram float sums
    are compared per-bucket-count, not by the merged running sum, since
    merge order legitimately differs.
    """
    serial = run_matrix(tmp_path / "w1", workers=1)
    parallel = run_matrix(tmp_path / "w4", workers=4)
    shard0 = run_matrix(tmp_path / "s", workers=2, shard=(0, 2))
    shard1 = run_matrix(tmp_path / "s", workers=2, shard=(1, 2))

    t_serial = [r["timing"] for r in serial["results"]]
    t_parallel = [r["timing"] for r in parallel["results"]]
    assert t_serial == t_parallel
    t_sharded = [r["timing"] for r in shard0["results"] + shard1["results"]]
    assert sorted(map(str, t_sharded)) == sorted(map(str, t_serial))
    for t in t_serial:
        assert t["comm_time_s"] > 0.0
        assert 0.0 < t["pct_comm"] < 100.0
        assert t["latency_buckets"]

    tm_serial = [r["interconnect_temporal"] for r in serial["results"]]
    tm_parallel = [r["interconnect_temporal"] for r in parallel["results"]]
    assert tm_serial == tm_parallel


def test_latency_histograms_merge_exactly_across_workers(tmp_path):
    obs1, obs4 = Observability(enabled=True), Observability(enabled=True)
    run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "h1"),
                 obs=obs1, argv=["test"], workers=1)
    run_pipeline(apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "h4"),
                 obs=obs4, argv=["test"], workers=4)
    m1, m4 = obs1.metrics.to_dict(), obs4.metrics.to_dict()
    names = ["call_latency_usec"] + [f"call_latency_usec.{a}" for a in APPS]
    for name in names:
        h1, h4 = m1[name], m4[name]
        assert h1["buckets"] == h4["buckets"], name
        assert h1["count"] == h4["count"] and h1["count"] > 0, name
        assert h1["min"] == h4["min"] and h1["max"] == h4["max"], name
