import json
from pathlib import Path

import numpy as np
import pytest

from hfast.apps import synthesize
from hfast.interconnect import (
    InterconnectConfig,
    assign_circuits,
    assign_circuits_matching,
    evaluate_hybrid,
    evaluate_temporal,
    slice_traffic,
)
from hfast.matrix import CommMatrix, reduce_matrix
from hfast.records import CommRecord

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_CASES = [(app, n) for app in ("cactus", "gtc", "lbmhd", "paratec") for n in (8, 16)]


def golden_matrix(app: str, nranks: int) -> CommMatrix:
    fixture = json.loads((GOLDEN_DIR / f"{app}_p{nranks}.json").read_text())
    return CommMatrix(
        nranks=nranks,
        bytes_matrix=np.array(fixture["bytes_matrix"], dtype=np.int64),
        msg_matrix=np.array(fixture["msg_matrix"], dtype=np.int64),
    )


def ring_matrix(n=8):
    recs = [CommRecord(r, "MPI_Isend", 1000, (r + 1) % n) for r in range(n)]
    return reduce_matrix(recs, n)


def test_ring_fully_provisionable():
    ev = evaluate_hybrid(ring_matrix(8), InterconnectConfig(circuits_per_node=2))
    assert ev.fully_provisionable
    assert ev.coverage == 1.0
    assert ev.packet_bytes == 0
    assert ev.speedup >= 1.0


def test_budget_limits_circuits():
    # paratec all-to-all at 8 ranks: 56 links, budget 2 -> 16 circuits max
    cm = reduce_matrix(synthesize("paratec", 8).records, 8)
    circuits = assign_circuits(cm, circuits_per_node=2)
    assert len(circuits) == 16
    egress = [0] * 8
    ingress = [0] * 8
    for s, d in circuits:
        egress[s] += 1
        ingress[d] += 1
    assert max(egress) <= 2 and max(ingress) <= 2


def test_coverage_between_zero_and_one():
    cm = reduce_matrix(synthesize("lbmhd", 16).records, 16)
    ev = evaluate_hybrid(cm, InterconnectConfig(circuits_per_node=4))
    assert 0.0 < ev.coverage < 1.0
    assert ev.circuit_bytes + ev.packet_bytes == cm.total_bytes
    assert not ev.fully_provisionable


def test_hybrid_never_slower_than_packet_only():
    for app in ("cactus", "gtc", "lbmhd", "paratec"):
        cm = reduce_matrix(synthesize(app, 16).records, 16)
        ev = evaluate_hybrid(cm)
        assert ev.hybrid_time <= ev.packet_only_time
        assert ev.speedup >= 1.0


def test_empty_matrix_is_trivially_provisionable():
    ev = evaluate_hybrid(reduce_matrix([], 4))
    assert ev.fully_provisionable
    assert ev.coverage == 0.0


def test_more_circuits_more_coverage():
    cm = reduce_matrix(synthesize("paratec", 8).records, 8)
    low = evaluate_hybrid(cm, InterconnectConfig(circuits_per_node=1))
    high = evaluate_hybrid(cm, InterconnectConfig(circuits_per_node=4))
    assert high.coverage > low.coverage


# -- max-weight matching ------------------------------------------------------


@pytest.mark.parametrize("app,nranks", GOLDEN_CASES)
@pytest.mark.parametrize("budget", [1, 2, 4])
def test_matching_never_below_greedy(app, nranks, budget):
    """The augmenting matcher covers at least as many bytes as greedy."""
    cm = golden_matrix(app, nranks)
    greedy = evaluate_hybrid(cm, InterconnectConfig(circuits_per_node=budget))
    matched = evaluate_hybrid(
        cm, InterconnectConfig(circuits_per_node=budget), strategy="matching"
    )
    assert matched.circuit_bytes >= greedy.circuit_bytes
    assert matched.coverage >= greedy.coverage


@pytest.mark.parametrize("app,nranks", GOLDEN_CASES)
def test_matching_respects_degree_budget(app, nranks):
    cm = golden_matrix(app, nranks)
    for budget in (1, 2, 4):
        circuits = assign_circuits_matching(cm.bytes_matrix, budget)
        egress = [0] * nranks
        ingress = [0] * nranks
        for s, d in circuits:
            egress[s] += 1
            ingress[d] += 1
        assert max(egress, default=0) <= budget
        assert max(ingress, default=0) <= budget
        assert len(set(circuits)) == len(circuits)


def test_matching_beats_greedy_on_adversarial_case():
    """Greedy grabs the heavy diagonal edge; the matcher swaps it out."""
    # Greedy takes (0,1)=10 first, saturating node 0's egress and node 1's
    # ingress at budget 1, blocking (0,2)=9 and (3,1)=9 which together
    # carry more. The matcher must recover that.
    w = np.zeros((4, 4), dtype=np.int64)
    w[0, 1], w[0, 2], w[3, 1] = 10, 9, 9
    greedy_bytes = sum(
        int(w[s, d]) for s, d in assign_circuits(
            CommMatrix(4, w, np.zeros_like(w)), 1
        )
    )
    matched_bytes = sum(int(w[s, d]) for s, d in assign_circuits_matching(w, 1))
    assert matched_bytes == 18 > greedy_bytes


def test_matching_empty_and_zero_budget():
    w = np.zeros((4, 4), dtype=np.int64)
    assert assign_circuits_matching(w, 4) == []
    w[0, 1] = 5
    assert assign_circuits_matching(w, 0) == []


# -- temporal evaluator -------------------------------------------------------


@pytest.mark.parametrize("app,nranks", GOLDEN_CASES)
def test_slice_traffic_conserves_volume(app, nranks):
    cm = golden_matrix(app, nranks)
    for T in (1, 3, 4, 7):
        slices = slice_traffic(cm, T, seed=0)
        assert len(slices) == max(1, T)
        bytes_sum = sum(b for b, _ in slices)
        msgs_sum = sum(m for _, m in slices)
        assert np.array_equal(bytes_sum, cm.bytes_matrix)
        assert np.array_equal(msgs_sum, cm.msg_matrix)
        for b, m in slices:
            assert np.all(b >= 0) and np.all(m >= 0)


def test_slice_traffic_is_seeded_and_deterministic():
    cm = golden_matrix("lbmhd", 16)
    a = slice_traffic(cm, 4, seed=1)
    b = slice_traffic(cm, 4, seed=1)
    c = slice_traffic(cm, 4, seed=2)
    assert all(np.array_equal(x[0], y[0]) for x, y in zip(a, b))
    assert any(not np.array_equal(x[0], y[0]) for x, y in zip(a, c))


def test_temporal_single_step_zero_cost_reduces_to_static_matching():
    """T=1, cost=0 must reproduce the static matching evaluation exactly."""
    for app, nranks in GOLDEN_CASES:
        cm = golden_matrix(app, nranks)
        config = InterconnectConfig(timesteps=1, reconfig_cost=0.0)
        temporal = evaluate_temporal(cm, config)
        static = evaluate_hybrid(cm, config, strategy="matching")
        assert temporal.n_reconfigs == 0
        assert temporal.circuit_bytes == static.circuit_bytes
        assert temporal.coverage == static.coverage
        assert temporal.hybrid_time == static.hybrid_time
        assert temporal.packet_only_time == static.packet_only_time


@pytest.mark.parametrize("app,nranks", GOLDEN_CASES)
def test_temporal_coverage_at_least_static_greedy(app, nranks):
    """Re-matching per timestep never covers less than one static greedy pass."""
    cm = golden_matrix(app, nranks)
    temporal = evaluate_temporal(cm, InterconnectConfig(timesteps=4))
    assert temporal.coverage >= temporal.static_coverage
    assert temporal.circuit_bytes + temporal.packet_bytes == cm.total_bytes
    assert len(temporal.per_step) == 4
    assert temporal.per_step[0]["changes"] == 0  # initial configuration is free


def test_reconfig_cost_discourages_switching():
    """An expensive switch-over must never increase the reconfig count."""
    cm = golden_matrix("paratec", 16)
    cheap = evaluate_temporal(cm, InterconnectConfig(timesteps=4, reconfig_cost=0.0))
    costly = evaluate_temporal(cm, InterconnectConfig(timesteps=4, reconfig_cost=10.0))
    assert costly.n_reconfigs <= cheap.n_reconfigs


def test_temporal_empty_matrix():
    ev = evaluate_temporal(reduce_matrix([], 4), InterconnectConfig(timesteps=4))
    assert ev.coverage == 0.0
    assert ev.n_reconfigs == 0
    assert ev.per_step == []
