from hfast.apps import synthesize
from hfast.interconnect import InterconnectConfig, assign_circuits, evaluate_hybrid
from hfast.matrix import reduce_matrix
from hfast.records import CommRecord


def ring_matrix(n=8):
    recs = [CommRecord(r, "MPI_Isend", 1000, (r + 1) % n) for r in range(n)]
    return reduce_matrix(recs, n)


def test_ring_fully_provisionable():
    ev = evaluate_hybrid(ring_matrix(8), InterconnectConfig(circuits_per_node=2))
    assert ev.fully_provisionable
    assert ev.coverage == 1.0
    assert ev.packet_bytes == 0
    assert ev.speedup >= 1.0


def test_budget_limits_circuits():
    # paratec all-to-all at 8 ranks: 56 links, budget 2 -> 16 circuits max
    cm = reduce_matrix(synthesize("paratec", 8).records, 8)
    circuits = assign_circuits(cm, circuits_per_node=2)
    assert len(circuits) == 16
    egress = [0] * 8
    ingress = [0] * 8
    for s, d in circuits:
        egress[s] += 1
        ingress[d] += 1
    assert max(egress) <= 2 and max(ingress) <= 2


def test_coverage_between_zero_and_one():
    cm = reduce_matrix(synthesize("lbmhd", 16).records, 16)
    ev = evaluate_hybrid(cm, InterconnectConfig(circuits_per_node=4))
    assert 0.0 < ev.coverage < 1.0
    assert ev.circuit_bytes + ev.packet_bytes == cm.total_bytes
    assert not ev.fully_provisionable


def test_hybrid_never_slower_than_packet_only():
    for app in ("cactus", "gtc", "lbmhd", "paratec"):
        cm = reduce_matrix(synthesize(app, 16).records, 16)
        ev = evaluate_hybrid(cm)
        assert ev.hybrid_time <= ev.packet_only_time
        assert ev.speedup >= 1.0


def test_empty_matrix_is_trivially_provisionable():
    ev = evaluate_hybrid(reduce_matrix([], 4))
    assert ev.fully_provisionable
    assert ev.coverage == 0.0


def test_more_circuits_more_coverage():
    cm = reduce_matrix(synthesize("paratec", 8).records, 8)
    low = evaluate_hybrid(cm, InterconnectConfig(circuits_per_node=1))
    high = evaluate_hybrid(cm, InterconnectConfig(circuits_per_node=4))
    assert high.coverage > low.coverage
