import json

from hfast.cache import ReproCache
from hfast.obs.profile import Observability
from hfast.pipeline import analyze_app, discover_scales, run_pipeline


def test_discover_scales_from_seed_cache(repo_cache_dir):
    cache = ReproCache(repo_cache_dir, readonly=True)
    scales = discover_scales(cache, ["cactus", "gtc", "lbmhd", "paratec"])
    assert scales["cactus"] == [8, 16, 27, 64, 256]
    assert scales["gtc"] == [16, 32, 64, 256]
    assert scales["paratec"] == [16]


def test_discover_scales_fallback_for_uncached_app(tmp_path):
    cache = ReproCache(tmp_path)
    scales = discover_scales(cache, ["cactus"])
    assert scales["cactus"] == [16, 64]


def test_analyze_app_emits_summary(repo_cache_dir):
    obs = Observability(enabled=True)
    cache = ReproCache(repo_cache_dir, readonly=True)
    summary = analyze_app("cactus", 16, cache, obs, store=False)
    assert summary["total_bytes"] > 0
    assert summary["topology"]["max_degree"] == 4
    assert summary["interconnect"]["fully_provisionable"] is True
    kinds = [e["event"] for e in obs.events]
    assert "app_summary" in kinds
    span_names = {e["name"] for e in obs.events if e["event"] == "span"}
    assert {"analyze_app", "cache_load", "matrix_reduce", "topology_degree", "interconnect_eval"} <= span_names
    # message-size histogram picked up the ghost-zone exchanges
    assert obs.metrics.histogram("msg_size_bytes").count > 0


def test_run_pipeline_all_seed_apps(repo_cache_dir):
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=["cactus", "gtc", "lbmhd", "paratec"],
        cache_dir=str(repo_cache_dir),
        obs=obs,
        store=False,
        argv=["test"],
    )
    results = out["results"]
    assert len(results) == 13  # one per cached (app, nranks) with default overrides
    man = out["manifest"]
    assert man["git_sha"] != ""
    assert man["cache"]["hits"] == 13
    assert man["cache"]["misses"] == 0
    # manifest emitted first and re-emitted with cache stats at the end
    assert obs.events[0]["event"] == "manifest"
    assert obs.events[0]["cache"] is None or obs.events[0]["cache"]  # start emit
    manifests = [e for e in obs.events if e["event"] == "manifest"]
    assert manifests[-1]["cache"]["hits"] == 13


def test_run_pipeline_synthesizes_and_stores_on_miss(tmp_path):
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=["gtc"],
        scales={"gtc": [4]},
        cache_dir=str(tmp_path),
        obs=obs,
        argv=["test"],
    )
    assert out["manifest"]["cache"]["misses"] == 1
    assert out["manifest"]["cache"]["stores"] == 1
    stored = list(tmp_path.glob("gtc_p4_*.json"))
    assert len(stored) == 1
    # stored file is a valid format-3 document with a timing descriptor
    doc = json.loads(stored[0].read_text())
    assert doc["format"] == 3
    assert doc["metadata"]["timing"]["model"] == "loggp"
    # second run hits the cache
    obs2 = Observability(enabled=True)
    out2 = run_pipeline(
        apps=["gtc"], scales={"gtc": [4]}, cache_dir=str(tmp_path), obs=obs2, argv=["test"]
    )
    assert out2["manifest"]["cache"]["hits"] == 1
    assert out2["results"][0]["total_bytes"] == out["results"][0]["total_bytes"]


def test_run_pipeline_disabled_obs_produces_same_results(repo_cache_dir):
    enabled = run_pipeline(
        apps=["cactus"],
        scales={"cactus": [16]},
        cache_dir=str(repo_cache_dir),
        obs=Observability(enabled=True),
        store=False,
        argv=["test"],
    )
    disabled = run_pipeline(
        apps=["cactus"],
        scales={"cactus": [16]},
        cache_dir=str(repo_cache_dir),
        obs=Observability.disabled(),
        store=False,
        argv=["test"],
    )
    assert enabled["results"] == disabled["results"]
