"""Design-space search: cross-backend byte-identity, resume, tracing.

The acceptance contract for the DSE subsystem: a fixed-seed search
produces a byte-identical frontier artifact on the serial, process-pool,
and work-stealing backends, and the journal-backed resume path replays
to the same bytes. gtc @ p8 is in the repo cache, so candidate
evaluations are warm cache hits and the differentials stay fast.
"""

from __future__ import annotations

import json

import pytest

from hfast.dse.search import (
    OBJECTIVES,
    SearchSpec,
    SearchSpecError,
    frontier_bytes,
    run_search,
)
from hfast.dse.space import SearchSpace
from hfast.obs.profile import Observability

SPACE = SearchSpace(
    circuits=(1, 4), reconfig_costs=(0.0, 1e-3), matchers=("vector",), timesteps=(1, 4)
)


def _spec(**overrides):
    kwargs = dict(app="gtc", nranks=8, space=SPACE, strategy="grid", seed=0)
    kwargs.update(overrides)
    return SearchSpec(**kwargs)


def _run(spec, cache_dir, tmp_path, **kwargs):
    kwargs.setdefault("journal_dir", str(tmp_path / "journal"))
    kwargs.setdefault("store", False)
    kwargs.setdefault("bench_dir", str(tmp_path))
    return run_search(spec, cache_dir=str(cache_dir), **kwargs)


# -- spec validation --------------------------------------------------------


def test_spec_validation_collects_errors():
    with pytest.raises(SearchSpecError) as exc:
        SearchSpec(app="nope", nranks=0, strategy="anneal")
    msgs = "\n".join(exc.value.errors)
    assert "app" in msgs and "nranks" in msgs and "strategy" in msgs


def test_spec_key_is_content_addressed():
    assert _spec().key == _spec().key
    assert _spec().key != _spec(seed=1).key
    assert _spec().key != _spec(space=SearchSpace()).key


# -- the acceptance differential -------------------------------------------


def test_grid_frontier_byte_identical_across_backends(repo_cache_dir, tmp_path):
    spec = _spec()
    serial = _run(spec, repo_cache_dir, tmp_path / "a", scheduler="static", workers=1)
    pool = _run(spec, repo_cache_dir, tmp_path / "b", scheduler="static", workers=2)
    steal = _run(spec, repo_cache_dir, tmp_path / "c", scheduler="stealing", workers=2)

    blob = frontier_bytes(serial["frontier"])
    assert frontier_bytes(pool["frontier"]) == blob
    assert frontier_bytes(steal["frontier"]) == blob

    doc = serial["frontier"]
    assert doc["kind"] == "hfast-dse-frontier"
    assert doc["search_key"] == spec.key
    assert doc["evaluated"] == SPACE.size
    assert doc["failed"] == []
    # Canonical serialization: sorted keys + trailing newline.
    assert blob == (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def test_evolution_frontier_byte_identical_and_seeded(repo_cache_dir, tmp_path):
    spec = _spec(strategy="evolution", seed=7, population=4, generations=2)
    serial = _run(spec, repo_cache_dir, tmp_path / "a", scheduler="static")
    steal = _run(spec, repo_cache_dir, tmp_path / "b", scheduler="stealing", workers=2)
    assert frontier_bytes(serial["frontier"]) == frontier_bytes(steal["frontier"])

    other = _run(
        _spec(strategy="evolution", seed=8, population=4, generations=2),
        repo_cache_dir,
        tmp_path / "c",
        scheduler="static",
    )
    assert other["frontier"]["seed"] == 8
    assert frontier_bytes(other["frontier"]) != frontier_bytes(serial["frontier"])


def test_resume_replays_to_identical_bytes(repo_cache_dir, tmp_path):
    spec = _spec()
    first = _run(spec, repo_cache_dir, tmp_path, scheduler="stealing")
    run_id = first["sched"]["run_id"]
    resumed = _run(
        spec, repo_cache_dir, tmp_path, scheduler="stealing", resume=run_id
    )
    assert resumed["sched"]["cells_from_journal"] == SPACE.size
    assert frontier_bytes(resumed["frontier"]) == frontier_bytes(first["frontier"])


def test_resume_requires_stealing(repo_cache_dir, tmp_path):
    with pytest.raises(ValueError):
        _run(_spec(), repo_cache_dir, tmp_path, scheduler="static", resume="r-123")


# -- frontier structure -----------------------------------------------------


def test_objectives_and_frontier_invariants(repo_cache_dir, tmp_path):
    out = _run(_spec(), repo_cache_dir, tmp_path, scheduler="static")
    doc = out["frontier"]
    names = [o["name"] for o in doc["objectives"]]
    assert names == [o.name for o in OBJECTIVES]
    assert doc["evaluated"] == len(doc["frontier"]) + doc["dominated"]
    for point in doc["frontier"]:
        objs = point["objectives"]
        assert 0.0 <= objs["coverage"] <= 1.0
        assert objs["packet_bytes"] >= 0
        assert objs["reconfig_s"] >= 0.0
        assert objs["eval_cost"] > 0.0
    # Wall-clock side channels stay out of the artifact entirely.
    assert "wall_s" not in json.dumps(doc)
    assert out["evaluations"]  # ... and live here instead


def test_trace_carries_candidate_spans_and_frontier_event(repo_cache_dir, tmp_path):
    obs = Observability(enabled=True, keep_events=True)
    spec = _spec()
    out = _run(spec, repo_cache_dir, tmp_path, scheduler="static", obs=obs)
    events = obs.events
    roots = [e for e in events if e.get("event") == "span" and e.get("name") == "dse_search"]
    assert len(roots) == 1
    cands = [e for e in events if e.get("event") == "span" and e.get("name") == "candidate"]
    assert len(cands) == SPACE.size
    assert all(e["parent_id"] == roots[0]["span_id"] for e in cands)
    keys = {e["attrs"]["candidate"] for e in cands}
    assert len(keys) == SPACE.size
    frontier_events = [e for e in events if e.get("event") == "dse_frontier"]
    assert len(frontier_events) == 1
    assert frontier_events[0]["search_key"] == spec.key
    assert out["manifest"]["dse"]["search_key"] == spec.key
