import numpy as np

from hfast.matrix import reduce_matrix
from hfast.records import CommRecord


def test_send_side_attribution():
    recs = [CommRecord(0, "MPI_Isend", 100, 1, count=2)]
    cm = reduce_matrix(recs, 2)
    assert cm.bytes_matrix[0, 1] == 200
    assert cm.msg_matrix[0, 1] == 2
    assert cm.bytes_matrix[1, 0] == 0


def test_recv_records_fill_missing_sends_without_double_count():
    # Both sides of the same exchange recorded: volume counted once.
    recs = [
        CommRecord(0, "MPI_Isend", 100, 1, count=2),
        CommRecord(1, "MPI_Irecv", 100, 0, count=2),
        # Recv-only exchange: still lands in the matrix as (2 -> 1).
        CommRecord(1, "MPI_Irecv", 50, 2, count=1),
    ]
    cm = reduce_matrix(recs, 3)
    assert cm.bytes_matrix[0, 1] == 200
    assert cm.bytes_matrix[2, 1] == 50
    assert cm.total_bytes == 250


def test_non_ptp_and_self_records_ignored():
    recs = [
        CommRecord(0, "MPI_Allreduce", 8, 0, count=5),
        CommRecord(0, "MPI_Wait", 0, 0, count=5),
        CommRecord(1, "MPI_Isend", 64, 1, count=5),  # self-send
    ]
    cm = reduce_matrix(recs, 2)
    assert cm.total_bytes == 0
    assert cm.total_messages == 0


def test_top_links_and_peers():
    recs = [
        CommRecord(0, "MPI_Isend", 1000, 1),
        CommRecord(0, "MPI_Isend", 10, 2),
        CommRecord(2, "MPI_Isend", 500, 0),
    ]
    cm = reduce_matrix(recs, 3)
    assert cm.top_links(2) == [(0, 1, 1000), (2, 0, 500)]
    # rank 0's heaviest partner by total (send+recv) volume is rank 1
    assert cm.top_peers(0, k=1) == [(1, 1000)]


def test_matrix_dtype_and_shape():
    cm = reduce_matrix([], 4)
    assert cm.bytes_matrix.shape == (4, 4)
    assert cm.bytes_matrix.dtype == np.int64
    assert cm.total_bytes == 0
    assert cm.top_links() == []
