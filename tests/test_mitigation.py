"""Closed-loop straggler mitigation (``--mitigate``).

Two acceptance bars from the issue:

1. **Byte identity** — a mitigated chaos run (speculative re-dispatch
   included) reproduces the clean serial artifacts byte-for-byte:
   results, trace invariants, metrics, report, cache digests.
2. **Recovery** — with a straggler injected into the first-dispatched
   cell, the mitigated run finishes measurably faster than the
   unmitigated one, because the duplicate attempt escapes the fault.
"""

import time

import pytest

from hfast.pipeline import run_pipeline
from hfast.sched import faults
from hfast.sched.faults import FAULT_ENV_VAR
from hfast.sched.mitigate import MitigationPolicy
from test_live_determinism import assert_identical, run_sweep

# At p8, cactus has the largest analytic cost, so the stealing scheduler
# dispatches it first — slowing it leaves the other three cells free to
# warm the online fit before the advisory check can fire.
SLOW_CELL = "cactus_p8"


# ---------------------------------------------------------------------------
# Policy units


class FakeDetector:
    def __init__(self, advisory=None):
        self.advisory = advisory
        self.observed = []

    def observe(self, app, nranks, wall_s, ok=True):
        self.observed.append((app, nranks, wall_s, ok))

    def check_running(self, app, nranks, elapsed_s):
        return self.advisory


def test_policy_counts_advisories():
    pol = MitigationPolicy(FakeDetector({"kind": "straggler_running", "ratio": 5.0}))
    assert pol.advise("cactus", 8, 1.0) is not None
    assert pol.advise("cactus", 8, 2.0) is not None
    assert pol.stats["advisories"] == 2


def test_policy_healthy_cells_not_counted():
    pol = MitigationPolicy(FakeDetector(None))
    assert pol.advise("cactus", 8, 1.0) is None
    assert pol.stats["advisories"] == 0


def test_policy_reweights_each_app_once():
    pol = MitigationPolicy(FakeDetector())
    assert pol.should_reweight("cactus") is True
    assert pol.should_reweight("cactus") is False
    assert pol.should_reweight("gtc") is True


def test_policy_note_done_feeds_the_fit():
    det = FakeDetector()
    MitigationPolicy(det).note_done("gtc", 8, 0.5, ok=True)
    assert det.observed == [("gtc", 8, 0.5, True)]


def test_policy_from_bench_dir_builds_real_detector():
    pol = MitigationPolicy.from_bench_dir(None, threshold=3.0)
    assert pol.detector.threshold == 3.0
    assert pol.detector.measured == {}


def test_mitigate_requires_stealing_backend(tmp_path):
    with pytest.raises(ValueError, match="stealing"):
        run_pipeline(apps=["gtc"], scales={"gtc": [8]},
                     cache_dir=str(tmp_path / "c"), argv=["test"], mitigate=True)


# ---------------------------------------------------------------------------
# End-to-end acceptance


def test_mitigated_chaos_run_is_byte_identical_to_clean_serial(tmp_path, monkeypatch):
    """Speculative re-dispatch really fires, the duplicate wins, the
    killed loser leaks nothing — and every artifact matches a clean
    serial run byte-for-byte."""
    serial = run_sweep(tmp_path / "serial")

    monkeypatch.setattr(faults, "_SLOW_SECONDS", 1.5)
    monkeypatch.setenv(FAULT_ENV_VAR, f"slow:{SLOW_CELL}:1")
    mitigated = run_sweep(
        tmp_path / "mit", scheduler="stealing", workers=2,
        retry_backoff=0.01, mitigate=True,
    )

    stats = mitigated["manifest"]["scheduler"]["mitigation"]
    assert stats["enabled"] is True
    assert stats["advisories"] >= 1
    assert stats["speculative_dispatches"] >= 1
    assert stats["speculation_wins"] >= 1
    assert mitigated["manifest"]["failed_cells"] == []
    by_key = {f"{c['app']}_p{c['nranks']}": c for c in mitigated["manifest"]["cells"]}
    assert by_key[SLOW_CELL]["attempts"] == 2  # original + speculative duplicate

    assert_identical(mitigated, serial, tmp_path / "mit", tmp_path / "serial")


def test_mitigation_recovers_straggler_wall_time(tmp_path, monkeypatch):
    """Timing-tolerant speedup check: the unmitigated run eats the full
    injected delay; the mitigated run's duplicate escapes it."""
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 2.0)
    monkeypatch.setenv(FAULT_ENV_VAR, f"slow:{SLOW_CELL}:1")

    t0 = time.monotonic()
    plain = run_sweep(tmp_path / "off", scheduler="stealing", workers=2,
                      retry_backoff=0.01)
    t_plain = time.monotonic() - t0

    t0 = time.monotonic()
    mitigated = run_sweep(tmp_path / "on", scheduler="stealing", workers=2,
                          retry_backoff=0.01, mitigate=True)
    t_mitigated = time.monotonic() - t0

    # Same answers either way; only the wall clock moves.
    assert plain["results"] == mitigated["results"]
    stats = mitigated["manifest"]["scheduler"]["mitigation"]
    assert stats["speculative_dispatches"] >= 1
    assert stats["speculation_wins"] >= 1

    assert t_plain >= 2.0  # the straggler pinned the unmitigated run
    assert t_mitigated < 0.75 * t_plain, (
        f"mitigation did not recover the straggler: {t_mitigated:.2f}s "
        f"vs {t_plain:.2f}s unmitigated"
    )


def test_unmitigated_stealing_run_reports_no_mitigation_block(tmp_path):
    out = run_sweep(tmp_path / "c", scheduler="stealing", workers=2)
    assert "mitigation" not in out["manifest"]["scheduler"]
