"""Persistent telemetry history: segments, dedupe, compaction, trends.

The load-bearing contract is determinism: a history snapshot's ``data``
(and therefore its content key) is a pure function of the analyzed work,
so identical work on any scheduler backend dedupes to one snapshot and
``hfast obs trend`` renders byte-identical output no matter who wrote
the history. Appending history must also be a pure side channel — run
artifacts are byte-identical history-on vs history-off.
"""

import json

import pytest

from hfast.obs import history as hist
from hfast.obs.history import (
    SEGMENT_PREFIX,
    WIP_PREFIX,
    HistoryStore,
    compact,
    content_key,
    histogram_quantile,
    load_bench_snapshots,
    read_history,
    render_trend,
    snapshot_from_run,
    snapshot_from_service,
    trend_rows,
)
from hfast.obs.profile import Observability
from hfast.pipeline import run_pipeline

APPS = ["cactus", "gtc"]
SCALES = {app: [8] for app in APPS}


def make_snapshot(i=0, ts=100.0, app="cactus", total_bytes=1000):
    """A minimal, well-formed run snapshot with a controllable key."""
    data = {
        "kind": "run",
        "results": [{"app": app, "nranks": 8, "total_bytes": total_bytes + i}],
        "metrics": {},
    }
    return {
        "kind": "run",
        "key": content_key(data),
        "data": data,
        "meta": {"source": "test", "timestamp": ts},
    }


# ---------------------------------------------------------------------------
# Store mechanics


def test_append_writes_wip_then_seal_renames_to_content_hash(tmp_path):
    store = HistoryStore(tmp_path)
    key = store.append(make_snapshot())
    assert len(key) == 64
    (wip,) = list(tmp_path.glob(f"{WIP_PREFIX}*.jsonl"))
    assert wip.read_text(encoding="utf-8").count("\n") == 1
    store.close()
    assert not list(tmp_path.glob(f"{WIP_PREFIX}*"))
    (seg,) = list(tmp_path.glob(f"{SEGMENT_PREFIX}*.jsonl"))
    # seg-<sha12> of its own content: sealing again is a no-op name.
    import hashlib

    assert seg.name == f"{SEGMENT_PREFIX}{hashlib.sha256(seg.read_bytes()).hexdigest()[:12]}.jsonl"


def test_crashed_wip_segment_is_still_read(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(make_snapshot(i=1))
    # No close(): the process "crashed" with the wip segment on disk.
    assert list(tmp_path.glob(f"{WIP_PREFIX}*.jsonl"))
    snaps = read_history(tmp_path)
    assert len(snaps) == 1 and snaps[0]["data"]["results"][0]["total_bytes"] == 1001


def test_empty_store_seals_nothing(tmp_path):
    with HistoryStore(tmp_path):
        pass
    assert list(tmp_path.glob("*.jsonl")) == []
    assert read_history(tmp_path) == []
    assert read_history(tmp_path / "never-created") == []


def test_append_past_segment_cap_seals_and_reopens(tmp_path):
    store = HistoryStore(tmp_path, max_segment_bytes=1)
    store.append(make_snapshot(i=1))
    store.append(make_snapshot(i=2))
    segs = list(tmp_path.glob(f"{SEGMENT_PREFIX}*.jsonl"))
    assert len(segs) == 2, "each append overflows the 1-byte cap and seals"
    store.close()
    assert len(read_history(tmp_path)) == 2


def test_reruns_dedupe_by_content_key_keeping_earliest_meta(tmp_path):
    with HistoryStore(tmp_path) as store:
        store.append(make_snapshot(ts=200.0))
    with HistoryStore(tmp_path) as store:
        store.append(make_snapshot(ts=100.0))  # same data, earlier observation
        store.append(make_snapshot(i=7, ts=50.0))  # different data
    snaps = read_history(tmp_path)
    assert len(snaps) == 2
    by_ts = {s["meta"]["timestamp"] for s in snaps}
    assert by_ts == {100.0, 50.0}, "the earliest occurrence of a key wins"
    assert [s["key"] for s in snaps] == sorted(s["key"] for s in snaps)


def test_read_history_tolerates_torn_lines_unless_strict(tmp_path):
    with HistoryStore(tmp_path) as store:
        store.append(make_snapshot())
    (seg,) = list(tmp_path.glob("*.jsonl"))
    with open(seg, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "run", "data": {"tor')
    assert len(read_history(tmp_path)) == 1
    with pytest.raises(ValueError, match="malformed"):
        read_history(tmp_path, strict=True)


def test_kinds_filter(tmp_path):
    with HistoryStore(tmp_path) as store:
        store.append(make_snapshot())
        store.append(snapshot_from_service({"serve.jobs_admitted": {"type": "counter", "value": 2}}))
    assert len(read_history(tmp_path)) == 2
    assert [s["kind"] for s in read_history(tmp_path, kinds=("run",))] == ["run"]
    assert [s["kind"] for s in read_history(tmp_path, kinds=("service",))] == ["service"]


def test_compact_merges_retains_newest_and_is_idempotent(tmp_path):
    for i in range(4):
        with HistoryStore(tmp_path) as store:
            store.append(make_snapshot(i=i, ts=float(i)))
    assert len(list(tmp_path.glob("*.jsonl"))) == 4
    stats = compact(tmp_path, retain=2)
    assert stats == {"segments_before": 4, "segments_after": 1, "snapshots": 2, "dropped": 2}
    snaps = read_history(tmp_path)
    assert {s["meta"]["timestamp"] for s in snaps} == {2.0, 3.0}, "newest-by-timestamp retained"
    # Idempotent: compacting a compacted dir changes nothing.
    seg_names = sorted(p.name for p in tmp_path.glob("*.jsonl"))
    stats2 = compact(tmp_path, retain=2)
    assert stats2["dropped"] == 0
    assert sorted(p.name for p in tmp_path.glob("*.jsonl")) == seg_names
    assert read_history(tmp_path) == snaps


def test_content_key_is_order_insensitive_and_value_sensitive():
    assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
    assert content_key({"a": 1}) != content_key({"a": 2})


# ---------------------------------------------------------------------------
# Snapshot builders


def test_snapshot_from_run_splits_deterministic_data_from_volatile_meta():
    manifest = {
        "timestamp": 123.0,
        "git_sha": "abc",
        "host": "h",
        "workers": 2,
        "scheduler": {"backend": "stealing", "run_id": "r-1"},
        "cells": [
            {"app": "cactus", "nranks": 8, "ok": True, "wall_s": 0.5},
            {"app": "gtc", "nranks": 8, "ok": False, "wall_s": 0.1},
        ],
    }
    results = [{"app": "cactus", "nranks": 8, "total_bytes": 10, "wall_s": 99.0}]
    anomalies = [{"kind": "straggler", "cell": "cactus_p8"}]
    slo = [{"slo": "cell-wall", "breached": True, "burn": 3.0, "windows": []}]
    snap = snapshot_from_run(manifest, results, anomalies=anomalies, slo_statuses=slo)

    assert snap["key"] == content_key(snap["data"])
    # Wall time is volatile: it must not leak into the keyed data.
    assert "wall_s" not in snap["data"]["results"][0]
    meta = snap["meta"]
    assert meta["scheduler"] == "stealing" and meta["run_id"] == "r-1"
    assert meta["cells_total"] == 2 and meta["cells_failed"] == 1
    assert meta["cell_walls"]["cactus_p8"] == 0.5
    assert meta["stragglers"] == ["cactus_p8"] and meta["slo_violations"] == 1

    # The same work under a different scheduler/time yields the same key.
    manifest2 = dict(manifest, timestamp=999.0, scheduler={"backend": "static", "run_id": "r-2"})
    assert snapshot_from_run(manifest2, results)["key"] == snap["key"]


def test_service_snapshots_dedupe_when_counters_are_unchanged():
    a = snapshot_from_service({"serve.jobs": {"value": 3}}, timestamp=1.0)
    b = snapshot_from_service({"serve.jobs": {"value": 3}}, timestamp=2.0)
    c = snapshot_from_service({"serve.jobs": {"value": 4}}, timestamp=3.0)
    assert a["key"] == b["key"] != c["key"]


# ---------------------------------------------------------------------------
# BENCH trajectory ingestion


def test_load_bench_snapshots_reads_dir_and_skips_unusable(tmp_path):
    (tmp_path / "BENCH_good.json").write_text(json.dumps({
        "timestamp": "2026-01-02T03:04:05",
        "git_sha": "abc123",
        "workers": 4,
        "record": {"label": "ci-test", "backend": "stealing"},
        "runs": [{"app": "gtc", "nranks": 64, "total_bytes": 42}],
    }))
    (tmp_path / "BENCH_empty_runs.json").write_text(json.dumps({"runs": []}))
    (tmp_path / "BENCH_torn.json").write_text('{"runs": [')
    (tmp_path / "not_a_bench.json").write_text("{}")

    (snap,) = load_bench_snapshots(tmp_path)
    assert snap["kind"] == "bench"
    assert snap["data"]["results"][0]["app"] == "gtc"
    assert snap["meta"]["backend"] == "stealing"
    assert isinstance(snap["meta"]["timestamp"], float)
    # Single-file form loads the same snapshot.
    (same,) = load_bench_snapshots(tmp_path / "BENCH_good.json")
    assert same["key"] == snap["key"]


def test_committed_benchmarks_dir_ingests():
    snaps = load_bench_snapshots("benchmarks")
    assert snaps, "the committed benchmarks/ trajectory must be ingestible"
    rows = trend_rows(snaps)
    assert rows and all(r["observations"] >= 1 for r in rows)


# ---------------------------------------------------------------------------
# Quantiles and trend math


def test_histogram_quantile_reads_log2_buckets():
    h = {"type": "histogram", "count": 10, "buckets": {"64": 5, "256": 4, "1024": 1}}
    assert histogram_quantile(h, 0.5) == 64.0
    assert histogram_quantile(h, 0.9) == 256.0
    assert histogram_quantile(h, 0.99) == 1024.0
    assert histogram_quantile(h, 0.0) == 64.0  # clamped to the first observation
    assert histogram_quantile({"count": 0, "buckets": {}}, 0.5) is None


def test_trend_rows_ranges_and_filters():
    snaps = [make_snapshot(i=0), make_snapshot(i=5), make_snapshot(i=5, app="gtc")]
    rows = trend_rows(snaps)
    assert [(r["app"], r["nranks"]) for r in rows] == [("cactus", 8), ("gtc", 8)]
    cactus = rows[0]
    assert cactus["observations"] == 2
    assert cactus["total_bytes"] == {"min": 1000, "max": 1005, "values": 2}
    assert cactus["coverage"] is None  # column absent from every row
    assert trend_rows(snaps, app="gtc")[0]["app"] == "gtc"
    assert trend_rows(snaps, nranks=16) == []


def test_render_trend_collapses_stable_ranges():
    out = render_trend(trend_rows([make_snapshot(i=0), make_snapshot(i=5)]))
    lines = out.splitlines()
    assert lines[0].split()[:4] == ["app", "nranks", "n", "bytes"]
    assert "1000..1005" in out
    assert render_trend([]) .startswith("app")


# ---------------------------------------------------------------------------
# End-to-end determinism contracts (the acceptance criteria)


def run_once(cache_dir, history_dir=None, **kw):
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=APPS,
        scales=SCALES,
        cache_dir=str(cache_dir),
        obs=obs,
        store=True,
        argv=["test"],
        bench_dir=None,
        history_dir=str(history_dir) if history_dir else None,
        **kw,
    )
    return out, obs


def test_history_is_a_pure_side_channel(tmp_path):
    """analyze artifacts are byte-identical history-on vs history-off."""
    cache = tmp_path / "cache"
    run_once(cache)  # warm the cache so both compared runs are pure hits
    outs = {}
    for name in ("off", "on"):
        out, obs = run_once(cache, history_dir=(tmp_path / "hist") if name == "on" else None)
        events = [e for e in obs.events if e["event"] != "manifest"]
        # Strip volatile walltime fields; structure and values must match.
        outs[name] = (
            json.dumps(out["results"], sort_keys=True),
            [(e["event"], e.get("name")) for e in events],
        )
    assert outs["on"] == outs["off"]
    assert read_history(tmp_path / "hist"), "the on-run must still have recorded history"


def test_backends_dedupe_to_one_snapshot_and_trend_is_byte_identical(tmp_path):
    """Serial, pool, and stealing runs of the same work: one history key."""
    cache = tmp_path / "cache"
    hist_dir = tmp_path / "hist"
    for kw in ({}, {"workers": 2}, {"scheduler": "stealing", "workers": 2}):
        run_once(cache, history_dir=hist_dir, **kw)
    snaps = read_history(hist_dir, kinds=("run",))
    assert len(snaps) == 1, [s["meta"]["scheduler"] for s in read_history(hist_dir)]
    schedulers = {s["meta"]["scheduler"] for s in read_history(hist_dir)}
    assert schedulers <= {None, "static", "pool", "stealing"}

    # Trend output is a pure function of content: byte-identical however
    # many times it renders, and stable under compaction.
    first = render_trend(trend_rows(snaps))
    assert render_trend(trend_rows(read_history(hist_dir, kinds=("run",)))) == first
    compact(hist_dir)
    assert render_trend(trend_rows(read_history(hist_dir, kinds=("run",)))) == first
    for app in APPS:
        assert f"\n{app}" in "\n" + first


def test_deterministic_metric_prefixes_exclude_cache_dependent_families():
    # stage.* counts depend on cache hits vs misses; they must never be
    # part of the content-addressed snapshot data.
    assert not any(p.startswith("stage") for p in hist.DETERMINISTIC_METRIC_PREFIXES)
    filtered = hist.deterministic_metrics({
        "calls.MPI_Isend": {"type": "counter", "value": 5},
        "stage.cache_load.calls": {"type": "counter", "value": 1},
        "serve.jobs_admitted": {"type": "counter", "value": 2},
        "msg_size_bytes": {"type": "histogram", "count": 3},
    })
    assert sorted(filtered) == ["calls.MPI_Isend", "msg_size_bytes"]
