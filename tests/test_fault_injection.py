"""Determinism under failure: the work-stealing scheduler's contract.

The acceptance bar for the fault-tolerant backend: a stealing run with an
injected worker crash — and a subsequent ``--resume`` of an aborted run —
must produce results, cache artifacts, and reports byte-identical to a
serial static run (modulo wall-clock timing fields and the scheduler's
own bookkeeping). Faults are injected through ``HFAST_FAULT_INJECT``,
which forked workers inherit.
"""

import hashlib

import pytest

from hfast import cli
from hfast.obs.profile import Observability
from hfast.obs.report import build_report
from hfast.pipeline import run_pipeline
from hfast.sched.faults import FAULT_ENV_VAR
from hfast.sched.journal import JournalError
from test_parallel_determinism import normalize

APPS = ["cactus", "gtc", "lbmhd", "paratec"]
SCALES = {app: [8] for app in APPS}

# Keys that only the stealing backend produces; everything else in a run's
# output must match a serial static run byte-for-byte.
SCHED_FIELDS = {"scheduler", "attempts", "worker", "from_journal"}


def run_sweep(cache_dir, scheduler="static", workers=1, **kwargs):
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=APPS,
        scales=SCALES,
        cache_dir=str(cache_dir),
        obs=obs,
        argv=["test"],
        workers=workers,
        scheduler=scheduler,
        bench_dir=None,
        **kwargs,
    )
    out["report"] = build_report(obs.events)
    return out


def cache_digests(cache_dir):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(cache_dir.glob("*.json"))
    }


def scrub(node):
    """normalize() plus removal of scheduler-only bookkeeping fields."""
    if isinstance(node, dict):
        return {k: scrub(v) for k, v in node.items() if k not in SCHED_FIELDS}
    if isinstance(node, list):
        return [scrub(v) for v in node]
    return node


def comparable(out):
    return scrub(normalize(out["report"], strip_paths=True))


def test_stealing_matches_serial_without_faults(tmp_path):
    serial = run_sweep(tmp_path / "serial")
    stealing = run_sweep(tmp_path / "steal", scheduler="stealing", workers=4)

    assert stealing["results"] == serial["results"]
    assert cache_digests(tmp_path / "steal") == cache_digests(tmp_path / "serial")
    assert comparable(stealing) == comparable(serial)

    sched = stealing["manifest"]["scheduler"]
    assert sched["backend"] == "stealing" and sched["run_id"]
    assert sched["tasks_dispatched"] == 4 and sched["workers_lost"] == 0
    assert all(c["attempts"] == 1 for c in stealing["manifest"]["cells"])
    # Journal lives beside the cache by default.
    assert (tmp_path / "steal" / ".sched_journal" / f"{sched['run_id']}.jsonl").is_file()


def test_crashed_worker_cell_is_redispatched_byte_identical(tmp_path, monkeypatch):
    """The headline criterion: SIGKILL mid-cell, output still byte-identical."""
    serial = run_sweep(tmp_path / "serial")
    monkeypatch.setenv(FAULT_ENV_VAR, "crash:gtc_p8:1")
    crashed = run_sweep(tmp_path / "crash", scheduler="stealing", workers=4)

    assert crashed["results"] == serial["results"]
    assert cache_digests(tmp_path / "crash") == cache_digests(tmp_path / "serial")
    assert comparable(crashed) == comparable(serial)

    sched = crashed["manifest"]["scheduler"]
    assert sched["workers_lost"] >= 1 and sched["redispatches"] >= 1
    assert crashed["manifest"]["failed_cells"] == []
    by_key = {f"{c['app']}_p{c['nranks']}": c for c in crashed["manifest"]["cells"]}
    assert by_key["gtc_p8"]["attempts"] == 2 and by_key["gtc_p8"]["ok"]


def test_hung_worker_trips_heartbeat_and_recovers(tmp_path, monkeypatch):
    serial = run_sweep(tmp_path / "serial")
    monkeypatch.setenv(FAULT_ENV_VAR, "hang:gtc_p8:1")
    hung = run_sweep(
        tmp_path / "hang", scheduler="stealing", workers=2, heartbeat_timeout=1.0
    )

    assert hung["results"] == serial["results"]
    assert hung["manifest"]["failed_cells"] == []
    sched = hung["manifest"]["scheduler"]
    assert sched["workers_lost"] >= 1 and sched["redispatches"] >= 1


def test_flaky_cell_retries_to_success(tmp_path, monkeypatch):
    serial = run_sweep(tmp_path / "serial")
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:1")
    flaky = run_sweep(
        tmp_path / "flaky", scheduler="stealing", workers=2, retry_backoff=0.01
    )

    assert flaky["results"] == serial["results"]
    assert flaky["manifest"]["failed_cells"] == []
    assert flaky["manifest"]["scheduler"]["retries"] == 1
    by_key = {f"{c['app']}_p{c['nranks']}": c for c in flaky["manifest"]["cells"]}
    assert by_key["gtc_p8"]["attempts"] == 2


def test_exhausted_retries_mark_cell_failed(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:99")
    out = run_sweep(
        tmp_path / "c", scheduler="stealing", workers=2, max_retries=1, retry_backoff=0.01
    )
    assert out["manifest"]["failed_cells"] == ["gtc_p8"]
    assert len(out["results"]) == 3  # the other cells still completed
    by_key = {f"{c['app']}_p{c['nranks']}": c for c in out["manifest"]["cells"]}
    assert by_key["gtc_p8"]["attempts"] == 2 and not by_key["gtc_p8"]["ok"]


def test_resume_aborted_run_byte_identical(tmp_path, monkeypatch):
    """A run that failed a cell resumes from its journal; the resumed run's
    merged output is byte-identical to an uninterrupted serial run."""
    serial = run_sweep(tmp_path / "serial")

    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:paratec_p8:99")
    aborted = run_sweep(
        tmp_path / "r", scheduler="stealing", workers=2, max_retries=0, retry_backoff=0.01
    )
    assert aborted["manifest"]["failed_cells"] == ["paratec_p8"]
    run_id = aborted["manifest"]["scheduler"]["run_id"]

    monkeypatch.delenv(FAULT_ENV_VAR)
    resumed = run_sweep(tmp_path / "r", scheduler="stealing", workers=2, resume=run_id)

    assert resumed["results"] == serial["results"]
    assert cache_digests(tmp_path / "r") == cache_digests(tmp_path / "serial")
    assert comparable(resumed) == comparable(serial)

    sched = resumed["manifest"]["scheduler"]
    assert sched["resumed"] and sched["run_id"] == run_id
    assert sched["cells_from_journal"] == 3  # only paratec_p8 re-ran
    assert sched["tasks_dispatched"] == 1
    assert resumed["manifest"]["failed_cells"] == []
    # Cache statistics replay too: the resumed run still accounts for the
    # journaled cells' stores, identically to the serial run.
    assert resumed["manifest"]["cache"]["stores"] == serial["manifest"]["cache"]["stores"]


def test_resume_unknown_run_is_an_error(tmp_path):
    with pytest.raises(JournalError, match="no journal"):
        run_sweep(tmp_path / "c", scheduler="stealing", workers=2, resume="nope")


def test_resume_refuses_different_sweep(tmp_path):
    out = run_sweep(tmp_path / "c", scheduler="stealing", workers=2)
    run_id = out["manifest"]["scheduler"]["run_id"]
    obs = Observability(enabled=True)
    with pytest.raises(JournalError, match="scales"):
        run_pipeline(
            apps=APPS,
            scales={app: [16] for app in APPS},
            cache_dir=str(tmp_path / "c"),
            obs=obs,
            argv=["test"],
            workers=2,
            scheduler="stealing",
            resume=run_id,
            bench_dir=None,
        )


# ---------------------------------------------------------------------------
# CLI-level semantics


def _cli_analyze(tmp_path, *extra):
    return cli.main(
        [
            "analyze",
            "--apps", "gtc,cactus",
            "--scales", "8",
            "--cache-dir", str(tmp_path / "cache"),
            "--scheduler", "stealing",
            "--workers", "2",
            *extra,
        ]
    )


def test_cli_stealing_prints_run_summary(tmp_path, capsys):
    assert _cli_analyze(tmp_path) == 0
    out = capsys.readouterr().out
    assert "scheduler: stealing run " in out
    assert "resume with --resume" in out


def test_cli_strict_passes_when_retry_succeeds(tmp_path, capsys, monkeypatch):
    """--strict composes with retries: a retried success is not a failure."""
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:1")
    assert _cli_analyze(tmp_path, "--strict") == 0
    err = capsys.readouterr().err
    assert "succeeded after 2 attempts" in err
    assert "error:" not in err


def test_cli_strict_fails_on_exhausted_retries(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:99")
    assert _cli_analyze(tmp_path, "--strict", "--max-retries", "1") == 1
    err = capsys.readouterr().err
    assert "cell gtc_p8 failed" in err


def test_cli_exhausted_retries_not_strict_is_partial_success(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:99")
    assert _cli_analyze(tmp_path, "--max-retries", "0") == 0


def test_cli_resume_unknown_run_errors_cleanly(tmp_path, capsys):
    rc = _cli_analyze(tmp_path, "--resume", "20990101-000000-abcdef")
    assert rc == 1
    assert "cannot resume" in capsys.readouterr().err


def test_cli_resume_completes_aborted_run(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:99")
    assert _cli_analyze(tmp_path, "--max-retries", "0") == 0
    out = capsys.readouterr().out
    run_id = out.split("scheduler: stealing run ")[1].split()[0]

    monkeypatch.delenv(FAULT_ENV_VAR)
    assert _cli_analyze(tmp_path, "--resume", run_id) == 0
    out = capsys.readouterr().out
    assert f"scheduler: stealing run {run_id}" in out
    assert "replayed=1" in out
