"""Live telemetry streaming and cross-worker trace propagation.

Covers the event bus / worker-channel plumbing in ``hfast.obs.stream``,
the scheduler's live event emission (``on_event``) plus prior-attempt
retention, and the tentpole structural contract: the merged JSONL trace
is ONE tree — every span and app_summary event's parent chain resolves
to the single run-root ``pipeline`` span, across serial, process-pool,
and work-stealing backends, retries included.
"""

import queue
import time

import pytest

from hfast.obs import stream
from hfast.obs.profile import Observability
from hfast.obs.stream import EventBus, QueueDrain, StreamForwardSink
from hfast.pipeline import Cell, run_pipeline
from hfast.sched.faults import FAULT_ENV_VAR
from hfast.sched.scheduler import SchedulerConfig, run_stealing

APPS = ["cactus", "gtc", "lbmhd", "paratec"]
SCALES = {app: [8] for app in APPS}
CELL_ORDER = ["cactus_p8", "gtc_p8", "lbmhd_p8", "paratec_p8"]


@pytest.fixture(autouse=True)
def _clean_channel():
    """Worker-channel state is process-local; never leak between tests."""
    stream.clear_worker_channel()
    yield
    stream.clear_worker_channel()


# ---------------------------------------------------------------------------
# EventBus


def test_bus_fans_out_to_all_subscribers():
    bus = EventBus()
    a, b = [], []
    bus.subscribe(a.append)
    bus.subscribe(b.append)
    bus.publish({"event": "x"})
    assert a == b == [{"event": "x"}]
    assert bus.published == 1 and bus.dropped == 0


def test_bus_swallows_and_counts_subscriber_failures():
    bus = EventBus()
    good = []

    def bad(_event):
        raise RuntimeError("broken consumer")

    bus.subscribe(bad)
    bus.subscribe(good.append)
    bus.publish({"event": "x"})
    bus.publish({"event": "y"})
    assert [e["event"] for e in good] == ["x", "y"]
    assert bus.dropped == 2


def test_bus_unsubscribe_and_duplicate_subscribe():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.subscribe(seen.append)  # idempotent
    bus.publish({"event": "x"})
    bus.unsubscribe(seen.append)
    bus.publish({"event": "y"})
    assert [e["event"] for e in seen] == ["x"]


# ---------------------------------------------------------------------------
# Worker channel + forward sink


def test_forward_sink_stamps_context_without_mutating_original():
    sent = []
    sink = StreamForwardSink(sent.append, {"run_id": "r1", "cell": "gtc_p8", "worker": 3})
    original = {"event": "span", "name": "x"}
    sink.emit(original)
    assert sent == [{"event": "span", "name": "x", "run_id": "r1", "cell": "gtc_p8", "worker": 3}]
    assert original == {"event": "span", "name": "x"}  # annotated copies only


def test_forward_sink_drops_none_context_and_never_raises():
    sink = StreamForwardSink(lambda ev: (_ for _ in ()).throw(OSError("torn pipe")),
                             {"run_id": None, "cell": "c", "worker": None})
    assert sink.context == {"cell": "c"}
    sink.emit({"event": "span"})  # must not raise
    sink.flush()
    sink.close()


def test_forward_sink_for_requires_live_payload_and_channel():
    payload = {"live": True, "ctx": {"run_id": "r", "cell": "gtc_p8"}, "attempt": 2}
    assert stream.forward_sink_for(payload) is None  # no channel registered
    sent = []
    stream.set_worker_channel(sent.append, worker_id=7)
    assert stream.forward_sink_for({"live": False}) is None  # live off
    sink = stream.forward_sink_for(payload)
    sink.emit({"event": "cell_start"})
    assert sent == [
        {"event": "cell_start", "run_id": "r", "cell": "gtc_p8", "worker": 7, "attempt": 2}
    ]
    stream.clear_worker_channel()
    assert stream.worker_channel() is None and stream.worker_id() is None


def test_queue_drain_pumps_and_drains_stragglers():
    q = queue.Queue()
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    drain = QueueDrain(q, bus, poll_interval=0.01).start()
    q.put({"event": "a"})
    q.put({"event": "b"})
    for _ in range(200):
        if len(seen) == 2:
            break
        time.sleep(0.01)
    q.put({"event": "late"})  # enqueued around shutdown: must not be lost
    drain.stop()
    assert [e["event"] for e in seen] == ["a", "b", "late"]


# ---------------------------------------------------------------------------
# Scheduler: on_event stream + prior-attempt retention (toy executor)


def _toy_execute(task):
    ok = not (task["app"] == "gtc" and task["attempt"] == 1)
    return {
        "app": task["app"],
        "nranks": task["nranks"],
        "index": task["index"],
        "ok": ok,
        "error": None if ok else "boom",
        "summary": {"cell": task["index"]} if ok else None,
        "wall_s": 0.0,
        "events": [
            {"event": "span", "name": "work", "span_id": 1, "parent_id": None,
             "depth": 0, "wall_s": 0.0, "peak_rss_kb": 0, "attrs": {}}
        ],
        "metrics": {},
        "cache": {},
    }


def _cells():
    return [Cell(app=a, nranks=8, index=i) for i, a in enumerate(APPS)]


def _payload(cell, attempt):
    return {"app": cell.app, "nranks": cell.nranks, "index": cell.index}


def test_run_stealing_emits_live_events_and_keeps_prior_attempts():
    events = []
    cfg = SchedulerConfig(workers=2, max_retries=2, retry_backoff=0.01, poll_interval=0.01)
    results, stats = run_stealing(_cells(), _payload, _toy_execute, cfg, on_event=events.append)

    gtc = results[1]
    assert gtc["ok"] and gtc["attempts"] == 2
    # The failed first attempt's events survive for the trace graft.
    (prior,) = gtc["prior_attempts"]
    assert prior["attempt"] == 1 and prior["error"] == "boom"
    assert [e["name"] for e in prior["events"]] == ["work"]
    # Clean cells carry no prior-attempt baggage.
    assert results[0].get("prior_attempts") in (None, [])

    states = [(e["cell"], e["state"]) for e in events if e.get("event") == "cell_state"]
    assert ("gtc_p8", "retry") in states
    assert ("gtc_p8", "done") in states
    for key in ("cactus_p8", "lbmhd_p8", "paratec_p8"):
        assert (key, "running") in states and (key, "done") in states
    # Stolen tasks are marked on their running transition.
    stolen = [e for e in events if e.get("event") == "cell_state"
              and e["state"] == "running" and e.get("stolen")]
    assert len(stolen) == stats["steals"]


def test_run_stealing_without_on_event_is_silent():
    cfg = SchedulerConfig(workers=2, poll_interval=0.01)
    results, _ = run_stealing(_cells(), _payload, _toy_execute, cfg)
    assert len(results) == 4  # no bus, no crash: live path fully optional


# ---------------------------------------------------------------------------
# Pipeline live streaming (serial + pool backends)


def run_live(cache_dir, workers=1, scheduler="static", **kwargs):
    bus = EventBus()
    received = []
    bus.subscribe(received.append)
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=APPS, scales=SCALES, cache_dir=str(cache_dir), obs=obs,
        argv=["test"], workers=workers, scheduler=scheduler, bench_dir=None,
        bus=bus, **kwargs,
    )
    return out, obs, received


def test_serial_live_stream_carries_trace_context(tmp_path):
    out, obs, received = run_live(tmp_path / "c")

    kinds = [e["event"] for e in received]
    assert kinds[0] == "run_start" and kinds[-1] == "run_end"
    run_id = received[0]["run_id"]
    assert run_id
    assert [c["cell"] for c in received[0]["cells"]] == CELL_ORDER

    starts = [e for e in received if e["event"] == "cell_start"]
    assert [s["cell"] for s in starts] == CELL_ORDER
    assert all(s["run_id"] == run_id and s["worker"] == 0 for s in starts)

    # Worker span/app_summary events stream live, stamped with context.
    live_spans = [e for e in received if e["event"] == "span"]
    assert live_spans
    assert all(e["run_id"] == run_id and e["cell"] in CELL_ORDER for e in live_spans)
    assert sum(1 for e in received if e["event"] == "app_summary") == 4

    done = [e for e in received if e["event"] == "cell_state" and e["state"] == "done"]
    assert [e["cell"] for e in done] == CELL_ORDER
    assert received[-1]["failed_cells"] == []

    # Side-channel contract: nothing context-stamped leaks into the buffer.
    assert all("run_id" not in e and "cell" not in e for e in obs.events)
    assert "run_id" not in out["manifest"].get("scheduler", {})


def test_pool_live_stream_forwards_from_worker_processes(tmp_path):
    out, _obs, received = run_live(tmp_path / "c", workers=4)

    starts = [e for e in received if e["event"] == "cell_start"]
    assert sorted(s["cell"] for s in starts) == sorted(CELL_ORDER)
    # Pool workers identify themselves by pid.
    assert all(str(s["worker"]).startswith("pid") for s in starts)
    done = [e for e in received if e["event"] == "cell_state" and e["state"] == "done"]
    assert len(done) == 4
    assert sum(1 for e in received if e["event"] == "app_summary") == 4
    assert out["manifest"]["failed_cells"] == []


def test_stealing_live_stream_reports_cell_states(tmp_path):
    out, _obs, received = run_live(tmp_path / "c", workers=2, scheduler="stealing")

    run_id = out["manifest"]["scheduler"]["run_id"]
    assert received[0]["event"] == "run_start" and received[0]["run_id"] == run_id
    states = [(e["cell"], e["state"]) for e in received if e["event"] == "cell_state"]
    for key in CELL_ORDER:
        assert (key, "running") in states and (key, "done") in states
    starts = [e for e in received if e["event"] == "cell_start"]
    assert sorted(s["cell"] for s in starts) == sorted(CELL_ORDER)
    assert all(s["run_id"] == run_id for s in starts)


# ---------------------------------------------------------------------------
# Unified span tree (the tentpole structural contract)


def assert_single_tree(events):
    """Every span/app_summary parent chain must resolve to one run root."""
    spans = {}
    for e in events:
        if e["event"] == "span":
            assert e["span_id"] not in spans, "duplicate span id after merge"
            spans[e["span_id"]] = e
    roots = [e for e in spans.values() if e["parent_id"] is None]
    assert len(roots) == 1 and roots[0]["name"] == "pipeline"
    root_id = roots[0]["span_id"]

    def resolve(pid):
        seen = set()
        while pid != root_id:
            assert pid in spans, f"dangling parent_id {pid}"
            assert pid not in seen, "parent cycle"
            seen.add(pid)
            pid = spans[pid]["parent_id"]

    for e in spans.values():
        if e["span_id"] == root_id:
            continue
        resolve(e["parent_id"])
        assert e["depth"] == spans[e["parent_id"]]["depth"] + 1
    for e in events:
        if e["event"] == "app_summary":
            resolve(e["parent_id"])
    return root_id, spans


@pytest.mark.parametrize(
    "workers,scheduler", [(1, "static"), (4, "static"), (4, "stealing")]
)
def test_merged_trace_is_one_tree_across_backends(tmp_path, workers, scheduler):
    obs = Observability(enabled=True)
    run_pipeline(
        apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "c"), obs=obs,
        argv=["test"], workers=workers, scheduler=scheduler, bench_dir=None,
    )
    root_id, spans = assert_single_tree(obs.events)

    cells = [e for e in spans.values() if e["name"] == "cell"]
    assert len(cells) == 4
    assert all(c["parent_id"] == root_id and c["depth"] == 1 for c in cells)
    assert [c["attrs"]["app"] for c in cells] == APPS  # merged in cell order
    for c in cells:
        kids = [e for e in spans.values() if e["parent_id"] == c["span_id"]]
        assert [k["name"] for k in kids] == ["analyze_app"]
        assert kids[0]["attrs"]["attempt"] == 1


def test_flaky_retry_attempts_are_siblings_not_duplicate_roots(tmp_path, monkeypatch):
    """Regression test: a retried cell must not fork a second trace root."""
    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:1")
    obs = Observability(enabled=True)
    run_pipeline(
        apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "c"), obs=obs,
        argv=["test"], workers=2, scheduler="stealing", retry_backoff=0.01,
        bench_dir=None,
    )
    root_id, spans = assert_single_tree(obs.events)

    gtc = [e for e in spans.values() if e["name"] == "cell" and e["attrs"]["app"] == "gtc"]
    assert len(gtc) == 1 and gtc[0]["attrs"]["attempts"] == 2 and gtc[0]["attrs"]["ok"]
    # The flaky fault killed attempt 1 before any span was emitted, so the
    # surviving subtree is the successful attempt, parented under the cell.
    kids = [e for e in spans.values() if e["parent_id"] == gtc[0]["span_id"]]
    assert [k["name"] for k in kids] == ["analyze_app"]
    assert kids[0]["attrs"]["attempt"] == 2


def test_failed_attempts_with_events_graft_as_attempt_tagged_siblings(tmp_path):
    """A genuine in-cell failure emits spans on every attempt; all of them
    must land under the one cell span, tagged with their attempt number."""
    cache_dir = tmp_path / "c"
    run_pipeline(apps=["gtc"], scales={"gtc": [8]}, cache_dir=str(cache_dir),
                 obs=Observability.disabled(), argv=["warm"], bench_dir=None)
    for path in cache_dir.glob("gtc_p8_*.json"):
        path.write_text('{"format": 2, "metadata": {}}')  # fails validation

    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=["gtc"], scales={"gtc": [8]}, cache_dir=str(cache_dir), obs=obs,
        argv=["test"], workers=2, scheduler="stealing", max_retries=1,
        retry_backoff=0.01, store=False, bench_dir=None,
    )
    assert out["manifest"]["failed_cells"] == ["gtc_p8"]
    root_id, spans = assert_single_tree(obs.events)

    (cell,) = [e for e in spans.values() if e["name"] == "cell"]
    assert cell["attrs"]["attempts"] == 2 and not cell["attrs"]["ok"]
    kids = sorted(
        (e for e in spans.values() if e["parent_id"] == cell["span_id"]),
        key=lambda e: e["attrs"]["attempt"],
    )
    assert [k["name"] for k in kids] == ["analyze_app", "analyze_app"]
    assert [k["attrs"]["attempt"] for k in kids] == [1, 2]
    assert all("CacheValidationError" in k["error"] for k in kids)
