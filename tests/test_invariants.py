"""Property-based invariant tests for the trace synthesizers.

Seeded stdlib ``random`` drives (nranks, overrides) sampling — no new
dependencies — and every sampled case must uphold the structural
invariants the paper's analysis relies on:

- vector and scalar backends serialize to byte-identical cache documents
  (timing fields included);
- every byte sent is received (send/recv matrix agreement);
- symmetric apps (cactus, lbmhd, paratec) produce symmetric matrices;
- topology degree never exceeds nranks - 1;
- top-k traffic concentration is monotone in k and reaches 1.0;
- synthesized LogGP times are strictly positive and monotone
  nondecreasing in message size at a fixed (rank, peer, call).
"""

import json
import random

import numpy as np
import pytest

from hfast.apps import available_apps, synthesize
from hfast.matrix import reduce_matrix
from hfast.topology import analyze_topology

SYMMETRIC_APPS = ("cactus", "lbmhd", "paratec")  # gtc shifts particles one way

OVERRIDE_KNOBS = {
    "cactus": ("steps", "ghost_bytes"),
    "gtc": ("steps", "particle_bytes"),
    "lbmhd": ("steps", "lattice_bytes"),
    "paratec": ("fft_cycles", "grid_bytes"),
}


def sample_cases(app: str, n_cases: int = 8) -> list[tuple[int, dict]]:
    rng = random.Random(f"hfast-{app}")
    cases = []
    for _ in range(n_cases):
        nranks = rng.choice([1, 2, 3, 4, 5, 8, 12, 16, 24, 27, 32, 48, 64])
        overrides = {}
        steps_key, bytes_key = OVERRIDE_KNOBS[app]
        if rng.random() < 0.6:
            overrides[steps_key] = rng.randint(1, 20)
        if rng.random() < 0.4:
            overrides[bytes_key] = rng.choice([64, 4096, 65536, 300000])
        cases.append((nranks, overrides))
    return cases


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_vector_scalar_documents_identical(app):
    for nranks, overrides in sample_cases(app):
        vec = synthesize(app, nranks, dict(overrides), backend="vector")
        sca = synthesize(app, nranks, dict(overrides), backend="scalar")
        assert json.dumps(vec.to_document()) == json.dumps(sca.to_document()), (
            f"backend divergence for {app} p{nranks} {overrides}"
        )


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_byte_and_message_conservation(app):
    """Send-derived and recv-derived matrices agree pairwise."""
    for nranks, overrides in sample_cases(app):
        trace = synthesize(app, nranks, dict(overrides))
        sends, recvs = {}, {}
        for r in trace.records:
            if r.size <= 0:
                continue
            if r.is_send:
                sends[(r.rank, r.peer)] = sends.get((r.rank, r.peer), 0) + r.bytes_moved
            elif r.is_recv:
                recvs[(r.peer, r.rank)] = recvs.get((r.peer, r.rank), 0) + r.bytes_moved
        assert sends == recvs, f"conservation violated for {app} p{nranks} {overrides}"
        # Call counts balance too: one receive posted per send.
        totals = trace.call_totals
        assert totals.get("MPI_Isend", 0) == totals.get("MPI_Irecv", 0)


@pytest.mark.parametrize("app", SYMMETRIC_APPS)
def test_symmetric_apps_yield_symmetric_matrices(app):
    for nranks, overrides in sample_cases(app):
        trace = synthesize(app, nranks, dict(overrides))
        cm = reduce_matrix(trace.batch, nranks)
        assert np.array_equal(cm.bytes_matrix, cm.bytes_matrix.T), (
            f"asymmetric matrix for {app} p{nranks} {overrides}"
        )
        assert np.array_equal(cm.msg_matrix, cm.msg_matrix.T)


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_record_list_and_batch_reduce_to_equal_planes(app):
    """reduce_matrix yields identical planes for both representations.

    A cached trace loads back as a record list while a fresh synthesis
    carries a columnar batch; both must hit the same vectorized
    reduction and produce bit-equal bytes/msg/time planes.
    """
    for nranks, overrides in sample_cases(app, n_cases=4):
        trace = synthesize(app, nranks, dict(overrides))
        from_batch = reduce_matrix(trace.batch, nranks)
        from_list = reduce_matrix(list(trace.records), nranks)
        assert np.array_equal(from_batch.bytes_matrix, from_list.bytes_matrix), (
            f"bytes plane diverges for {app} p{nranks} {overrides}"
        )
        assert np.array_equal(from_batch.msg_matrix, from_list.msg_matrix)
        assert np.array_equal(from_batch.time_matrix, from_list.time_matrix)


def test_multi_region_record_list_falls_back_to_scalar_reduce():
    """Mixed-region lists can't columnarize but must still reduce correctly."""
    from hfast.records import CommRecord

    records = [
        CommRecord(rank=0, call="MPI_Isend", size=100, peer=1, region="init", count=2),
        CommRecord(rank=1, call="MPI_Irecv", size=100, peer=0, region="steady", count=2),
    ]
    cm = reduce_matrix(records, 2)
    assert cm.bytes_matrix[0, 1] == 200
    assert cm.msg_matrix[0, 1] == 2
    assert cm.total_bytes == 200


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_topology_degree_bounded(app):
    for nranks, overrides in sample_cases(app):
        trace = synthesize(app, nranks, dict(overrides))
        topo = analyze_topology(reduce_matrix(trace.batch, nranks))
        assert topo.max_degree <= max(0, nranks - 1), (
            f"degree {topo.max_degree} exceeds bound for {app} p{nranks}"
        )
        assert all(0 <= d <= nranks - 1 for d in topo.degrees.tolist()) or nranks == 1


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_concentration_monotone_and_complete(app):
    for nranks, overrides in sample_cases(app):
        trace = synthesize(app, nranks, dict(overrides))
        cm = reduce_matrix(trace.batch, nranks)
        # Include a k that covers every possible partner so the fractions
        # must account for all traffic.
        ks = (1, 2, 4, 8, 16, max(1, nranks))
        conc = analyze_topology(cm, ks=ks).concentration
        values = [conc[k] for k in ks]
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:])), (
            f"concentration not monotone for {app} p{nranks}: {values}"
        )
        if cm.total_bytes > 0:
            assert values[-1] == pytest.approx(1.0), (
                f"top-{ks[-1]} concentration should capture all traffic"
            )


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_times_positive_and_bounded(app):
    """Every sampled case synthesizes strictly positive, finite times."""
    for nranks, overrides in sample_cases(app):
        trace = synthesize(app, nranks, dict(overrides))
        b = trace.ensure_batch()
        assert b.has_times, f"untimed batch for {app} p{nranks}"
        for col in (b.total_time, b.min_time, b.max_time):
            assert np.all(np.isfinite(col)) and np.all(col > 0.0), (
                f"non-positive time for {app} p{nranks} {overrides}"
            )
        assert np.all(b.min_time <= b.max_time)


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_times_monotone_in_size_per_stream(app):
    """Within one (rank, peer, call) stream, mean time tracks message size."""
    for nranks, overrides in sample_cases(app, n_cases=4):
        trace = synthesize(app, nranks, dict(overrides))
        streams: dict[tuple, list[tuple[int, float]]] = {}
        for r in trace.records:
            if r.count > 0:
                streams.setdefault((r.rank, r.peer, r.call), []).append(
                    (r.size, r.total_time / r.count)
                )
        for key, pairs in streams.items():
            pairs.sort()
            means = [m for _, m in pairs]
            assert means == sorted(means), (
                f"time not monotone in size for {app} p{nranks} stream {key}"
            )


@pytest.mark.parametrize("app", ["cactus", "gtc", "lbmhd", "paratec"])
def test_backend_timing_identity(app):
    """Scalar and vector backends synthesize bit-identical timing columns."""
    for nranks, overrides in sample_cases(app, n_cases=4):
        vec = synthesize(app, nranks, dict(overrides), backend="vector").ensure_batch()
        sca = synthesize(app, nranks, dict(overrides), backend="scalar").ensure_batch()
        assert np.array_equal(vec.total_time, sca.total_time)
        assert np.array_equal(vec.min_time, sca.min_time)
        assert np.array_equal(vec.max_time, sca.max_time)


def test_sampling_is_deterministic():
    """The property suite must not flake: same seed, same cases."""
    for app in available_apps():
        assert sample_cases(app) == sample_cases(app)
