from hfast.apps import synthesize
from hfast.matrix import reduce_matrix
from hfast.records import CommRecord
from hfast.topology import analyze_topology


def ring_matrix(n=8):
    recs = [CommRecord(r, "MPI_Isend", 100, (r + 1) % n) for r in range(n)]
    return reduce_matrix(recs, n)


def test_ring_degree_is_two():
    ts = analyze_topology(ring_matrix(8))
    assert ts.max_degree == 2
    assert ts.avg_degree == 2.0
    assert ts.degree_histogram == {2: 8}


def test_concentration_monotonic_and_bounded():
    trace = synthesize("lbmhd", 16)
    cm = reduce_matrix(trace.records, 16)
    ts = analyze_topology(cm)
    ks = sorted(ts.concentration)
    values = [ts.concentration[k] for k in ks]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert values == sorted(values)
    # top-16 partners out of <=15 possible covers everything
    assert values[-1] == 1.0


def test_ring_concentration_top2_covers_all():
    ts = analyze_topology(ring_matrix(8))
    assert ts.concentration[2] == 1.0


def test_empty_matrix():
    ts = analyze_topology(reduce_matrix([], 4))
    assert ts.max_degree == 0
    assert all(v == 0.0 for v in ts.concentration.values())


def test_to_dict_round_trips_to_json_types():
    ts = analyze_topology(ring_matrix(4))
    d = ts.to_dict()
    assert d["max_degree"] == 2
    assert all(isinstance(k, str) for k in d["degree_histogram"])
    assert all(isinstance(k, str) for k in d["concentration"])
