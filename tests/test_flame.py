"""Flamegraph exports: folded stacks and speedscope JSON.

Both formats derive from per-span self time, so the summed weights must
partition the run wall exactly — the invariant that makes the rendered
widths meaningful.
"""

import pytest

from hfast.obs.analytics import TraceTree
from hfast.obs.flame import folded_stacks, speedscope_doc
from test_trace_analytics import make_events, span


def test_folded_stacks_format_and_weights():
    text = folded_stacks(TraceTree(make_events()))
    assert text.endswith("\n")
    lines = text.strip().splitlines()
    weights = {}
    for line in lines:
        stack, usec = line.rsplit(" ", 1)
        weights[stack] = int(usec)
    assert weights["pipeline"] == 100_000  # 1.0 − (0.6 + 0.3)
    assert weights["pipeline;cell[gtc_p8];analyze_app[gtc_p8];synthesize"] == 400_000
    # Self-microsecond weights partition the root wall exactly.
    assert sum(weights.values()) == pytest.approx(1_000_000, abs=len(lines))


def test_folded_stacks_skip_zero_self_spans():
    # A span whose children cover its whole wall has zero self time and
    # must not produce an (invisible) line of its own.
    events = [
        span(1, "pipeline", None, 0, 1.0),
        span(2, "wrapper", 1, 1, 1.0),
        span(3, "work", 2, 2, 1.0),
    ]
    text = folded_stacks(TraceTree(events))
    assert text == "pipeline;wrapper;work 1000000\n"


def test_folded_stacks_merge_identical_stacks():
    events = [
        span(1, "pipeline", None, 0, 1.0),
        span(2, "step", 1, 1, 0.3),
        span(3, "step", 1, 1, 0.2),
    ]
    text = folded_stacks(TraceTree(events))
    assert "pipeline;step 500000" in text


def test_speedscope_doc_shape():
    doc = speedscope_doc(TraceTree(make_events()), name="unit")
    assert doc["name"] == "unit"
    (profile,) = doc["profiles"]
    assert profile["type"] == "sampled" and profile["unit"] == "seconds"
    frames = doc["shared"]["frames"]
    assert len(profile["samples"]) == len(profile["weights"]) > 0
    for sample in profile["samples"]:
        assert all(0 <= idx < len(frames) for idx in sample)
    assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
    assert sum(profile["weights"]) == pytest.approx(1.0)
    # Frames are deduplicated by label.
    names = [f["name"] for f in frames]
    assert len(names) == len(set(names))
    assert "cell[gtc_p8]" in names


def test_empty_tree_exports_cleanly():
    tree = TraceTree([])
    assert folded_stacks(tree) == ""
    doc = speedscope_doc(tree)
    assert doc["profiles"][0]["samples"] == []
    assert doc["profiles"][0]["endValue"] == 0
