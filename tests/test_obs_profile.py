from hfast.obs.profile import Observability, configure, get_obs, obs_span, profiled


def test_ambient_default_is_disabled():
    assert get_obs().enabled is False


def test_configure_and_span_roundtrip():
    obs = configure(Observability(enabled=True))
    with obs_span("stage", app="gtc"):
        pass
    assert obs.events[0]["name"] == "stage"
    assert obs.events[0]["attrs"] == {"app": "gtc"}


def test_profiled_decorator_counts_and_traces():
    obs = configure(Observability(enabled=True))

    @profiled("my_stage")
    def fn(x):
        return x + 1

    assert fn(1) == 2
    assert fn(2) == 3
    assert obs.metrics.counter("stage.my_stage.calls").value == 2
    assert [e["name"] for e in obs.events] == ["my_stage", "my_stage"]


def test_profiled_noop_when_disabled():
    configure(Observability.disabled())

    @profiled("quiet")
    def fn():
        return "ok"

    assert fn() == "ok"
    obs = configure(Observability(enabled=True))
    # enabling after decoration works: ambient resolved per call
    assert fn() == "ok"
    assert obs.events[0]["name"] == "quiet"


def test_manifest_event_first_in_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    obs = Observability.to_jsonl(str(path))
    obs.tracer.emit_event("manifest", {"git_sha": "x"})
    with obs.tracer.span("s"):
        pass
    obs.close()
    import json

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["event"] == "manifest"
    assert lines[1]["event"] == "span"
    # the in-memory buffer mirrors the file
    assert [e["event"] for e in obs.events] == ["manifest", "span"]
