"""Unit tests for the work-stealing scheduler building blocks.

Covers the cost model (analytic formulas + BENCH calibration), the run
journal (round-trip, torn lines, fingerprint checks), the fault-spec
parser, and ``run_stealing`` itself driven by a toy executor — no real
pipeline cells, so these stay fast.
"""

import json

import pytest

from hfast.pipeline import Cell
from hfast.sched.cost import (
    CostModel,
    cells_from_bench,
    estimate_cell_cost,
    estimate_cell_records,
)
from hfast.sched.faults import FAULT_ENV_VAR, FaultSpecError, maybe_inject, parse_fault_spec
from hfast.sched.journal import JournalError, RunJournal, build_fingerprint, new_run_id
from hfast.sched.scheduler import SchedulerConfig, run_stealing

# ---------------------------------------------------------------------------
# Cost model


def test_record_estimates_mirror_app_generators():
    # paratec's all-to-all is quadratic; the stencils are linear.
    assert estimate_cell_records("paratec", 16) == 2 * 16 * 15 + 2 * 16
    assert estimate_cell_records("cactus", 16) == 18 * 16 + 2 * 16
    assert estimate_cell_records("lbmhd", 16) == 16 * 16 + 2 * 16
    assert estimate_cell_records("gtc", 16) == 4 * 16
    assert estimate_cell_records("mystery_app", 16) == 8 * 16


def test_cost_monotone_in_scale_and_paratec_dominates():
    for app in ("cactus", "gtc", "lbmhd", "paratec"):
        costs = [estimate_cell_cost(app, n) for n in (8, 16, 64, 256)]
        assert costs == sorted(costs) and costs[0] < costs[-1]
    # At equal scale the all-to-all app must sort first in the queue.
    assert estimate_cell_cost("paratec", 64) > estimate_cell_cost("cactus", 64)
    assert estimate_cell_cost("paratec", 64) > estimate_cell_cost("gtc", 64)


def test_cost_model_prefers_measured_walls():
    model = CostModel(measured={("gtc", 16): 7.5})
    assert model.estimate("gtc", 16) == 7.5
    # Unmeasured cells scale by the measured/analytic ratio, keeping the
    # two populations comparable.
    scale = 7.5 / estimate_cell_cost("gtc", 16)
    assert model.estimate("cactus", 16) == pytest.approx(
        estimate_cell_cost("cactus", 16) * scale
    )


def test_cost_model_uncalibrated_is_analytic():
    model = CostModel()
    assert model.estimate("lbmhd", 32) == estimate_cell_cost("lbmhd", 32)


def test_from_bench_dir_is_best_effort(tmp_path):
    # No directory, empty directory, and garbage files all degrade to the
    # analytic model instead of raising.
    assert CostModel.from_bench_dir(None).measured == {}
    assert CostModel.from_bench_dir(tmp_path).measured == {}
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    assert CostModel.from_bench_dir(tmp_path).measured == {}


def test_from_bench_dir_reads_newest_snapshot(tmp_path):
    old = {
        "timestamp": "2026-01-01T00:00:00",
        "profile": {"cells": [{"app": "gtc", "nranks": 8, "ok": True, "wall_s": 9.0}]},
    }
    new = {
        "timestamp": "2026-02-01T00:00:00",
        "profile": {"cells": [{"app": "gtc", "nranks": 8, "ok": True, "wall_s": 1.25}]},
    }
    (tmp_path / "BENCH_old.json").write_text(json.dumps(old))
    (tmp_path / "BENCH_new.json").write_text(json.dumps(new))
    model = CostModel.from_bench_dir(tmp_path)
    assert model.estimate("gtc", 8) == 1.25


def test_cells_from_bench_skips_failed_and_malformed():
    doc = {
        "profile": {
            "cells": [
                {"app": "gtc", "nranks": 8, "ok": True, "wall_s": 1.0},
                {"app": "gtc", "nranks": 16, "ok": False, "wall_s": 1.0},
                {"app": "gtc", "nranks": 32, "ok": True, "wall_s": 0.0},
                {"app": "gtc", "ok": True, "wall_s": 1.0},
            ]
        }
    }
    assert cells_from_bench(doc) == {("gtc", 8): 1.0}
    assert cells_from_bench(None) == {}
    assert cells_from_bench({"profile": None}) == {}


# ---------------------------------------------------------------------------
# Journal


def _result(index):
    return {"app": "gtc", "nranks": 8, "index": index, "ok": True, "summary": {"x": index}}


def test_journal_round_trip(tmp_path):
    fp = build_fingerprint(["gtc"], {"gtc": [8]}, "c", "vector", 42, True, None, None)
    run_id = new_run_id()
    journal = RunJournal.create(tmp_path, run_id, fp)
    journal.record_done(0, "gtc_p8", 2, _result(0))
    loaded = RunJournal.load(tmp_path, run_id)
    assert loaded.fingerprint == fp
    assert loaded.completed[0] == {"attempts": 2, "result": _result(0)}
    assert not loaded.complete
    loaded.record_complete()
    assert RunJournal.load(tmp_path, run_id).complete


def test_journal_tolerates_torn_final_line(tmp_path):
    journal = RunJournal.create(tmp_path, "r1", {"k": 1})
    journal.record_done(0, "gtc_p8", 1, _result(0))
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "cell_done", "index": 1, "resu')  # crash mid-write
    loaded = RunJournal.load(tmp_path, "r1")
    assert list(loaded.completed) == [0]


def test_journal_load_unknown_run_lists_available(tmp_path):
    RunJournal.create(tmp_path, "exists", {})
    with pytest.raises(JournalError, match="exists"):
        RunJournal.load(tmp_path, "missing")


def test_journal_missing_header_rejected(tmp_path):
    (tmp_path / "broken.jsonl").write_text('{"kind": "cell_done", "index": 0, "result": {}}\n')
    with pytest.raises(JournalError, match="missing run header"):
        RunJournal.load(tmp_path, "broken")


def test_fingerprint_mismatch_names_the_difference(tmp_path):
    fp_a = build_fingerprint(["gtc"], {"gtc": [8]}, "c", "vector", 42, True, None, None)
    fp_b = build_fingerprint(["gtc"], {"gtc": [16]}, "c", "scalar", 42, True, None, None)
    journal = RunJournal.create(tmp_path, "r1", fp_a)
    journal.check_fingerprint(fp_a)  # identical: fine
    with pytest.raises(JournalError, match="backend, scales"):
        journal.check_fingerprint(fp_b)


# ---------------------------------------------------------------------------
# Fault spec


def test_parse_fault_spec():
    assert parse_fault_spec(None) == {}
    assert parse_fault_spec("") == {}
    assert parse_fault_spec("crash:gtc_p16:1") == {"gtc_p16": ("crash", 1)}
    assert parse_fault_spec("flaky:a_p8:2, hang:b_p8:1") == {
        "a_p8": ("flaky", 2),
        "b_p8": ("hang", 1),
    }


@pytest.mark.parametrize(
    "spec", ["crash:gtc_p16", "explode:gtc_p16:1", "crash:gtc_p16:x", "crash:gtc_p16:-1"]
)
def test_parse_fault_spec_rejects_malformed(spec):
    with pytest.raises(FaultSpecError):
        parse_fault_spec(spec)


def test_maybe_inject_flaky_and_attempt_window(monkeypatch):
    from hfast.sched.faults import TransientFault

    monkeypatch.setenv(FAULT_ENV_VAR, "flaky:gtc_p8:2")
    with pytest.raises(TransientFault):
        maybe_inject("gtc_p8", 1)
    with pytest.raises(TransientFault):
        maybe_inject("gtc_p8", 2)
    maybe_inject("gtc_p8", 3)  # past the window: no-op
    maybe_inject("other_p8", 1)  # different cell: no-op
    monkeypatch.delenv(FAULT_ENV_VAR)
    maybe_inject("gtc_p8", 1)  # unset: no-op


# ---------------------------------------------------------------------------
# run_stealing with a toy executor


def _toy_execute(task):
    return {
        "app": task["app"],
        "nranks": task["nranks"],
        "index": task["index"],
        "ok": True,
        "error": None,
        "summary": {"cell": task["index"], "attempt": task["attempt"]},
        "wall_s": 0.0,
        "events": [],
        "metrics": {},
        "cache": {},
    }


def _fail_first_attempt_gtc(task):
    res = _toy_execute(task)
    if task["app"] == "gtc" and task["attempt"] == 1:
        res.update(ok=False, error="boom", summary=None)
    return res


def _always_fail_gtc(task):
    res = _toy_execute(task)
    if task["app"] == "gtc":
        res.update(ok=False, error="boom", summary=None)
    return res


def _cells():
    apps = ["cactus", "gtc", "lbmhd", "paratec"]
    return [Cell(app=a, nranks=8, index=i) for i, a in enumerate(apps)]


def _payload(cell, attempt):
    return {"app": cell.app, "nranks": cell.nranks, "index": cell.index}


def test_run_stealing_returns_results_in_cell_order():
    cells = _cells()
    cfg = SchedulerConfig(workers=2, poll_interval=0.01)
    results, stats = run_stealing(cells, _payload, _toy_execute, cfg)
    assert [r["index"] for r in results] == [0, 1, 2, 3]
    assert all(r["ok"] and r["attempts"] == 1 for r in results)
    assert stats["tasks_dispatched"] == 4
    assert stats["steals"] == 2  # 4 dispatches minus each worker's first task
    assert stats["workers_lost"] == 0 and stats["retries"] == 0


def test_run_stealing_retries_transient_failure():
    cfg = SchedulerConfig(workers=2, max_retries=2, retry_backoff=0.01, poll_interval=0.01)
    results, stats = run_stealing(_cells(), _payload, _fail_first_attempt_gtc, cfg)
    gtc = results[1]
    assert gtc["ok"] and gtc["attempts"] == 2
    assert stats["retries"] == 1
    assert [r["index"] for r in results] == [0, 1, 2, 3]


def test_run_stealing_reports_exhausted_retries():
    cfg = SchedulerConfig(workers=2, max_retries=1, retry_backoff=0.01, poll_interval=0.01)
    results, stats = run_stealing(_cells(), _payload, _always_fail_gtc, cfg)
    gtc = results[1]
    assert not gtc["ok"] and gtc["attempts"] == 2 and "boom" in gtc["error"]
    assert stats["retries"] == 1
    assert all(r["ok"] for i, r in enumerate(results) if i != 1)


def test_run_stealing_replays_journal(tmp_path):
    cfg = SchedulerConfig(workers=2, poll_interval=0.01)
    journal = RunJournal.create(tmp_path, "r1", {"k": 1})
    results, _ = run_stealing(_cells(), _payload, _toy_execute, cfg, journal=journal)
    assert journal.complete

    resumed = RunJournal.load(tmp_path, "r1")
    replayed, stats = run_stealing(_cells(), _payload, _toy_execute, cfg, journal=resumed)
    assert stats["cells_from_journal"] == 4
    assert stats["workers_spawned"] == 0  # nothing left to execute
    assert all(r["from_journal"] for r in replayed)
    assert [r["summary"] for r in replayed] == [r["summary"] for r in results]


def test_beat_interval_tracks_timeout():
    assert SchedulerConfig(heartbeat_timeout=30.0).beat_interval == 1.0
    assert SchedulerConfig(heartbeat_timeout=0.2).beat_interval == pytest.approx(0.05)
    assert SchedulerConfig(heartbeat_interval=0.3).beat_interval == 0.3
