"""Online straggler/regression detection.

Unit-level: the detector's cold-start guards, median-ratio fit,
threshold semantics, and BENCH-baseline regression scoring. End-to-end:
an artificially slowed cell (the ``slow`` fault mode) must surface as an
``anomaly`` trace event, in the pipeline's return value, in the
"Anomalies" report section, and on the CLI's stderr.
"""

import json

import pytest

from hfast import cli
from hfast.obs.anomaly import AnomalyDetector
from hfast.obs.profile import Observability
from hfast.obs.report import build_report, render_markdown
from hfast.pipeline import run_pipeline
from hfast.sched import faults
from hfast.sched.cost import estimate_cell_cost
from hfast.sched.faults import FAULT_ENV_VAR

APPS = ["cactus", "gtc", "lbmhd", "paratec"]
SCALES = {app: [8] for app in APPS}


# ---------------------------------------------------------------------------
# Detector units


def feed(det, ratio=1e-3, cells=(("gtc", 8), ("gtc", 16), ("gtc", 32))):
    for app, n in cells:
        assert det.observe(app, n, estimate_cell_cost(app, n) * ratio) == []
    return det


def test_cold_start_never_flags():
    det = AnomalyDetector(min_wall=0.0, min_prior=3)
    # Even an absurd wall time is unflaggable before min_prior cells ran.
    assert det.observe("gtc", 8, 1e6) == []
    assert det.expected("gtc", 16) is None
    assert det.observed_cells == 1


def test_straggler_flagged_against_median_ratio_fit():
    det = feed(AnomalyDetector(min_wall=0.0, min_prior=3, threshold=4.0))
    exp = det.expected("gtc", 64)
    assert exp == pytest.approx(estimate_cell_cost("gtc", 64) * 1e-3)

    # 10x the fitted prediction, threshold 4x: flagged.
    (a,) = det.observe("gtc", 64, exp * 10)
    assert a["kind"] == "straggler" and a["cell"] == "gtc_p64"
    assert a["ratio"] == pytest.approx(10.0, rel=0.01)
    assert a["expected_s"] == pytest.approx(exp, rel=0.01)
    # 2x the prediction: within threshold, clean.
    assert det.observe("gtc", 128, det.expected("gtc", 128) * 2) == []


def test_min_wall_guard_suppresses_millisecond_noise():
    det = feed(AnomalyDetector(min_wall=0.25, min_prior=3, threshold=4.0), ratio=1e-7)
    exp = det.expected("gtc", 64)
    wall = exp * 100
    assert wall < 0.25  # the fit predicts sub-millisecond cells; 100x is still tiny
    assert wall > 4.0 * exp  # only the min_wall guard stands between this and a flag
    assert det.observe("gtc", 64, wall) == []


def test_regression_flagged_against_bench_baseline():
    det = AnomalyDetector(
        measured={("gtc", 8): 0.01}, min_wall=0.0, min_prior=99, regress_factor=10.0
    )
    (a,) = det.observe("gtc", 8, 0.5)
    assert a["kind"] == "regression" and a["cell"] == "gtc_p8"
    assert a["expected_s"] == pytest.approx(0.01)
    assert a["ratio"] == pytest.approx(50.0)
    # Within the slack factor: clean.
    assert det.observe("gtc", 8, 0.05) == []


def test_cell_can_be_both_straggler_and_regression():
    det = feed(
        AnomalyDetector(measured={("gtc", 64): 1e-6}, min_wall=0.0, min_prior=3)
    )
    found = det.observe("gtc", 64, det.expected("gtc", 64) * 100)
    assert [a["kind"] for a in found] == ["straggler", "regression"]


def test_failed_cells_are_neither_scored_nor_fitted():
    det = feed(AnomalyDetector(min_wall=0.0, min_prior=3))
    before = det.observed_cells
    assert det.observe("gtc", 64, 1e6, ok=False) == []
    assert det.observed_cells == before  # fault walls must not skew the fit


def test_check_running_flags_overdue_inflight_cell():
    det = AnomalyDetector(min_wall=0.0, min_prior=3, threshold=4.0)
    assert det.check_running("gtc", 64, 1e6) is None  # cold start
    feed(det)
    exp = det.expected("gtc", 64)
    assert det.check_running("gtc", 64, exp * 2) is None
    flag = det.check_running("gtc", 64, exp * 10)
    assert flag["kind"] == "straggler_running" and flag["cell"] == "gtc_p64"
    assert det.observed_cells == 3  # advisory only: the fit is untouched


def test_min_prior_zero_does_not_crash_on_first_observe():
    # Regression: min_prior=0 made _median_ratio index an empty list.
    det = AnomalyDetector(min_wall=0.0, min_prior=0)
    assert det.expected("gtc", 8) is None  # a median still needs one sample
    assert det.observe("gtc", 8, 1.0) == []
    assert det.expected("gtc", 8) is not None


def test_single_sample_median_fit():
    det = AnomalyDetector(min_wall=0.0, min_prior=1)
    det.observe("gtc", 8, estimate_cell_cost("gtc", 8) * 1e-3)
    assert det.expected("gtc", 16) == pytest.approx(estimate_cell_cost("gtc", 16) * 1e-3)


def test_zero_analytic_cost_is_unscoreable(monkeypatch):
    # Regression: a zero cost estimate divided by zero in expected().
    det = feed(AnomalyDetector(min_wall=0.0, min_prior=1))
    before = det.observed_cells
    monkeypatch.setattr("hfast.obs.anomaly.estimate_cell_cost", lambda app, n: 0.0)
    assert det.expected("gtc", 8) is None
    assert det.observe("gtc", 8, 100.0) == []  # neither scored...
    assert det.observed_cells == before  # ...nor folded into the fit
    assert det.check_running("gtc", 8, 100.0) is None


def test_pathological_ratios_are_clamped(monkeypatch):
    det = AnomalyDetector(min_wall=0.0, min_prior=1)
    monkeypatch.setattr("hfast.obs.anomaly.estimate_cell_cost", lambda app, n: 1e-30)
    det.observe("gtc", 8, 1.0)  # raw ratio would be 1e30
    assert det._ratios == [1e9]
    monkeypatch.setattr("hfast.obs.anomaly.estimate_cell_cost", lambda app, n: 1e30)
    det.observe("gtc", 8, 1.0)  # raw ratio would be 1e-30
    assert det._ratios == [1e-9, 1e9]
    # The clamped fit still yields a finite, usable prediction.
    monkeypatch.setattr("hfast.obs.anomaly.estimate_cell_cost", lambda app, n: 100.0)
    exp = det.expected("gtc", 8)
    assert exp is not None and 0 < exp < float("inf")


def test_from_bench_dir_loads_newest_snapshot(tmp_path):
    for stamp, wall in (("old", 9.0), ("new", 1.25)):
        (tmp_path / f"BENCH_{stamp}.json").write_text(json.dumps({
            "timestamp": f"2026-0{1 if stamp == 'old' else 2}-01T00:00:00",
            "profile": {"cells": [
                {"app": "gtc", "nranks": 8, "ok": True, "wall_s": wall}
            ]},
        }))
    det = AnomalyDetector.from_bench_dir(tmp_path)
    assert det.measured == {("gtc", 8): 1.25}
    assert AnomalyDetector.from_bench_dir(None).measured == {}


# ---------------------------------------------------------------------------
# End-to-end: a slow-injected cell surfaces everywhere


@pytest.fixture
def slow_paratec(monkeypatch):
    """Inflate paratec_p8's first attempt by ~0.4 s inside its timed region."""
    monkeypatch.setattr(faults, "_SLOW_SECONDS", 0.4)
    monkeypatch.setenv(FAULT_ENV_VAR, "slow:paratec_p8:1")


def test_slow_cell_flags_straggler_end_to_end(tmp_path, slow_paratec):
    obs = Observability(enabled=True)
    detector = AnomalyDetector(threshold=3.0, min_wall=0.05)
    out = run_pipeline(
        apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "c"), obs=obs,
        argv=["test"], bench_dir=None, anomaly=detector,
    )

    # paratec is the last cell, so three priors have warmed the fit.
    (a,) = out["anomalies"]
    assert a["kind"] == "straggler" and a["cell"] == "paratec_p8"
    assert a["wall_s"] >= 0.4 > 3.0 * a["expected_s"]
    # The slowed cell still produced a normal, correct result.
    assert len(out["results"]) == 4 and out["manifest"]["failed_cells"] == []

    trace_anoms = [e for e in obs.events if e["event"] == "anomaly"]
    assert [e["cell"] for e in trace_anoms] == ["paratec_p8"]

    report = build_report(obs.events)
    assert [a["cell"] for a in report["anomalies"]] == ["paratec_p8"]
    md = render_markdown(report)
    assert "## Anomalies" in md
    assert "| paratec_p8 | straggler |" in md


def test_clean_run_reports_no_anomalies(tmp_path):
    obs = Observability(enabled=True)
    out = run_pipeline(
        apps=APPS, scales=SCALES, cache_dir=str(tmp_path / "c"), obs=obs,
        argv=["test"], bench_dir=None,
    )
    assert out["anomalies"] == []
    md = render_markdown(build_report(obs.events))
    assert "## Anomalies" not in md  # the section only appears when needed


def test_cli_prints_anomalies_and_reports_them(tmp_path, capsys, slow_paratec):
    rc = cli.main([
        "analyze", "--apps", ",".join(APPS), "--scales", "8",
        "--cache-dir", str(tmp_path / "cache"),
        "--report-dir", str(tmp_path / "reports"),
        "--anomaly-threshold", "3",
    ])
    assert rc == 0
    err = capsys.readouterr().err
    assert "anomaly: paratec_p8 straggler:" in err
    md = (tmp_path / "reports" / "report.md").read_text()
    assert "## Anomalies" in md and "paratec_p8" in md
